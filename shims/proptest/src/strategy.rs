//! The [`Strategy`] trait and combinators. Unlike real proptest there is no
//! value-tree/shrinking machinery: a strategy is just a cloneable recipe
//! that generates one value per call from the deterministic [`TestRng`].

use crate::test_runner::TestRng;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case; `recurse` wraps
    /// a strategy for depth-`k` values into one for depth-`k+1` values.
    /// `depth` bounds nesting; `_desired_size` and `_expected_branch_size`
    /// are accepted for API compatibility but unused (collection strategies
    /// already bound their own sizes).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            // Keep a path to the shallower alternative so small values
            // stay common even at full depth.
            strat = Union::new_weighted(vec![(1, strat), (2, deeper)]).boxed();
        }
        strat
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, cheaply cloneable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Weighted choice between same-valued strategies (what `prop_oneof!`
/// expands to; arms are boxed so they may have different concrete types).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! with no arms");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut k = rng.below(self.total_weight);
        for (w, s) in &self.arms {
            if k < *w as u64 {
                return s.generate(rng);
            }
            k -= *w as u64;
        }
        unreachable!()
    }
}

// ---- Range strategies ------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

impl Strategy for std::ops::RangeInclusive<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (*self.start() as u32, *self.end() as u32);
        assert!(lo <= hi, "empty strategy range");
        // Rejection-sample across the surrogate gap.
        loop {
            let v = lo + rng.below((hi - lo + 1) as u64) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

/// A regex-subset pattern generating matching strings (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

// ---- Tuple strategies ------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11);

// ---- Macros ----------------------------------------------------------------

/// Run a block of property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Build the strategies once as a tuple strategy; each case
                // draws fresh values from the shared deterministic stream.
                let __strats = ($(($strat),)+);
                $crate::test_runner::run_proptest_cases(
                    stringify!($name),
                    &config,
                    |__rng| {
                        let ($($arg,)+) = $crate::strategy::Strategy::generate(&__strats, __rng);
                        let mut __case = move || -> $crate::test_runner::TestCaseResult {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        };
                        __case()
                    },
                );
            }
        )*
    };
}

/// Weighted or unweighted choice between strategies producing one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!` but fails only the current case with a catchable error.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Like `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discard the current case (retried with fresh inputs, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
