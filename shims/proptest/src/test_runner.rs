//! Deterministic case runner: a SplitMix64 generator seeded from the test
//! name, a case-count config, and the failure/rejection error type.

/// Deterministic RNG for value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed derived from the test name so every test has an independent,
    /// stable stream across runs.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Runner configuration. Only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed or rejected test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Property violated: the whole test fails.
    Fail(String),
    /// Input rejected by `prop_assume!`: the case is retried.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives `config.cases` successful executions of `body`, retrying rejected
/// inputs (up to a global cap) and panicking on the first failure with the
/// case number so the run can be reproduced.
pub fn run_proptest_cases<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::deterministic(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let reject_cap = config.cases.saturating_mul(16).max(1024);
    while passed < config.cases {
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= reject_cap,
                    "proptest '{name}': too many rejected inputs ({rejected}) — \
                     prop_assume! condition is too strict"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {passed}: {msg}")
            }
        }
    }
}
