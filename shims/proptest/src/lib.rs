//! Minimal in-repo stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, regex-subset
//! string strategies, `prop::collection::{vec, btree_map}`,
//! `prop::option::of`, `prop::sample::select`, `any::<T>()`, the
//! `proptest!` / `prop_oneof!` / `prop_assert*` macros and
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its case number and seed instead of a minimized input), and string
//! strategies support the regex subset actually used by the tests
//! (literals, `.`, character classes with ranges and escapes, and the
//! `*`, `+`, `?`, `{m}`, `{m,n}` quantifiers).

pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            crate::string::arbitrary_char(rng)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    // Bias toward edge values: they find more bugs than a
                    // uniform draw and partly compensate for no shrinking.
                    match rng.next_u64() % 8 {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy producing arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;

    /// Accepted size arguments: `usize`, `a..b`, `a..=b`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        pub fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_inclusive - self.lo) as u64 + 1;
            self.lo + (rng.next_u64() % span) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` with *up to* the drawn size (duplicate
    /// keys collapse, as in real proptest).
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Option<T>`: `None` for 1 in 4 cases, otherwise `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone)]
    pub struct Select<T>(Vec<T>);

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[(rng.next_u64() % self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tree() -> impl Strategy<Value = Vec<u32>> {
        prop::collection::vec(0u32..10, 1..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(xs in tree(), flag in any::<bool>(), n in 5usize..=5) {
            prop_assert!(n == 5);
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert!(xs.iter().all(|&x| x < 10));
            let _ = flag;
        }

        #[test]
        fn strings_match_class(s in "[a-c]{2,4}", t in ".*") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let _ = t;
        }

        #[test]
        fn oneof_and_maps(v in prop_oneof![2 => (0i64..4).prop_map(Some), 1 => Just(None)]) {
            if let Some(x) = v {
                prop_assert!((0..4).contains(&x));
            }
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            (prop::collection::vec(0u64..100, n..=n), Just(n))
        })) {
            prop_assert_eq!(pair.0.len(), pair.1);
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(bool),
            Node(Vec<T>),
        }
        let leaf = any::<bool>().prop_map(T::Leaf);
        let strat = leaf.prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(T::Node)
        });
        let mut rng = crate::test_runner::TestRng::deterministic("recursive");
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(b) => {
                    let _ = b;
                    1
                }
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 5, "depth {}", depth(&t));
        }
    }
}
