//! String generation from the regex subset test patterns use: literal
//! characters, `.`, character classes (`[a-zA-Z0-9 _\-\"\\]`, with ranges,
//! escapes, and leading `^` negation), and the `*`, `+`, `?`, `{m}`,
//! `{m,n}`, `{m,}` quantifiers. Alternation and groups are not supported —
//! tests needing a choice between shapes use `prop_oneof!` instead.

use crate::test_runner::TestRng;

const UNBOUNDED_MAX_EXTRA: u64 = 8;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// `.` — any printable ASCII character plus a couple of non-ASCII
    /// code points so parser tests see multi-byte UTF-8.
    Dot,
    Class {
        ranges: Vec<(char, char)>,
        negated: bool,
    },
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u64,
    max: u64,
}

/// A printable char for `.*`-style patterns; occasionally non-ASCII.
pub fn arbitrary_char(rng: &mut TestRng) -> char {
    match rng.below(12) {
        0 => char::from_u32(0x00e0 + rng.below(0x20) as u32).unwrap(), // Latin-1 letters
        1 => char::from_u32(0x4e00 + rng.below(0x100) as u32).unwrap(), // CJK
        2 => ['"', '\\', '\n', '\t'][rng.below(4) as usize],
        _ => (0x20u8 + rng.below(0x5f) as u8) as char, // printable ASCII
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("trailing \\ in {pattern:?}"));
                i += 1;
                match c {
                    'd' => Atom::Class {
                        ranges: vec![('0', '9')],
                        negated: false,
                    },
                    'w' => Atom::Class {
                        ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                        negated: false,
                    },
                    's' => Atom::Class {
                        ranges: vec![(' ', ' '), ('\t', '\t')],
                        negated: false,
                    },
                    'n' => Atom::Literal('\n'),
                    't' => Atom::Literal('\t'),
                    other => Atom::Literal(other),
                }
            }
            '[' => {
                i += 1;
                let negated = chars.get(i) == Some(&'^');
                if negated {
                    i += 1;
                }
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        let c = chars[i];
                        i += 1;
                        match c {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        }
                    } else {
                        let c = chars[i];
                        i += 1;
                        c
                    };
                    // `a-z` range, unless `-` is the final literal char.
                    if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|c| *c != ']') {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            let c = chars[i];
                            i += 1;
                            c
                        } else {
                            let c = chars[i];
                            i += 1;
                            c
                        };
                        assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(chars.get(i) == Some(&']'), "unterminated [ in {pattern:?}");
                i += 1;
                Atom::Class { ranges, negated }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_MAX_EXTRA)
            }
            Some('+') => {
                i += 1;
                (1, 1 + UNBOUNDED_MAX_EXTRA)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                i += 1;
                let mut m = 0u64;
                while chars[i].is_ascii_digit() {
                    m = m * 10 + chars[i].to_digit(10).unwrap() as u64;
                    i += 1;
                }
                let max = if chars[i] == ',' {
                    i += 1;
                    if chars[i] == '}' {
                        m + UNBOUNDED_MAX_EXTRA
                    } else {
                        let mut n = 0u64;
                        while chars[i].is_ascii_digit() {
                            n = n * 10 + chars[i].to_digit(10).unwrap() as u64;
                            i += 1;
                        }
                        n
                    }
                } else {
                    m
                };
                assert!(chars[i] == '}', "unterminated {{ in {pattern:?}");
                i += 1;
                (m, max)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn pick_from_class(ranges: &[(char, char)], negated: bool, rng: &mut TestRng) -> char {
    if negated {
        // Rejection-sample printable ASCII; classes in practice exclude
        // only a few characters, so this terminates fast.
        for _ in 0..256 {
            let c = (0x20u8 + rng.below(0x5f) as u8) as char;
            if !ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c)) {
                return c;
            }
        }
        panic!("negated class covers all of printable ASCII");
    }
    let total: u64 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
        .sum();
    let mut k = rng.below(total.max(1));
    for &(lo, hi) in ranges {
        let span = hi as u64 - lo as u64 + 1;
        if k < span {
            return char::from_u32(lo as u32 + k as u32).expect("range crosses surrogates");
        }
        k -= span;
    }
    unreachable!()
}

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let span = piece.max - piece.min + 1;
        let count = piece.min + rng.below(span.max(1));
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Dot => out.push(arbitrary_char(rng)),
                Atom::Class { ranges, negated } => out.push(pick_from_class(ranges, *negated, rng)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_escapes_and_unicode() {
        // The exact class the JSON round-trip test uses.
        let pattern = "[a-zA-Z0-9 _\\-\"\\\\/\u{e9}\u{4e16}]*";
        let mut rng = TestRng::deterministic("class");
        let allowed = |c: char| {
            c.is_ascii_alphanumeric() || " _-\"\\/".contains(c) || c == '\u{e9}' || c == '\u{4e16}'
        };
        for _ in 0..500 {
            let s = generate_from_pattern(pattern, &mut rng);
            assert!(s.chars().all(allowed), "{s:?}");
        }
    }

    #[test]
    fn quantifier_bounds() {
        let mut rng = TestRng::deterministic("quant");
        for _ in 0..200 {
            let s = generate_from_pattern("[A-Z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_uppercase()));
            let t = generate_from_pattern("a\\.b?x{2}", &mut rng);
            assert!(t == "a.bxx" || t == "a.xx", "{t:?}");
            let u = generate_from_pattern("x[0-9]+", &mut rng);
            assert!(u.len() >= 2 && u.starts_with('x'));
        }
    }
}
