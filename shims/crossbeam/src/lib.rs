//! Minimal in-repo stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is used by this workspace: multi-producer
//! channels with cloneable senders, `recv_timeout`, and bounded variants.
//! Implemented over `std::sync::mpsc`, which provides the same semantics
//! for the single-consumer patterns the codebase relies on.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Why a `recv_timeout` returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// The channel is disconnected (no receiver remains).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// Cloneable sending half of a channel.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking if the channel is bounded and full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }

        /// Drain everything currently buffered without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }

        /// Blocking iterator until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_multi_producer() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(tx);
            let mut got: Vec<i32> = rx.iter().collect();
            got.sort();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn bounded_recv_timeout() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
