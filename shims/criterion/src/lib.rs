//! Minimal in-repo stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `black_box`,
//! `Criterion::{default, sample_size, bench_function, benchmark_group}`,
//! `BenchmarkGroup::{bench_function, bench_with_input, finish}`,
//! `BenchmarkId::from_parameter`, and the `criterion_group!` /
//! `criterion_main!` macros — with simple wall-clock measurement and
//! plain-text median/mean reporting instead of criterion's statistical
//! analysis and HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `routine` repeatedly, recording one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} median {:>12.3?}  mean {:>12.3?}  ({} samples)",
        median,
        mean,
        samples.len()
    );
}

/// Benchmark driver: owns configuration and runs registered functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        report(name, &mut b.samples);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Identifier for one case within a benchmark group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { id: name }
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Bundle benchmark functions under a group name, optionally with a
/// configured `Criterion` (both criterion 0.5 forms are accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group!(simple, sum_bench);

    #[test]
    fn groups_and_ids_run() {
        simple();
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("grp");
        for n in [1u64, 8] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box((0..n).product::<u64>()))
            });
        }
        g.finish();
    }
}
