//! Minimal in-repo stand-in for the `bytes` crate.
//!
//! Provides the subset the workspace uses: cheaply cloneable immutable
//! [`Bytes`] (an `Arc`'d buffer plus a window), a growable [`BytesMut`],
//! and the little-endian [`Buf`]/[`BufMut`] accessors the segment
//! serialization format reads and writes.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer. Reading through [`Buf`]
/// advances a window over shared storage, so `copy_to_bytes` and clones
/// never copy the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Sub-window `[at..len)` sharing the same storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

/// Growable byte buffer with little-endian put accessors.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.0.extend_from_slice(bytes)
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

/// Read cursor over a byte source (little-endian accessors).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = self.slice(0..n);
        self.advance(n);
        out
    }
}

/// Write sink with little-endian put accessors.
pub trait BufMut {
    fn put_slice(&mut self, bytes: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.0.extend_from_slice(bytes)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i64_le(-42);
        w.put_f64_le(1.5);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.copy_to_bytes(3).as_slice(), b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_window_semantics() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mut c = b.clone();
        c.advance(2);
        assert_eq!(c.as_slice(), &[3, 4, 5]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(b.slice(1..3).as_slice(), &[2, 3]);
        assert_eq!(Bytes::from_static(b"xy").len(), 2);
    }
}
