//! Minimal in-repo stand-in for the `rand` 0.8 API surface this workspace
//! uses: `StdRng` (xoshiro256++ seeded via SplitMix64), the `Rng` extension
//! trait (`gen`, `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64`,
//! and `SliceRandom::{choose, shuffle}` via the prelude.
//!
//! Deterministic for a given seed, which is all the workloads and tests
//! require; statistical quality is xoshiro-class, not cryptographic.

pub mod rngs {
    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> StdRng {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn random_from(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn random_from(rng: &mut dyn RngCore) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn random_from(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn random_from(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn random_from(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f32::random_from(rng) * (self.end - self.start)
    }
}

/// The user-facing generator extension trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    type Item;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[i])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(3usize..=3);
            assert_eq!(u, 3);
            let f = rng.gen_range(0.0f64..10.0);
            assert!((0.0..10.0).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs = [1, 2, 3];
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }
}
