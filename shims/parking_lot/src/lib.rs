//! Minimal in-repo stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the parking_lot API it uses: `Mutex` and `RwLock`
//! whose guards are infallible (poison is swallowed — a panicked holder
//! does not poison the lock, matching parking_lot semantics).

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion lock with parking_lot's non-poisoning `lock()`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's non-poisoning `read()`/`write()`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
