//! Anomaly-detection dashboard: the paper's internal-analytics scenario
//! (§6, Figures 11–13). Loads the multidimensional business-metric dataset
//! with a star-tree index and contrasts the preaggregated execution path
//! against raw scans on the same queries.
//!
//! ```sh
//! cargo run --release --example anomaly_dashboard
//! ```

use pinot::common::config::{StarTreeConfig, TableConfig};
use pinot::workloads::anomaly;
use pinot::{ClusterConfig, PinotCluster};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Numeric comparison of two query results with relative tolerance (the
/// two execution paths sum floats in different orders).
fn results_close(
    a: &pinot::common::query::QueryResult,
    b: &pinot::common::query::QueryResult,
) -> bool {
    use pinot::common::query::QueryResult;
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
    match (a, b) {
        (QueryResult::Aggregation(x), QueryResult::Aggregation(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|(p, q)| match (p.value.as_f64(), q.value.as_f64()) {
                        (Some(m), Some(n)) => close(m, n),
                        _ => p.value == q.value,
                    })
        }
        (QueryResult::GroupBy(x), QueryResult::GroupBy(y)) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|(tx, ty)| {
                    tx.rows.len() == ty.rows.len()
                        && tx.rows.iter().zip(&ty.rows).all(|((ka, va), (kb, vb))| {
                            ka == kb
                                && match (va.as_f64(), vb.as_f64()) {
                                    (Some(m), Some(n)) => close(m, n),
                                    _ => va == vb,
                                }
                        })
                })
        }
        _ => false,
    }
}

fn main() -> pinot::common::Result<()> {
    let mut rng = StdRng::seed_from_u64(42);
    let rows = anomaly::rows(60_000, 17_000, &mut rng);

    // One cluster with a star-tree, one without: same data, same queries.
    let with_tree = PinotCluster::start(ClusterConfig::default())?;
    with_tree.create_table(
        TableConfig::offline(anomaly::TABLE).with_star_tree(StarTreeConfig {
            dimensions: vec![
                "metric_name".into(),
                "datacenter".into(),
                "country".into(),
                "platform".into(),
                "fabric".into(),
                "day".into(),
            ],
            metrics: vec!["value".into(), "events".into()],
            max_leaf_records: 20,
            skip_star_dimensions: vec![],
        }),
        anomaly::schema(),
    )?;
    with_tree.upload_rows(anomaly::TABLE, rows.clone())?;

    let without_tree = PinotCluster::start(ClusterConfig::default())?;
    without_tree.create_table(TableConfig::offline(anomaly::TABLE), anomaly::schema())?;
    without_tree.upload_rows(anomaly::TABLE, rows)?;

    println!("query\tstar_docs\traw_docs\tratio\tanswers_match");
    let queries = anomaly::queries(8, 17_000, &mut rng);
    for pql in &queries {
        let a = with_tree.query(pql);
        let b = without_tree.query(pql);
        assert!(!a.partial && !b.partial);
        // Star-tree and raw execution add the same doubles in different
        // orders; compare numerically.
        let matches = results_close(&a.result, &b.result);
        let ratio = a
            .stats
            .preaggregation_ratio()
            .map(|r| format!("{r:.3}"))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "{}\t{}\t{}\t{}\t{}",
            &pql[..60.min(pql.len())],
            a.stats.num_docs_scanned,
            b.stats.num_docs_scanned,
            ratio,
            matches
        );
    }

    // A dashboard drill-down, end to end.
    let resp = with_tree.query(
        "SELECT SUM(value) FROM anomaly WHERE metric_name = 'metric_03' \
         AND day >= 17010 GROUP BY datacenter TOP 5",
    );
    println!("\ndrill-down result: {:?}", resp.result);
    println!(
        "scanned {} preaggregated records representing {} raw rows",
        resp.stats.num_docs_scanned, resp.stats.raw_docs_equivalent
    );
    Ok(())
}
