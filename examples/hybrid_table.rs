//! Hybrid tables: the lambda architecture of §3 — offline pushes from a
//! batch pipeline merged transparently with realtime stream data at the
//! broker's time boundary (Figure 6).
//!
//! ```sh
//! cargo run --example hybrid_table
//! ```

use pinot::common::config::{StreamConfig, TableConfig};
use pinot::common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot::{ClusterConfig, PinotCluster};

fn schema() -> Schema {
    Schema::new(
        "orders",
        vec![
            FieldSpec::dimension("region", DataType::String),
            FieldSpec::metric("amount", DataType::Double),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn order(region: &str, amount: f64, day: i64) -> Record {
    Record::new(vec![
        Value::String(region.into()),
        Value::Double(amount),
        Value::Long(day),
    ])
}

fn main() -> pinot::common::Result<()> {
    let cluster = PinotCluster::start(ClusterConfig::default())?;
    cluster.streams().create_topic("orders", 2)?;

    // One logical table, two physical tables (the hybrid pair).
    cluster.create_table(TableConfig::offline("orders"), schema())?;
    cluster.create_table(
        TableConfig::realtime(
            "orders",
            StreamConfig {
                topic: "orders".into(),
                flush_threshold_rows: 10_000,
                flush_threshold_millis: i64::MAX / 4,
            },
        ),
        schema(),
    )?;

    // Nightly batch: days 100..=102 land via offline push (optimally
    // aggregated segments, as the paper notes for Hadoop data).
    let mut batch = Vec::new();
    for day in 100..=102i64 {
        for i in 0..200 {
            batch.push(order(["na", "eu"][i % 2], 10.0, day));
        }
    }
    cluster.upload_rows("orders", batch)?;

    // Live stream: more day-102 orders plus fresh day-103 ones. Day 102
    // overlaps the offline data — the broker's time boundary (max offline
    // day = 102) sends day < 102 to offline, day >= 102 to realtime, so
    // nothing is double-counted.
    for i in 0..300 {
        let day = if i < 100 { 102 } else { 103 };
        cluster.produce(
            "orders",
            &Value::Long(i as i64),
            order(["na", "eu"][i % 2], 5.0, day),
        )?;
    }
    cluster.consume_until_idle()?;

    let resp = cluster.query("SELECT COUNT(*), SUM(amount) FROM orders");
    println!("hybrid total: {:?}", resp.result);
    // Offline days 100,101 (400 rows) + realtime days 102,103 (300 rows).
    // Offline day 102 is shadowed by the boundary (its events are the same
    // business events the stream carried first).
    assert!(!resp.partial, "{:?}", resp.exceptions);

    for pql in [
        "SELECT SUM(amount) FROM orders WHERE day = 101", // offline side
        "SELECT SUM(amount) FROM orders WHERE day = 103", // realtime side
        "SELECT SUM(amount) FROM orders WHERE region = 'eu' GROUP BY region TOP 2",
    ] {
        let resp = cluster.query(pql);
        println!("{pql}\n  -> {:?}", resp.result);
        assert!(!resp.partial);
    }
    Ok(())
}
