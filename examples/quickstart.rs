//! Quickstart: boot an in-process Pinot cluster, create an offline table,
//! push a segment, and run a few PQL queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pinot::common::config::TableConfig;
use pinot::common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot::{ClusterConfig, PinotCluster};

fn main() -> pinot::common::Result<()> {
    // A cluster with 3 controllers (one leader), 1 broker, 3 servers.
    let cluster = PinotCluster::start(ClusterConfig::default())?;

    // Tables have fixed schemas of dimensions, metrics, and a time column.
    let schema = Schema::new(
        "pageviews",
        vec![
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::dimension("browser", DataType::String),
            FieldSpec::metric("views", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )?;
    cluster.create_table(
        TableConfig::offline("pageviews")
            .with_replication(2)
            .with_inverted_indexes(&["browser"]),
        schema,
    )?;

    // Offline push: build a segment from records and upload it. The
    // controller verifies, stores, and assigns it; servers load it.
    let mut rows = Vec::new();
    for i in 0..10_000i64 {
        rows.push(Record::new(vec![
            Value::String(["us", "de", "jp", "br"][(i % 4) as usize].to_string()),
            Value::String(["firefox", "safari", "chrome"][(i % 3) as usize].to_string()),
            Value::Long(1 + i % 5),
            Value::Long(18_000 + i % 7),
        ]));
    }
    cluster.upload_rows("pageviews", rows)?;

    // Query through a broker with PQL.
    for pql in [
        "SELECT COUNT(*) FROM pageviews",
        "SELECT SUM(views) FROM pageviews WHERE browser = 'firefox'",
        "SELECT SUM(views) FROM pageviews WHERE country IN ('us', 'de') AND day >= 18003 \
         GROUP BY country TOP 5",
        "SELECT country, browser FROM pageviews WHERE views > 4 LIMIT 3",
    ] {
        let resp = cluster.query(pql);
        println!("query: {pql}");
        println!(
            "  -> {:?}  ({} docs scanned, {} servers, {} ms)",
            resp.result,
            resp.stats.num_docs_scanned,
            resp.stats.num_servers_queried,
            resp.stats.time_used_ms
        );
        assert!(
            !resp.partial,
            "unexpected partial response: {:?}",
            resp.exceptions
        );
    }
    Ok(())
}
