//! Realtime "Who viewed my profile": ingest profile-view events from the
//! stream substrate and watch them become queryable within seconds, with
//! segments flushing through the completion protocol along the way (§3.3.6
//! of the paper).
//!
//! ```sh
//! cargo run --example realtime_wvmp
//! ```

use pinot::common::config::{StreamConfig, TableConfig};
use pinot::common::{Record, Value};
use pinot::workloads::wvmp;
use pinot::{ClusterConfig, PinotCluster};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> pinot::common::Result<()> {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(2))?;

    // A realtime table consuming from a 4-partition topic; segments flush
    // every 5000 rows, replicated twice.
    cluster.streams().create_topic("profile-views", 4)?;
    cluster.create_table(
        TableConfig::realtime(
            "wvmp",
            StreamConfig {
                topic: "profile-views".into(),
                flush_threshold_rows: 5_000,
                flush_threshold_millis: 3_600_000,
            },
        )
        .with_replication(2)
        .with_sorted_column("viewee_id"),
        wvmp::schema(),
    )?;

    // Publish 40k profile-view events keyed by the viewee.
    let gen = wvmp::WvmpGen::new(2_000, 18_000);
    let mut rng = StdRng::seed_from_u64(7);
    for record in gen.rows(40_000, &mut rng) {
        let key = record.values()[0].clone();
        cluster.produce("profile-views", &key, record)?;
    }

    // Drive consumption. (A live deployment would run
    // `pinot::pump::RealtimePump` instead of ticking manually.)
    let ingested = cluster.consume_until_idle()?;
    println!("ingested {ingested} events");

    // Committed segments + the still-consuming ones both serve queries.
    let resp = cluster.query("SELECT COUNT(*) FROM wvmp");
    println!("total rows queryable: {:?}", resp.result.single_aggregate());
    assert_eq!(resp.result.single_aggregate(), Some(&Value::Long(40_000)));

    // The product query: who viewed member 0's profile, by country?
    let resp = cluster
        .query("SELECT SUM(views) FROM wvmp WHERE viewee_id = 0 GROUP BY viewer_country TOP 5");
    println!("member 0 views by country: {:?}", resp.result);

    // Freshness: a new event is queryable right after the next tick.
    let row = Record::from_pairs(
        &wvmp::schema(),
        &[
            ("viewee_id", Value::Long(424242)),
            ("viewer_country", Value::from("is")),
            ("views", Value::Long(1)),
            ("day", Value::Long(18_001)),
        ],
    )?;
    cluster.produce("profile-views", &Value::Long(424242), row)?;
    cluster.consume_tick()?;
    let resp = cluster.query("SELECT COUNT(*) FROM wvmp WHERE viewee_id = 424242");
    println!("fresh event visible: {:?}", resp.result.single_aggregate());
    assert_eq!(resp.result.single_aggregate(), Some(&Value::Long(1)));

    // Show what the completion protocol produced.
    let leader = cluster.leader_controller()?;
    let segments = leader.list_segments("wvmp_REALTIME");
    println!("realtime segments: {segments:?}");
    Ok(())
}
