#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 test suites (root package:
# integration tests + examples). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1 tests (root package) =="
cargo test -q

echo "== tier-1 tests, deterministic single-thread pools =="
PINOT_TASKPOOL_THREADS=1 cargo test -q

echo "== taskpool suite (work stealing, scoped joins, deadlines) =="
cargo test -p pinot-taskpool

echo "== differential suite (pinot vs baseline, 1-vs-N-thread, batch-vs-row) =="
cargo test -p pinot-core --test differential

echo "== differential suite under forced row path (PINOT_EXEC_BATCH=0) =="
PINOT_EXEC_BATCH=0 cargo test -p pinot-core --test differential

echo "== differential suite under forced batch path (PINOT_EXEC_BATCH=1) =="
PINOT_EXEC_BATCH=1 cargo test -p pinot-core --test differential

echo "== differential suite under forced pruning off (PINOT_EXEC_PRUNE=0) =="
PINOT_EXEC_PRUNE=0 cargo test -p pinot-core --test differential

echo "== differential suite under forced pruning on (PINOT_EXEC_PRUNE=1) =="
PINOT_EXEC_PRUNE=1 cargo test -p pinot-core --test differential

echo "== differential suite under each forced access path (PINOT_EXEC_PLANNER) =="
PINOT_EXEC_PLANNER=scan cargo test -p pinot-core --test differential
PINOT_EXEC_PLANNER=inverted cargo test -p pinot-core --test differential
PINOT_EXEC_PLANNER=sorted cargo test -p pinot-core --test differential

echo "== differential suite with hedging off (PINOT_EXEC_HEDGE=0) =="
PINOT_EXEC_HEDGE=0 cargo test -p pinot-core --test differential

echo "== differential suite with the result cache on (PINOT_EXEC_RESULT_CACHE=1) =="
PINOT_EXEC_RESULT_CACHE=1 cargo test -p pinot-core --test differential

echo "== ingest differential suite (hybrid vs offline oracle, ingest-while-query) =="
cargo test -p pinot-core --test differential_ingest

echo "== ingest differential suite, legacy snapshot-rebuild path (PINOT_REALTIME_COLUMNAR=0) =="
PINOT_REALTIME_COLUMNAR=0 cargo test -p pinot-core --test differential_ingest

echo "== ingest differential suite, serial partition consumption (PINOT_INGEST_PARALLEL=0) =="
PINOT_INGEST_PARALLEL=0 cargo test -p pinot-core --test differential_ingest

echo "== kernel proptests (unpack_block/read_block/bitmap bulk extraction) =="
cargo test -p pinot-segment --test proptest_segment
cargo test -p pinot-bitmap --test proptest_bitmap

echo "== pruning proptests (bloom fp/fn bounds, evaluator soundness) =="
cargo test -p pinot-exec --test proptest_prune

echo "== morsel proptests (partitioning is a lossless exact cover) =="
cargo test -p pinot-exec --test proptest_morsel

echo "== profile-merge proptests (fold algebra, aggregation losslessness) =="
cargo test -p pinot-exec --test profile_prop

echo "== planner proptests (estimator bounds, monotonicity, path ≡ scan oracle) =="
cargo test -p pinot-exec --test proptest_planner

echo "== profiling plane (stats reconciliation, query ids, slow-query log) =="
cargo test -p pinot-core --test profiling

echo "== EXPLAIN PLAN golden stability =="
cargo test -p pinot-core --test explain_golden

echo "== metric-name registry vs DESIGN.md catalogue =="
cargo test -p pinot-core --test metrics_registry

echo "== prune bench acceptance (≥5x fewer segments, ≥2x p50) =="
cargo run --release -q -p pinot-bench --bin prune

echo "== profiling overhead acceptance (execute_profiled ≤5% vs execute) =="
cargo run --release -q -p pinot-bench --bin profile

echo "== morsel cost-gate regressions (fig7 shape inline, large scans fan out) =="
cargo test -p pinot-core --test morsel

echo "== chaos suite (fault injection + failover) =="
cargo test -p pinot-core --test chaos

echo "== scatter regressions (panicking/late server endpoints) =="
cargo test -p pinot-core --test scatter

echo "== survival suite (hedging, admission control, result cache) =="
cargo test -p pinot-core --test survival

echo "== broker bench acceptance (≥2x faulted p99 via hedging, ≥50% cache hits) =="
cargo run --release -q -p pinot-bench --bin broker

echo "== morsel scaling acceptance (gate no-overhead on WVMP, ≥2.5x on one big segment) =="
cargo run --release -q -p pinot-bench --bin scaling

echo "== planner bench acceptance (auto ≤ best single strategy, ≥2x vs worst on ≥2 shapes) =="
cargo run --release -q -p pinot-bench --bin planner

echo "== ingest bench acceptance (≥5x query p99 under concurrent ingest, bounded lag) =="
cargo run --release -q -p pinot-bench --bin ingest

echo "CI OK"
