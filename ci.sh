#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 test suites (root package:
# integration tests + examples). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1 tests (root package) =="
cargo test -q

echo "== chaos suite (fault injection + failover) =="
cargo test -p pinot-core --test chaos

echo "CI OK"
