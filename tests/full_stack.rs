//! Whole-system scenarios that cut across many crates at once: replica
//! convergence under the completion protocol, divergence repair, the
//! maintenance lifecycle (reindex + purge + retention on one table), and
//! large-cluster routing end to end.

use pinot::common::config::{RoutingStrategy, StreamConfig, TableConfig};
use pinot::common::query::QueryRequest;
use pinot::common::time::Clock;
use pinot::common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot::minion::PurgeSpec;
use pinot::{ClusterConfig, PinotCluster};

fn schema() -> Schema {
    Schema::new(
        "events",
        vec![
            FieldSpec::dimension("user", DataType::Long),
            FieldSpec::dimension("kind", DataType::String),
            FieldSpec::metric("n", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn row(user: i64, kind: &str, n: i64, day: i64) -> Record {
    Record::new(vec![
        Value::Long(user),
        Value::String(kind.into()),
        Value::Long(n),
        Value::Long(day),
    ])
}

fn count(cluster: &PinotCluster, pql: &str) -> i64 {
    let resp = cluster.query(pql);
    assert!(!resp.partial, "{pql}: {:?}", resp.exceptions);
    match &resp.result {
        pinot::common::query::QueryResult::Aggregation(rows) => {
            rows[0].value.as_i64().unwrap_or(-1)
        }
        other => panic!("{other:?}"),
    }
}

/// Replicas that consume at different paces (we tick servers unevenly)
/// must still converge to byte-identical committed segments — the whole
/// point of §3.3.6.
#[test]
fn replicas_converge_despite_uneven_consumption() {
    let clock = Clock::manual(1_700_000_000_000);
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(2)
            .with_clock(clock.clone()),
    )
    .unwrap();
    cluster.streams().create_topic("ev", 1).unwrap();
    cluster
        .create_table(
            TableConfig::realtime(
                "events",
                StreamConfig {
                    topic: "ev".into(),
                    flush_threshold_rows: 1_000_000, // force time-based flush
                    flush_threshold_millis: 60_000,
                },
            )
            .with_replication(2),
            schema(),
        )
        .unwrap();

    // Publish in two waves with uneven server ticks in between, so the two
    // replicas sit at different offsets when the flush deadline hits.
    for i in 0..300i64 {
        cluster
            .produce("ev", &Value::Long(i), row(i, "a", 1, 100))
            .unwrap();
    }
    // Only server 1 consumes the first wave.
    cluster.servers()[0].consume_tick().unwrap();
    for i in 300..500i64 {
        cluster
            .produce("ev", &Value::Long(i), row(i, "a", 1, 100))
            .unwrap();
    }
    // Now the flush deadline passes; both servers start polling from
    // different offsets (server 1: 300 consumed; server 2: 0).
    clock.advance(120_000);
    cluster.consume_until_idle().unwrap();

    // All 500 rows queryable, exactly once.
    assert_eq!(count(&cluster, "SELECT COUNT(*) FROM events"), 500);

    // The committed segment is identical on the object store and loaded on
    // both replicas.
    let leader = cluster.leader_controller().unwrap();
    let committed: Vec<String> = leader
        .list_segments("events_REALTIME")
        .into_iter()
        .filter(|s| leader.download_segment("events_REALTIME", s).is_ok())
        .collect();
    assert!(!committed.is_empty());
    for seg in &committed {
        let view = cluster.cluster_manager().external_view("events_REALTIME");
        let replicas = &view[seg];
        assert_eq!(replicas.len(), 2, "{seg} should be on both replicas");
        assert!(replicas
            .values()
            .all(|s| *s == pinot::cluster::SegmentState::Online));
    }
}

/// One table's full maintenance lifecycle: reindex after a config change,
/// purge a member, then age the data past retention.
#[test]
fn maintenance_lifecycle() {
    let clock = Clock::manual(1_700_000_000_000);
    let cluster = PinotCluster::start(ClusterConfig::default().with_clock(clock.clone())).unwrap();
    cluster
        .create_table(
            TableConfig::offline("events").with_retention(TimeUnit::Days, 30),
            schema(),
        )
        .unwrap();
    let today = clock.now_millis() / TimeUnit::Days.millis();
    cluster
        .upload_rows(
            "events",
            (0..200).map(|i| row(i % 20, "view", 1, today)).collect(),
        )
        .unwrap();

    // 1. Operator adds an inverted index to the config; the minion
    //    reindexes existing segments (§4.1's "reindex on the fly").
    let leader = cluster.leader_controller().unwrap();
    leader
        .update_table_config(
            TableConfig::offline("events")
                .with_retention(TimeUnit::Days, 30)
                .with_inverted_indexes(&["kind"]),
        )
        .unwrap();
    let report = cluster.run_reindex("events_OFFLINE").unwrap();
    assert_eq!(report.segments_rewritten, 1);
    assert_eq!(count(&cluster, "SELECT COUNT(*) FROM events"), 200);

    // 2. Purge user 7 (10 rows).
    let report = cluster
        .run_purge(&PurgeSpec {
            table: "events_OFFLINE".into(),
            column: "user".into(),
            values: vec![Value::Long(7)],
        })
        .unwrap();
    assert_eq!(report.records_removed, 10);
    assert_eq!(count(&cluster, "SELECT COUNT(*) FROM events"), 190);

    // 3. Time passes beyond retention; the GC removes the segment.
    clock.advance(40 * TimeUnit::Days.millis());
    let removed = cluster.run_retention().unwrap();
    assert_eq!(removed.len(), 1);
    assert_eq!(count(&cluster, "SELECT COUNT(*) FROM events"), 0);
}

/// Large-cluster routing (Algorithms 1–2) end to end: queries touch a
/// bounded number of servers, and answers stay correct.
#[test]
fn large_cluster_routing_bounds_fanout() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(12)).unwrap();
    cluster
        .create_table(
            TableConfig::offline("events")
                .with_replication(3)
                .with_routing(RoutingStrategy::LargeCluster {
                    target_servers: 4,
                    routing_table_count: 5,
                    generation_count: 40,
                }),
            schema(),
        )
        .unwrap();
    // 24 segments of 50 rows.
    for s in 0..24i64 {
        cluster
            .upload_rows(
                "events",
                (0..50).map(|i| row(s * 50 + i, "view", 1, 10)).collect(),
            )
            .unwrap();
    }

    let mut max_servers = 0;
    for _ in 0..20 {
        let resp = cluster.execute(&QueryRequest::new("SELECT COUNT(*) FROM events"));
        assert!(!resp.partial, "{:?}", resp.exceptions);
        assert_eq!(resp.result.single_aggregate(), Some(&Value::Long(24 * 50)));
        assert_eq!(resp.stats.num_segments_queried, 24);
        max_servers = max_servers.max(resp.stats.num_servers_queried);
    }
    // Far fewer than all 12 servers per query (target 4 + covering slack).
    assert!(
        (1..=8).contains(&max_servers),
        "queries touched up to {max_servers} servers"
    );
    // Several distinct routing tables are in rotation.
    assert_eq!(cluster.brokers()[0].num_routing_tables("events_OFFLINE"), 5);
}

/// Brokers keep answering while servers churn (kill + restart loop).
#[test]
fn query_availability_through_server_churn() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(3)).unwrap();
    cluster
        .create_table(TableConfig::offline("events").with_replication(2), schema())
        .unwrap();
    for s in 0..6i64 {
        cluster
            .upload_rows(
                "events",
                (0..50).map(|i| row(s * 50 + i, "view", 1, 10)).collect(),
            )
            .unwrap();
    }

    for victim in [1usize, 2, 3, 1, 2] {
        cluster.kill_server(victim).unwrap();
        // With replication 2 and one dead server, full coverage remains.
        assert_eq!(count(&cluster, "SELECT COUNT(*) FROM events"), 300);
        cluster.restart_server(victim).unwrap();
        assert_eq!(count(&cluster, "SELECT COUNT(*) FROM events"), 300);
    }
}
