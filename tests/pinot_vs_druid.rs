//! Cross-engine equivalence: the Pinot cluster (under every index
//! configuration) and the Druid-like baseline must return the same answers
//! for the same data and queries — the property every performance figure
//! in the evaluation silently relies on.

use pinot::baseline::DruidEngine;
use pinot::common::config::{StarTreeConfig, TableConfig};
use pinot::common::query::{QueryRequest, QueryResult};
use pinot::common::{Record, Schema};
use pinot::workloads::{anomaly, impressions, share_analytics, wvmp};
use pinot::{ClusterConfig, PinotCluster};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn close(x: f64, y: f64) -> bool {
    (x - y).abs() <= 1e-6 * x.abs().max(y.abs()).max(1.0)
}

/// Structural comparison with numeric tolerance (execution paths sum floats
/// in different orders).
fn results_equivalent(a: &QueryResult, b: &QueryResult) -> bool {
    match (a, b) {
        (QueryResult::Aggregation(x), QueryResult::Aggregation(y)) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|(p, q)| {
                    p.function == q.function
                        && match (p.value.as_f64(), q.value.as_f64()) {
                            (Some(m), Some(n)) => close(m, n),
                            _ => p.value == q.value,
                        }
                })
        }
        (QueryResult::GroupBy(x), QueryResult::GroupBy(y)) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|(tx, ty)| {
                    // Compare as maps: ties in top-n can order differently.
                    let to_map = |t: &pinot::common::query::GroupByRows| {
                        t.rows
                            .iter()
                            .map(|(k, v)| (format!("{k:?}"), v.as_f64().unwrap_or(f64::NAN)))
                            .collect::<std::collections::BTreeMap<_, _>>()
                    };
                    let (ma, mb) = (to_map(tx), to_map(ty));
                    if ma.len() != mb.len() {
                        return false;
                    }
                    // Tied boundary rows may differ; require 90% key overlap
                    // and matching values on the intersection.
                    let common: Vec<_> = ma.keys().filter(|k| mb.contains_key(*k)).collect();
                    common.len() * 10 >= ma.len() * 9
                        && common.iter().all(|k| close(ma[*k], mb[*k]))
                })
        }
        _ => false,
    }
}

fn check_workload(
    schema: Schema,
    table: &str,
    configs: Vec<TableConfig>,
    rows: Vec<Record>,
    queries: Vec<String>,
) {
    // Druid baseline.
    let mut druid = DruidEngine::new(3);
    druid
        .load_table(table, schema.clone(), rows.clone(), rows.len() / 5 + 1)
        .unwrap();

    // Pinot clusters, one per index configuration.
    let clusters: Vec<Arc<PinotCluster>> = configs
        .into_iter()
        .map(|cfg| {
            let cluster =
                Arc::new(PinotCluster::start(ClusterConfig::default().with_servers(3)).unwrap());
            cluster.create_table(cfg, schema.clone()).unwrap();
            for chunk in rows.chunks(rows.len() / 5 + 1) {
                cluster.upload_rows(table, chunk.to_vec()).unwrap();
            }
            cluster
        })
        .collect();

    for pql in &queries {
        let reference = druid.execute(&QueryRequest::new(pql)).unwrap();
        assert!(!reference.partial, "{pql}: {:?}", reference.exceptions);
        for (i, cluster) in clusters.iter().enumerate() {
            let got = cluster.query(pql);
            assert!(!got.partial, "{pql} (config {i}): {:?}", got.exceptions);
            assert!(
                results_equivalent(&reference.result, &got.result),
                "config {i} diverged on {pql}\n druid: {:?}\n pinot: {:?}",
                reference.result,
                got.result
            );
        }
    }
}

#[test]
fn anomaly_workload_equivalence() {
    let mut rng = StdRng::seed_from_u64(100);
    let rows = anomaly::rows(8_000, 17_000, &mut rng);
    let queries = anomaly::queries(40, 17_000, &mut rng);
    check_workload(
        anomaly::schema(),
        anomaly::TABLE,
        vec![
            TableConfig::offline(anomaly::TABLE),
            TableConfig::offline(anomaly::TABLE).with_inverted_indexes(&[
                "metric_name",
                "datacenter",
                "country",
            ]),
            TableConfig::offline(anomaly::TABLE).with_star_tree(StarTreeConfig {
                dimensions: vec![
                    "metric_name".into(),
                    "datacenter".into(),
                    "country".into(),
                    "platform".into(),
                    "fabric".into(),
                    "day".into(),
                ],
                metrics: vec!["value".into(), "events".into()],
                max_leaf_records: 20,
                skip_star_dimensions: vec![],
            }),
        ],
        rows,
        queries,
    );
}

#[test]
fn wvmp_workload_equivalence() {
    let mut rng = StdRng::seed_from_u64(101);
    let gen = wvmp::WvmpGen::new(300, 17_000);
    let rows = gen.rows(8_000, &mut rng);
    let queries = gen.queries(40, &mut rng);
    check_workload(
        wvmp::schema(),
        wvmp::TABLE,
        vec![
            TableConfig::offline(wvmp::TABLE).with_sorted_column("viewee_id"),
            TableConfig::offline(wvmp::TABLE).with_inverted_indexes(&["viewee_id"]),
        ],
        rows,
        queries,
    );
}

#[test]
fn share_workload_equivalence() {
    let mut rng = StdRng::seed_from_u64(102);
    let gen = share_analytics::ShareGen::new(200, 17_000);
    let rows = gen.rows(8_000, &mut rng);
    let queries = gen.queries(40, &mut rng);
    check_workload(
        share_analytics::schema(),
        share_analytics::TABLE,
        vec![TableConfig::offline(share_analytics::TABLE).with_sorted_column("item_id")],
        rows,
        queries,
    );
}

#[test]
fn impressions_workload_equivalence() {
    let mut rng = StdRng::seed_from_u64(103);
    let gen = impressions::ImpressionGen::new(500, 200, 420_000);
    let rows = gen.rows(8_000, &mut rng);
    let queries = gen.queries(40, &mut rng);
    check_workload(
        impressions::schema(),
        impressions::TABLE,
        vec![
            TableConfig::offline(impressions::TABLE).with_sorted_column("member_id"),
            TableConfig::offline(impressions::TABLE).with_routing(
                pinot::common::config::RoutingStrategy::Partitioned {
                    column: "member_id".into(),
                    num_partitions: 3,
                },
            ),
        ],
        rows,
        queries,
    );
}
