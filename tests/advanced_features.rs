//! Feature-depth integration tests: multi-value columns end to end, exact
//! distinct counts, directory-backed object storage, the background
//! realtime pump, broker pooling, and query deadline behaviour.

use pinot::common::config::{StreamConfig, TableConfig};
use pinot::common::query::{QueryRequest, QueryResult};
use pinot::common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot::pump::RealtimePump;
use pinot::{ClusterConfig, PinotCluster};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn multi_value_columns_end_to_end() {
    let cluster = PinotCluster::start(ClusterConfig::default()).unwrap();
    let schema = Schema::new(
        "posts",
        vec![
            FieldSpec::dimension("author", DataType::Long),
            FieldSpec::multi_value_dimension("tags", DataType::String),
            FieldSpec::metric("likes", DataType::Long),
        ],
    )
    .unwrap();
    cluster
        .create_table(
            TableConfig::offline("posts").with_inverted_indexes(&["tags"]),
            schema,
        )
        .unwrap();

    let rows = vec![
        Record::new(vec![
            Value::Long(1),
            Value::StringArray(vec!["rust".into(), "db".into()]),
            Value::Long(10),
        ]),
        Record::new(vec![
            Value::Long(2),
            Value::StringArray(vec!["db".into()]),
            Value::Long(20),
        ]),
        Record::new(vec![
            Value::Long(3),
            Value::StringArray(vec!["rust".into(), "olap".into(), "db".into()]),
            Value::Long(30),
        ]),
    ];
    cluster.upload_rows("posts", rows).unwrap();

    // MV equality matches any element (served by the inverted index).
    let resp = cluster.query("SELECT SUM(likes) FROM posts WHERE tags = 'rust'");
    assert_eq!(resp.result.single_aggregate(), Some(&Value::Double(40.0)));

    // MV group-by contributes one group per element.
    let resp = cluster.query("SELECT SUM(likes) FROM posts GROUP BY tags TOP 10");
    match &resp.result {
        QueryResult::GroupBy(tables) => {
            let rows = &tables[0].rows;
            let get = |tag: &str| {
                rows.iter()
                    .find(|(k, _)| k[0] == Value::from(tag))
                    .map(|(_, v)| v.clone())
            };
            assert_eq!(get("db"), Some(Value::Double(60.0)));
            assert_eq!(get("rust"), Some(Value::Double(40.0)));
            assert_eq!(get("olap"), Some(Value::Double(30.0)));
        }
        other => panic!("{other:?}"),
    }

    // NOT IN over a multi-value column: posts with no matching element.
    let resp = cluster.query("SELECT COUNT(*) FROM posts WHERE tags NOT IN ('rust')");
    assert_eq!(resp.result.single_aggregate(), Some(&Value::Long(1)));
}

#[test]
fn distinct_count_is_exact_across_segments_and_servers() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(3)).unwrap();
    let schema = Schema::new(
        "visits",
        vec![
            FieldSpec::dimension("page", DataType::String),
            FieldSpec::dimension("visitor", DataType::Long),
        ],
    )
    .unwrap();
    cluster
        .create_table(TableConfig::offline("visits"), schema)
        .unwrap();

    // 600 rows over 3 segments; visitors overlap across segments, so a
    // naive per-segment sum would overcount. 120 distinct visitors total.
    for seg in 0..3i64 {
        let rows: Vec<Record> = (0..200)
            .map(|i| {
                Record::new(vec![
                    Value::String(format!("p{}", i % 4)),
                    Value::Long((seg * 17 + i) % 120),
                ])
            })
            .collect();
        cluster.upload_rows("visits", rows).unwrap();
    }
    let resp = cluster.query("SELECT DISTINCTCOUNT(visitor) FROM visits");
    assert_eq!(resp.result.single_aggregate(), Some(&Value::Long(120)));

    // Per-page distinct counts also merge exactly.
    let resp = cluster.query("SELECT DISTINCTCOUNT(visitor) FROM visits GROUP BY page TOP 10");
    match &resp.result {
        QueryResult::GroupBy(tables) => {
            let total: i64 = tables[0]
                .rows
                .iter()
                .map(|(_, v)| v.as_i64().unwrap())
                .sum();
            assert!(total >= 120, "per-page distincts can overlap: {total}");
            assert_eq!(tables[0].rows.len(), 4);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn directory_backed_object_store() {
    let dir = std::env::temp_dir().join(format!("pinot-objstore-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let objstore = pinot_objstore::DirObjectStore::shared(&dir).unwrap();
    let cfg = ClusterConfig {
        objstore: Some(objstore),
        ..ClusterConfig::default()
    };
    let cluster = PinotCluster::start(cfg).unwrap();

    let schema = Schema::new(
        "t",
        vec![
            FieldSpec::dimension("k", DataType::Long),
            FieldSpec::metric("m", DataType::Long),
        ],
    )
    .unwrap();
    cluster
        .create_table(TableConfig::offline("t"), schema)
        .unwrap();
    cluster
        .upload_rows(
            "t",
            (0..100)
                .map(|i| Record::new(vec![Value::Long(i), Value::Long(1)]))
                .collect(),
        )
        .unwrap();

    // The blob physically exists on disk.
    let files: Vec<_> = walk(&dir);
    assert!(
        files.iter().any(|f| f.contains("t_OFFLINE")),
        "no segment file under {dir:?}: {files:?}"
    );
    let resp = cluster.query("SELECT COUNT(*) FROM t");
    assert_eq!(resp.result.single_aggregate(), Some(&Value::Long(100)));
    std::fs::remove_dir_all(&dir).unwrap();
}

fn walk(dir: &std::path::Path) -> Vec<String> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                out.extend(walk(&p));
            } else {
                out.push(p.to_string_lossy().into_owned());
            }
        }
    }
    out
}

#[test]
fn realtime_pump_ingests_in_background() {
    let cluster = Arc::new(PinotCluster::start(ClusterConfig::default().with_servers(1)).unwrap());
    cluster.streams().create_topic("clicks", 1).unwrap();
    let schema = Schema::new(
        "clicks",
        vec![
            FieldSpec::dimension("user", DataType::Long),
            FieldSpec::time("ts", DataType::Long, TimeUnit::Seconds),
        ],
    )
    .unwrap();
    cluster
        .create_table(
            TableConfig::realtime(
                "clicks",
                StreamConfig {
                    topic: "clicks".into(),
                    flush_threshold_rows: 10_000,
                    flush_threshold_millis: i64::MAX / 4,
                },
            ),
            schema,
        )
        .unwrap();

    let pump = RealtimePump::start(&cluster, Duration::from_millis(2));
    for i in 0..500i64 {
        cluster
            .produce(
                "clicks",
                &Value::Long(i),
                Record::new(vec![Value::Long(i), Value::Long(1_000 + i)]),
            )
            .unwrap();
    }
    // Wait (bounded) for the pump to drain the stream.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let resp = cluster.query("SELECT COUNT(*) FROM clicks");
        if resp.result.single_aggregate() == Some(&Value::Long(500)) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pump did not ingest in time: {:?}",
            resp.result
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    pump.stop();
}

#[test]
fn broker_pool_round_robins() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_brokers(3)).unwrap();
    let schema = Schema::new("t", vec![FieldSpec::dimension("k", DataType::Long)]).unwrap();
    cluster
        .create_table(TableConfig::offline("t"), schema)
        .unwrap();
    cluster
        .upload_rows(
            "t",
            (0..10).map(|i| Record::new(vec![Value::Long(i)])).collect(),
        )
        .unwrap();
    // All brokers answer identically.
    let mut ids = std::collections::HashSet::new();
    for _ in 0..6 {
        let b = cluster.broker();
        ids.insert(b.id().clone());
        let resp = b.execute(&QueryRequest::new("SELECT COUNT(*) FROM t"));
        assert_eq!(resp.result.single_aggregate(), Some(&Value::Long(10)));
    }
    assert_eq!(ids.len(), 3, "round-robin should touch every broker");
}

#[test]
fn zero_timeout_yields_partial_not_panic() {
    let cluster = PinotCluster::start(ClusterConfig::default()).unwrap();
    let schema = Schema::new("t", vec![FieldSpec::dimension("k", DataType::Long)]).unwrap();
    cluster
        .create_table(TableConfig::offline("t"), schema)
        .unwrap();
    cluster
        .upload_rows(
            "t",
            (0..5000)
                .map(|i| Record::new(vec![Value::Long(i)]))
                .collect(),
        )
        .unwrap();
    // An unmeetable deadline must degrade to a partial response.
    let resp = cluster.execute(&QueryRequest::new("SELECT COUNT(*) FROM t").with_timeout_ms(0));
    // Either the query squeaked through (fast machine) or it's partial;
    // both are acceptable, panicking/erroring is not.
    if resp.partial {
        assert!(!resp.exceptions.is_empty());
    }
}
