//! End-to-end observability: after a hybrid (offline + realtime) workload
//! the cluster-wide metrics snapshot must show broker phase timings,
//! server queue/execute timings, ingestion lag, and completion-protocol
//! activity; traced queries must expose phase spans, per-segment plan
//! kinds, and per-server contributions; partial queries must land in the
//! slow/partial query log.

use pinot::common::config::{StreamConfig, TableConfig};
use pinot::common::query::QueryRequest;
use pinot::common::time::Clock;
use pinot::common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot::{ClusterConfig, PinotCluster};

fn schema() -> Schema {
    Schema::new(
        "events",
        vec![
            FieldSpec::dimension("user", DataType::Long),
            FieldSpec::dimension("kind", DataType::String),
            FieldSpec::metric("n", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn row(user: i64, kind: &str, n: i64, day: i64) -> Record {
    Record::new(vec![
        Value::Long(user),
        Value::String(kind.into()),
        Value::Long(n),
        Value::Long(day),
    ])
}

fn count(cluster: &PinotCluster, pql: &str) -> i64 {
    let resp = cluster.query(pql);
    assert!(!resp.partial, "{pql}: {:?}", resp.exceptions);
    match &resp.result {
        pinot::common::query::QueryResult::Aggregation(rows) => {
            rows[0].value.as_i64().unwrap_or(-1)
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn hybrid_workload_populates_metrics_and_traces() {
    let clock = Clock::manual(1_700_000_000_000);
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(2)
            .with_clock(clock.clone()),
    )
    .unwrap();
    cluster.streams().create_topic("ev", 1).unwrap();
    cluster
        .create_table(TableConfig::offline("events"), schema())
        .unwrap();
    cluster
        .create_table(
            TableConfig::realtime(
                "events",
                StreamConfig {
                    topic: "ev".into(),
                    flush_threshold_rows: 25,
                    flush_threshold_millis: i64::MAX / 4,
                },
            ),
            schema(),
        )
        .unwrap();

    // Offline side: two segments covering days 100..=101.
    for batch in 0..2i64 {
        let rows: Vec<Record> = (0..30)
            .map(|i| row(batch * 100 + i, "a", 1, 100 + batch))
            .collect();
        cluster.upload_rows("events", rows).unwrap();
    }
    // Realtime side: 60 rows on days 101..=102; the 25-row flush threshold
    // forces at least two segment commits through the completion protocol.
    for i in 0..60i64 {
        let day = if i < 30 { 101 } else { 102 };
        cluster
            .produce("ev", &Value::Long(i), row(1000 + i, "b", 2, day))
            .unwrap();
    }
    cluster.consume_until_idle().unwrap();

    // A few queries to exercise parse/route/execute/merge on both sides of
    // the time boundary. Boundary = max offline day (101): the offline side
    // answers day < 101 (30 rows), the realtime side day >= 101 (60 rows).
    assert_eq!(count(&cluster, "SELECT COUNT(*) FROM events"), 90);
    let sum = cluster.query("SELECT SUM(n) FROM events");
    assert!(!sum.partial, "{:?}", sum.exceptions);
    assert!(sum.result.single_aggregate().is_some());
    assert_eq!(
        count(&cluster, "SELECT COUNT(*) FROM events WHERE day = 102"),
        30
    );

    // Traced query: spans, plan kinds, and per-server contributions.
    let (resp, trace) = cluster.execute_traced(&QueryRequest::new("SELECT COUNT(*) FROM events"));
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert!(!trace.spans.is_empty());
    assert!(trace.spans.iter().any(|s| s.name == "parse"));
    assert!(trace.spans.iter().any(|s| s.name.starts_with("physical:")));
    // Depth-0 spans tile the whole execution: their durations sum to the
    // reported query time (both measured on the same wall clock).
    let depth0_ms: f64 = trace
        .spans
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| s.duration_ms)
        .sum();
    let reported = resp.stats.time_used_ms as f64;
    assert!(
        (depth0_ms - reported).abs() <= 5.0,
        "span sum {depth0_ms} vs time_used_ms {reported}"
    );
    assert!(!trace.segment_plans.is_empty());
    for (seg, kind) in &trace.segment_plans {
        assert!(
            matches!(kind.as_str(), "metadata_only" | "star_tree" | "raw"),
            "{seg}: unknown plan kind {kind}"
        );
    }
    assert!(!resp.stats.per_server.is_empty());
    assert!(resp.stats.per_server.iter().all(|c| c.responded));

    // Cluster-wide metrics snapshot.
    let snap = cluster.metrics_snapshot();
    for name in [
        "broker.phase.parse_ms",
        "broker.phase.route_ms",
        "broker.phase.merge_ms",
        "broker.phase.server_execute_ms",
        "broker.query.total_ms",
        "server.exec.queue_ms",
        "server.exec.execute_ms",
    ] {
        let hist = snap.histogram(name).unwrap_or_else(|| panic!("no {name}"));
        assert!(hist.count() > 0, "{name} is empty");
    }
    assert!(snap.counter("broker.query.total") >= 4);
    assert_eq!(snap.counter("broker.query.failed"), 0);
    assert!(snap.counter("server.consume.records") >= 60);
    assert!(
        snap.gauges
            .keys()
            .any(|k| k.starts_with("server.consume.lag.")),
        "no ingestion-lag gauge in {:?}",
        snap.gauges.keys().collect::<Vec<_>>()
    );
    assert!(snap.counter_family("controller.completion.instruction.") > 0);
    assert!(
        snap.counter_family("controller.fsm.transition.") > 0,
        "no FSM transitions recorded"
    );
    assert!(snap.counter("controller.commit.ok") >= 2);
    assert!(snap.counter("controller.leader.elections") >= 1);

    // The text rendering carries all three metric kinds.
    let text = cluster.render_metrics();
    assert!(text.contains("== counters =="));
    assert!(text.contains("== gauges =="));
    assert!(text.contains("== histograms (ms) =="));
    assert!(text.contains("broker.phase.parse_ms"));
}

#[test]
fn timed_out_queries_land_in_query_log_with_per_server_stats() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(2)).unwrap();
    cluster
        .create_table(TableConfig::offline("events"), schema())
        .unwrap();
    // Four segments spread over two servers so the broker takes the
    // scatter/gather path (the single-server fast path has no timeout to
    // hit before the one server's synchronous call returns).
    for batch in 0..4i64 {
        let rows: Vec<Record> = (0..20).map(|i| row(batch * 100 + i, "a", 1, 100)).collect();
        cluster.upload_rows("events", rows).unwrap();
    }
    assert_eq!(count(&cluster, "SELECT COUNT(*) FROM events"), 80);

    // An already-expired deadline forces a scatter timeout: the response is
    // partial and every routed server is reported as not responded.
    let req = QueryRequest::new("SELECT SUM(n) FROM events").with_timeout_ms(0);
    let resp = cluster.execute(&req);
    assert!(resp.partial);
    assert!(!resp.exceptions.is_empty());
    assert!(!resp.stats.per_server.is_empty());
    assert!(resp.stats.per_server.iter().any(|c| !c.responded));

    let snap = cluster.metrics_snapshot();
    assert!(snap.counter("broker.scatter.timeout") >= 1);
    assert!(snap.counter("broker.query.partial") >= 1);

    // Only the partial query is interesting enough for the query log; the
    // fast, complete COUNT(*) above is not retained.
    let recent = cluster.recent_queries();
    assert_eq!(recent.len(), 1);
    let entry = &recent[0];
    assert!(entry.partial);
    assert!(entry.exception_count > 0);
    assert_eq!(entry.query, "SELECT SUM(n) FROM events");
    let trace = entry.trace.as_ref().expect("logged query keeps its trace");
    assert!(trace.spans.iter().any(|s| s.name == "scatter"));
}
