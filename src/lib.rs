//! # pinot — a Rust reproduction of "Pinot: Realtime OLAP for 530 Million Users"
//!
//! This facade crate re-exports the integrated system from [`pinot_core`]
//! and anchors the workspace's examples and integration tests. See the
//! repository README for a tour, DESIGN.md for the system inventory, and
//! EXPERIMENTS.md for the paper-versus-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use pinot::{ClusterConfig, PinotCluster};
//! use pinot::common::config::TableConfig;
//! use pinot::common::{DataType, FieldSpec, Record, Schema, Value};
//!
//! let cluster = PinotCluster::start(ClusterConfig::default()).unwrap();
//! let schema = Schema::new(
//!     "hits",
//!     vec![
//!         FieldSpec::dimension("country", DataType::String),
//!         FieldSpec::metric("clicks", DataType::Long),
//!     ],
//! )
//! .unwrap();
//! cluster.create_table(TableConfig::offline("hits"), schema).unwrap();
//! cluster
//!     .upload_rows(
//!         "hits",
//!         vec![
//!             Record::new(vec![Value::from("us"), Value::Long(3)]),
//!             Record::new(vec![Value::from("de"), Value::Long(4)]),
//!         ],
//!     )
//!     .unwrap();
//! let resp = cluster.query("SELECT SUM(clicks) FROM hits");
//! assert_eq!(resp.result.single_aggregate(), Some(&Value::Double(7.0)));
//! ```

pub use pinot_core::*;

/// The Druid-like comparison engine used throughout the paper's evaluation.
pub use pinot_baseline as baseline;
/// Synthetic generators for the paper's four evaluation workloads.
pub use pinot_workloads as workloads;
