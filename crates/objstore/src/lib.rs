//! Durable object store substrate.
//!
//! Pinot keeps all persistent segment data in a durable object store (NFS
//! at LinkedIn, Azure Disk elsewhere, §3.2/§3.4); local server disks are
//! only caches. This crate defines that contract — immutable blobs put/get
//! by key, listable by prefix — with two implementations: an in-memory
//! store for tests and simulations, and a directory-backed store that
//! actually writes files.

use bytes::Bytes;
use parking_lot::RwLock;
use pinot_common::{PinotError, Result};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A durable blob store. Keys are slash-separated logical paths, e.g.
/// `segments/myTable_OFFLINE/myTable__3`.
pub trait ObjectStore: Send + Sync {
    /// Store a blob (overwrites an existing key — segment *replacement*,
    /// which is how Pinot applies corrections to immutable data).
    fn put(&self, key: &str, data: Bytes) -> Result<()>;

    /// Fetch a blob.
    fn get(&self, key: &str) -> Result<Bytes>;

    fn delete(&self, key: &str) -> Result<()>;

    fn exists(&self, key: &str) -> bool;

    /// All keys with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Total bytes stored under a prefix (quota accounting).
    fn size_under(&self, prefix: &str) -> u64;
}

/// Shared handle.
pub type ObjectStoreRef = Arc<dyn ObjectStore>;

/// Validate a key: non-empty, no traversal, printable segments.
fn validate_key(key: &str) -> Result<()> {
    if key.is_empty() || key.len() > 512 {
        return Err(PinotError::Io(format!("invalid object key {key:?}")));
    }
    for part in key.split('/') {
        if part.is_empty() || part == "." || part == ".." {
            return Err(PinotError::Io(format!("invalid object key {key:?}")));
        }
    }
    Ok(())
}

/// In-memory object store.
#[derive(Default)]
pub struct MemoryObjectStore {
    blobs: RwLock<BTreeMap<String, Bytes>>,
}

impl MemoryObjectStore {
    pub fn new() -> MemoryObjectStore {
        MemoryObjectStore::default()
    }

    pub fn shared() -> ObjectStoreRef {
        Arc::new(MemoryObjectStore::new())
    }
}

impl ObjectStore for MemoryObjectStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        validate_key(key)?;
        self.blobs.write().insert(key.to_string(), data);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.blobs
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| PinotError::Io(format!("object {key:?} not found")))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.blobs
            .write()
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| PinotError::Io(format!("object {key:?} not found")))
    }

    fn exists(&self, key: &str) -> bool {
        self.blobs.read().contains_key(key)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.blobs
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn size_under(&self, prefix: &str) -> u64 {
        self.blobs
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v.len() as u64)
            .sum()
    }
}

/// Directory-backed object store. Keys map to files under the root; slashes
/// become directories.
pub struct DirObjectStore {
    root: PathBuf,
}

impl DirObjectStore {
    pub fn new(root: impl Into<PathBuf>) -> Result<DirObjectStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DirObjectStore { root })
    }

    pub fn shared(root: impl Into<PathBuf>) -> Result<ObjectStoreRef> {
        Ok(Arc::new(DirObjectStore::new(root)?))
    }

    fn path_of(&self, key: &str) -> Result<PathBuf> {
        validate_key(key)?;
        Ok(self.root.join(key))
    }

    fn collect(&self, dir: &Path, rel: &str, out: &mut Vec<String>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let key = if rel.is_empty() {
                name.clone()
            } else {
                format!("{rel}/{name}")
            };
            let path = entry.path();
            if path.is_dir() {
                self.collect(&path, &key, out);
            } else {
                out.push(key);
            }
        }
    }
}

impl ObjectStore for DirObjectStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        let path = self.path_of(key)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Write-then-rename for atomicity against concurrent readers.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &data)?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let path = self.path_of(key)?;
        let data =
            std::fs::read(&path).map_err(|e| PinotError::Io(format!("object {key:?}: {e}")))?;
        Ok(Bytes::from(data))
    }

    fn delete(&self, key: &str) -> Result<()> {
        let path = self.path_of(key)?;
        std::fs::remove_file(&path).map_err(|e| PinotError::Io(format!("object {key:?}: {e}")))
    }

    fn exists(&self, key: &str) -> bool {
        match self.path_of(key) {
            Ok(p) => p.is_file(),
            Err(_) => false,
        }
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.collect(&self.root, "", &mut out);
        out.retain(|k| k.starts_with(prefix));
        out.sort();
        out
    }

    fn size_under(&self, prefix: &str) -> u64 {
        self.list(prefix)
            .iter()
            .filter_map(|k| self.path_of(k).ok())
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn ObjectStore) {
        store.put("a/b/seg1", Bytes::from_static(b"hello")).unwrap();
        store
            .put("a/b/seg2", Bytes::from_static(b"world!"))
            .unwrap();
        store.put("a/c/seg3", Bytes::from_static(b"x")).unwrap();

        assert_eq!(store.get("a/b/seg1").unwrap(), Bytes::from_static(b"hello"));
        assert!(store.exists("a/b/seg2"));
        assert!(!store.exists("a/b/nope"));
        assert!(store.get("a/b/nope").is_err());

        assert_eq!(store.list("a/b/"), vec!["a/b/seg1", "a/b/seg2"]);
        assert_eq!(store.list("a/"), vec!["a/b/seg1", "a/b/seg2", "a/c/seg3"]);
        assert_eq!(store.size_under("a/b/"), 11);

        // Overwrite = segment replacement.
        store.put("a/b/seg1", Bytes::from_static(b"v2")).unwrap();
        assert_eq!(store.get("a/b/seg1").unwrap(), Bytes::from_static(b"v2"));

        store.delete("a/b/seg1").unwrap();
        assert!(store.delete("a/b/seg1").is_err());
        assert!(!store.exists("a/b/seg1"));
    }

    #[test]
    fn memory_store_contract() {
        exercise(&MemoryObjectStore::new());
    }

    #[test]
    fn dir_store_contract() {
        let dir = std::env::temp_dir().join(format!(
            "pinot-objstore-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirObjectStore::new(&dir).unwrap();
        exercise(&store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_keys() {
        let store = MemoryObjectStore::new();
        for key in ["", "a//b", "../etc/passwd", "a/./b", "/abs"] {
            assert!(store.put(key, Bytes::new()).is_err(), "{key:?}");
        }
    }
}
