//! The Pinot server (§3.2): hosts segments, consumes realtime streams,
//! executes per-segment query plans, and enforces tenant quotas.
//!
//! A server is a Helix *participant*: the controller drives it through the
//! segment state machine (Figure 3). `OFFLINE→ONLINE` downloads the blob
//! from the object store (through the lead controller) and loads it —
//! rebuilding any indexes the current table config asks for, which is how
//! Pinot deploys new index types without users noticing (§4.1).
//! `OFFLINE→CONSUMING` attaches a stream consumer at the controller-recorded
//! start offset. Consumption advances via [`Server::consume_tick`]; when a
//! consuming segment reaches its end criteria the server runs the
//! segment-completion protocol against the lead controller (§3.3.6).

pub mod tenancy;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use pinot_chaos::{sites, FaultAction, FaultContext, FaultInjector};
use pinot_cluster::{ClusterManager, Participant, SegmentState};
use pinot_common::config::TableConfig;
use pinot_common::ids::{InstanceId, SegmentName};
use pinot_common::profile::{aggregate_segment_profiles, ProfileNode};
use pinot_common::protocol::{CompletionInstruction, CompletionPoll};
use pinot_common::time::Clock;
use pinot_common::{PinotError, Result, RetryPolicy, Schema};
use pinot_controller::ControllerGroup;
use pinot_exec::segment_exec::{execute_on_segment_with, IntermediateResult, SegmentHandle};
use pinot_exec::{
    collected_profiles, explain_segment, merge_intermediate, plan_segment, prune_default,
    CostModel, ExecOptions, ParallelExec, PlanKind, PlannerMode, Prunable, PruneEvaluator,
    PruneOutcome, SegmentExplain,
};
use pinot_obs::Obs;
use pinot_pql::{CmpOp, Predicate, Query};
use pinot_segment::builder::BuilderConfig;
use pinot_segment::metadata::PartitionInfo;
use pinot_segment::MutableSegment;
use pinot_startree::build_star_tree;
use pinot_stream::{PartitionConsumer, StreamRegistry};
use pinot_taskpool::{Deadline, TaskPool};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tenancy::{TenantThrottle, TokenBucketConfig};

/// Records pulled from the stream per consume tick and per segment.
const CONSUME_BATCH: usize = 1024;

/// `PINOT_INGEST_PARALLEL=0` advances consuming partitions serially on
/// the tick thread; anything else (or unset) fans them out as one task
/// per partition on the server's pool.
pub fn ingest_parallel_default() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| std::env::var("PINOT_INGEST_PARALLEL").map_or(true, |v| v != "0"))
}

/// Backpressure cap on total buffered (unsealed) rows across one server's
/// consuming segments — above it, fetching pauses until sealing drains
/// the backlog. `PINOT_INGEST_MAX_BUFFERED_ROWS` overrides.
pub fn ingest_max_buffered_rows_default() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("PINOT_INGEST_MAX_BUFFERED_ROWS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4_000_000)
    })
}

struct ConsumingSegment {
    mutable: Arc<MutableSegment>,
    consumer: Mutex<PartitionConsumer>,
    partition: u32,
    reached_end: AtomicBool,
}

struct TableState {
    config: TableConfig,
    schema: Schema,
    online: HashMap<String, SegmentHandle>,
    consuming: HashMap<String, Arc<ConsumingSegment>>,
}

/// How many of the slowest segments a profiled server response keeps as
/// exact per-segment nodes; the rest fold into per-shape summary nodes.
const PROFILE_KEEP_EXACT: usize = 4;

/// Profile node for a segment skipped by statistics-based pruning: no
/// operators ran, so the node only carries the prune attribution and the
/// document count the skip avoided scanning.
fn pruned_segment_profile(
    seg_name: impl Into<std::sync::Arc<str>>,
    outcome: &PruneOutcome,
    docs: u64,
) -> ProfileNode {
    let mut seg = ProfileNode::named("segment", seg_name);
    seg.prune = Some(outcome.level.map(|l| l.as_str()).unwrap_or("stats"));
    seg.docs_in = docs;
    seg.segments = 1;
    seg
}

/// One Pinot server instance.
pub struct Server {
    id: InstanceId,
    controllers: ControllerGroup,
    cluster: ClusterManager,
    streams: StreamRegistry,
    clock: Clock,
    throttle: TenantThrottle,
    tables: RwLock<HashMap<String, TableState>>,
    obs: Arc<Obs>,
    /// Fault-injection hook; a default (empty) injector in production.
    chaos: RwLock<Arc<FaultInjector>>,
    /// Backoff for transient stream-fetch failures.
    retry: RetryPolicy,
    /// Work-stealing pool for per-segment query execution and segment
    /// sealing (§3.3.4); sized from `PINOT_TASKPOOL_THREADS` or the
    /// machine's core count.
    pool: RwLock<Arc<TaskPool>>,
    /// Per-server override for the batched execution kernels; `None`
    /// falls back to the `PINOT_EXEC_BATCH` env default.
    exec_batch: RwLock<Option<bool>>,
    /// Per-server override for the statistics-based pruning pipeline;
    /// `None` falls back to the `PINOT_EXEC_PRUNE` env default.
    exec_prune: RwLock<Option<bool>>,
    /// Per-server morsel-size override for intra-segment splitting;
    /// `None` falls back to the `PINOT_EXEC_MORSEL_DOCS` env default.
    exec_morsel_docs: RwLock<Option<usize>>,
    /// Per-server fan-out threshold override (estimated ns of scan work
    /// below which a request runs inline); `None` falls back to the
    /// `PINOT_EXEC_FANOUT_NS` env default.
    exec_fanout_ns: RwLock<Option<u64>>,
    /// Per-server access-path strategy override for filter leaves;
    /// `None` falls back to the `PINOT_EXEC_PLANNER` env default.
    exec_planner: RwLock<Option<PlannerMode>>,
    /// Serve consuming segments from columnar consistent cuts (`true`,
    /// the default) or the legacy rebuild-on-query snapshot (`false`,
    /// the benchmark baseline); `None` falls back to the
    /// `PINOT_REALTIME_COLUMNAR` env default.
    realtime_columnar: RwLock<Option<bool>>,
    /// Advance consuming partitions concurrently on the task pool;
    /// `None` falls back to the `PINOT_INGEST_PARALLEL` env default.
    ingest_parallel: RwLock<Option<bool>>,
    /// Backpressure cap: total buffered (unsealed) rows across this
    /// server's consuming segments above which consumption pauses until
    /// sealing drains the backlog; `None` falls back to the
    /// `PINOT_INGEST_MAX_BUFFERED_ROWS` env default.
    ingest_max_buffered_rows: RwLock<Option<usize>>,
    /// Calibrated per-doc scan cost feeding the fan-out gate, refreshed
    /// from the `exec.scan_ns_per_doc` histogram every
    /// [`CALIBRATE_EVERY`] requests. Only ever affects *scheduling*
    /// (inline vs fan-out), never result bytes.
    exec_ns_per_doc: RwLock<f64>,
    /// Requests executed, for the calibration cadence.
    exec_requests: AtomicU64,
}

/// How often (in requests) the cost model re-reads the measured
/// `exec.scan_ns_per_doc` histogram mean.
const CALIBRATE_EVERY: u64 = 64;

/// A broker's request to one server: run `query` over this server's share
/// of the routing table (§3.3.3 step 3).
#[derive(Clone)]
pub struct ServerRequest {
    pub table: String,
    pub query: Arc<Query>,
    pub segments: Vec<String>,
    pub tenant: String,
    /// The broker's scatter deadline; segment execution stops once it has
    /// elapsed — nobody is waiting for the rest.
    pub deadline: Option<std::time::Instant>,
    /// Broker-assigned query id, echoed back in the partial's stats so
    /// spans, logs, and profiles from every server join on one key.
    pub query_id: u64,
    /// Collect a per-operator profile tree alongside the partial result.
    /// Never changes the result payload or stats.
    pub profile: bool,
    /// With `profile`, also collect the per-conjunct access-path report
    /// for `EXPLAIN ANALYZE`.
    pub analyze: bool,
}

impl Server {
    pub fn new(
        n: usize,
        controllers: ControllerGroup,
        cluster: ClusterManager,
        streams: StreamRegistry,
        clock: Clock,
    ) -> Arc<Server> {
        Server::with_obs(n, controllers, cluster, streams, clock, Obs::shared())
    }

    /// Like [`Server::new`] but sharing a cluster-wide observability sink.
    pub fn with_obs(
        n: usize,
        controllers: ControllerGroup,
        cluster: ClusterManager,
        streams: StreamRegistry,
        clock: Clock,
        obs: Arc<Obs>,
    ) -> Arc<Server> {
        let throttle = TenantThrottle::new(clock.clone(), TokenBucketConfig::default());
        let pool = Arc::new(TaskPool::from_env(Some(Arc::clone(&obs))));
        Arc::new(Server {
            id: InstanceId::server(n),
            controllers,
            cluster,
            streams,
            clock,
            throttle,
            tables: RwLock::new(HashMap::new()),
            obs,
            chaos: RwLock::new(Arc::new(FaultInjector::new())),
            retry: RetryPolicy::default().with_seed(n as u64),
            pool: RwLock::new(pool),
            exec_batch: RwLock::new(None),
            exec_prune: RwLock::new(None),
            exec_morsel_docs: RwLock::new(None),
            exec_fanout_ns: RwLock::new(None),
            exec_planner: RwLock::new(None),
            realtime_columnar: RwLock::new(None),
            ingest_parallel: RwLock::new(None),
            ingest_max_buffered_rows: RwLock::new(None),
            exec_ns_per_doc: RwLock::new(pinot_exec::morsel::DEFAULT_NS_PER_DOC),
            exec_requests: AtomicU64::new(0),
        })
    }

    /// Force the batched (`Some(true)`) or row (`Some(false)`) execution
    /// path for this server; `None` restores the `PINOT_EXEC_BATCH`
    /// env default. See `ClusterConfig::with_exec_batch`.
    pub fn set_exec_batch(&self, batch: Option<bool>) {
        *self.exec_batch.write() = batch;
    }

    /// Force the pruning pipeline on (`Some(true)`) or off
    /// (`Some(false)`) for this server; `None` restores the
    /// `PINOT_EXEC_PRUNE` env default. See `ClusterConfig::with_exec_prune`.
    pub fn set_exec_prune(&self, prune: Option<bool>) {
        *self.exec_prune.write() = prune;
    }

    /// Override the morsel size for this server's segment scans
    /// (documents per morsel, rounded to the 1024-doc decode-block
    /// grid); `None` restores the `PINOT_EXEC_MORSEL_DOCS` env default.
    /// See `ClusterConfig::with_morsel_docs`.
    pub fn set_morsel_docs(&self, docs: Option<usize>) {
        *self.exec_morsel_docs.write() = docs;
    }

    /// Override the fan-out threshold (estimated ns of scan work below
    /// which a request runs inline on the caller thread); `None`
    /// restores the `PINOT_EXEC_FANOUT_NS` env default. See
    /// `ClusterConfig::with_fanout_threshold_ns`.
    pub fn set_fanout_threshold_ns(&self, ns: Option<u64>) {
        *self.exec_fanout_ns.write() = ns;
    }

    /// Pin the access-path strategy for this server's filter leaves
    /// (`auto` chooses per leaf from segment statistics; the forced
    /// modes pin one path where its structure exists). `None` restores
    /// the `PINOT_EXEC_PLANNER` env default. Every mode yields
    /// byte-identical results. See `ClusterConfig::with_exec_planner`.
    pub fn set_exec_planner(&self, mode: Option<PlannerMode>) {
        *self.exec_planner.write() = mode;
    }

    /// Serve consuming segments from columnar cuts (`Some(true)`) or the
    /// legacy rebuilt snapshot (`Some(false)`, the benchmark baseline);
    /// `None` restores the `PINOT_REALTIME_COLUMNAR` env default. Both
    /// modes yield byte-identical results.
    pub fn set_realtime_columnar(&self, columnar: Option<bool>) {
        *self.realtime_columnar.write() = columnar;
    }

    /// Advance consuming partitions concurrently (`Some(true)`) or
    /// serially (`Some(false)`); `None` restores the
    /// `PINOT_INGEST_PARALLEL` env default. Per-partition ordering is
    /// preserved either way — one task per consuming segment.
    pub fn set_ingest_parallel(&self, parallel: Option<bool>) {
        *self.ingest_parallel.write() = parallel;
    }

    /// Override the ingestion backpressure cap (total buffered rows
    /// across consuming segments); `None` restores the
    /// `PINOT_INGEST_MAX_BUFFERED_ROWS` env default.
    pub fn set_ingest_max_buffered_rows(&self, rows: Option<usize>) {
        *self.ingest_max_buffered_rows.write() = rows;
    }

    fn realtime_columnar(&self) -> bool {
        (*self.realtime_columnar.read()).unwrap_or_else(pinot_segment::realtime_columnar_default)
    }

    /// Cut (or legacy-rebuild) view of a consuming segment for queries,
    /// with the `realtime.query_cut_rows` counter.
    fn consuming_view(
        &self,
        consuming: &ConsumingSegment,
    ) -> Result<Arc<pinot_segment::ImmutableSegment>> {
        let view = if self.realtime_columnar() {
            consuming.mutable.cut()?
        } else {
            consuming.mutable.snapshot_rebuild()?
        };
        self.obs
            .metrics
            .counter_add("realtime.query_cut_rows", view.num_docs() as u64);
        Ok(view)
    }

    /// The fan-out cost model as currently calibrated.
    pub fn cost_model(&self) -> CostModel {
        CostModel {
            ns_per_doc: *self.exec_ns_per_doc.read(),
            fanout_threshold_ns: (*self.exec_fanout_ns.read())
                .unwrap_or_else(pinot_exec::morsel::fanout_ns_default),
        }
    }

    /// Periodically refresh the calibrated per-doc scan cost from the
    /// measured `exec.scan_ns_per_doc` histogram (its recorded values
    /// *are* ns/doc). Scheduling-only: the gate this feeds picks inline
    /// vs fan-out, both of which produce identical bytes.
    fn maybe_recalibrate(&self) {
        let n = self.exec_requests.fetch_add(1, Ordering::Relaxed);
        if n % CALIBRATE_EVERY != CALIBRATE_EVERY - 1 {
            return;
        }
        let snap = self.obs.metrics.snapshot();
        if let Some(h) = snap.histogram("exec.scan_ns_per_doc") {
            let cost = self.cost_model().recalibrated(h.mean());
            *self.exec_ns_per_doc.write() = cost.ns_per_doc;
        }
    }

    /// Replace the execution pool (tests and benchmarks pin the worker
    /// count this way; see `ClusterConfig::with_taskpool_threads`).
    pub fn set_task_pool(&self, pool: Arc<TaskPool>) {
        *self.pool.write() = pool;
    }

    /// The pool executing this server's segment tasks.
    pub fn task_pool(&self) -> Arc<TaskPool> {
        Arc::clone(&self.pool.read())
    }

    /// Install a shared fault injector (chaos tests); the default injector
    /// has nothing armed and injects nothing.
    pub fn set_fault_injector(&self, chaos: Arc<FaultInjector>) {
        *self.chaos.write() = chaos;
    }

    fn chaos(&self) -> Arc<FaultInjector> {
        Arc::clone(&self.chaos.read())
    }

    /// Simulate this server crashing: unregister from cluster management so
    /// the rest of the cluster sees it gone. The struct stays alive (this
    /// is a simulation) but it no longer participates.
    fn crash(&self) {
        self.obs.metrics.counter_add("server.chaos.crashed", 1);
        self.cluster.unregister_participant(&self.id);
    }

    pub fn id(&self) -> &InstanceId {
        &self.id
    }

    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    pub fn throttle(&self) -> &TenantThrottle {
        &self.throttle
    }

    fn leader(&self) -> Result<Arc<pinot_controller::Controller>> {
        self.controllers
            .leader()
            .ok_or_else(|| PinotError::Cluster("no lead controller".into()))
    }

    fn table_state<R>(
        &self,
        qualified: &str,
        f: impl FnOnce(&mut TableState) -> Result<R>,
    ) -> Result<R> {
        // Fast path: table already known.
        {
            let mut tables = self.tables.write();
            if let Some(state) = tables.get_mut(qualified) {
                return f(state);
            }
        }
        // Load config + schema from the controller, then retry.
        let leader = self.leader()?;
        let config = leader.table_config(qualified)?;
        let schema = leader.table_schema(&config.name)?;
        let mut tables = self.tables.write();
        let state = tables.entry(qualified.to_string()).or_insert(TableState {
            config,
            schema,
            online: HashMap::new(),
            consuming: HashMap::new(),
        });
        f(state)
    }

    /// Read-only table access on the query hot path: shared lock, so
    /// concurrent queries on one server don't serialize on the table map.
    fn with_table<R>(
        &self,
        qualified: &str,
        f: impl FnOnce(&TableState) -> Result<R>,
    ) -> Result<R> {
        {
            let tables = self.tables.read();
            if let Some(state) = tables.get(qualified) {
                return f(state);
            }
        }
        // Table not cached yet: populate via the write path, then re-read.
        self.table_state(qualified, |_| Ok(()))?;
        let tables = self.tables.read();
        let state = tables
            .get(qualified)
            .expect("populated by table_state above");
        f(state)
    }

    /// Number of ONLINE segments held (all tables).
    pub fn num_online_segments(&self) -> usize {
        self.tables.read().values().map(|t| t.online.len()).sum()
    }

    /// Number of CONSUMING segments held (all tables).
    pub fn num_consuming_segments(&self) -> usize {
        self.tables.read().values().map(|t| t.consuming.len()).sum()
    }

    // ---- state transitions ----

    fn load_online(&self, qualified: &str, segment: &str) -> Result<()> {
        let leader = self.leader()?;
        let blob = leader.download_segment(qualified, segment)?;
        self.load_online_blob(qualified, segment, &blob)
    }

    fn load_online_blob(&self, qualified: &str, segment: &str, blob: &Bytes) -> Result<()> {
        let parsed = pinot_segment::persist::deserialize(blob)?;
        self.install_segment(qualified, segment, Arc::new(parsed))
    }

    fn install_segment(
        &self,
        qualified: &str,
        segment: &str,
        mut seg: Arc<pinot_segment::ImmutableSegment>,
    ) -> Result<()> {
        self.table_state(qualified, |state| {
            // Reindex on the fly: make sure the segment carries every index
            // the *current* table config wants (§4.1/§5.2).
            for col in &state.config.indexing.inverted_index_columns {
                let has = seg
                    .metadata()
                    .column(col)
                    .map(|c| c.has_inverted_index || c.is_sorted)
                    .unwrap_or(true);
                if !has {
                    seg = Arc::new(seg.with_inverted_index(col)?);
                }
            }
            let mut handle = SegmentHandle::new(Arc::clone(&seg));
            if let Some(st_cfg) = &state.config.indexing.star_tree {
                let tree = build_star_tree(&seg, st_cfg)?;
                handle = handle.with_star_tree(Arc::new(tree));
            }
            state.consuming.remove(segment);
            state.online.insert(segment.to_string(), handle);
            Ok(())
        })
    }

    fn start_consuming(&self, qualified: &str, segment: &str) -> Result<()> {
        let leader = self.leader()?;
        let name = SegmentName::from_raw(segment);
        let (partition, _seq) = name
            .realtime_parts()
            .ok_or_else(|| PinotError::Segment(format!("{segment} is not a realtime segment")))?;
        let start = leader.consuming_start_offset(qualified, &name)?;
        self.table_state(qualified, |state| {
            let stream_cfg = state.config.stream.as_ref().ok_or_else(|| {
                PinotError::Metadata(format!("table {qualified} has no stream config"))
            })?;
            let topic = self.streams.topic(&stream_cfg.topic)?;
            let mutable = Arc::new(MutableSegment::new(
                state.schema.clone(),
                segment,
                qualified,
                start,
                self.clock.now_millis(),
            ));
            let consumer = PartitionConsumer::new(topic, partition, start);
            state.consuming.insert(
                segment.to_string(),
                Arc::new(ConsumingSegment {
                    mutable,
                    consumer: Mutex::new(consumer),
                    partition,
                    reached_end: AtomicBool::new(false),
                }),
            );
            Ok(())
        })
    }

    fn unload(&self, qualified: &str, segment: &str) {
        let mut tables = self.tables.write();
        if let Some(state) = tables.get_mut(qualified) {
            state.online.remove(segment);
            state.consuming.remove(segment);
        }
    }

    // ---- realtime consumption ----

    /// Advance every consuming segment: pull a batch from the stream, check
    /// end criteria, and run the completion protocol for segments that are
    /// done. Returns the number of records ingested this tick.
    ///
    /// Production servers run this continuously on consumer threads; the
    /// reproduction exposes it as an explicit tick so tests and simulations
    /// are deterministic (a background pump in `pinot-core` calls it in a
    /// loop for live deployments).
    pub fn consume_tick(&self) -> Result<usize> {
        let work: Vec<(String, String, Arc<ConsumingSegment>)> = {
            let tables = self.tables.read();
            tables
                .iter()
                .flat_map(|(t, state)| {
                    state
                        .consuming
                        .iter()
                        .map(|(s, c)| (t.clone(), s.clone(), Arc::clone(c)))
                })
                .collect()
        };
        if work.is_empty() {
            return Ok(0);
        }

        // Memory backpressure: when the server holds too many unsealed
        // rows, pause fetching this tick. Completion steps still run, so
        // segments past their end criteria seal and drain the backlog.
        let buffered: usize = work.iter().map(|(_, _, c)| c.mutable.num_rows()).sum();
        let max_buffered = (*self.ingest_max_buffered_rows.read())
            .unwrap_or_else(ingest_max_buffered_rows_default);
        let paused = buffered >= max_buffered;
        if paused {
            self.obs
                .metrics
                .counter_add("ingest.backpressure_stalls", 1);
        }

        // One task per consuming segment: partitions advance concurrently
        // while each partition's appends stay ordered (a segment is only
        // ever ticked by its own task).
        let started = std::time::Instant::now();
        let parallel = (*self.ingest_parallel.read()).unwrap_or_else(ingest_parallel_default)
            && work.len() > 1;
        let ingested = if parallel {
            let pool = self.task_pool();
            let slots: Vec<Mutex<Option<Result<usize>>>> =
                work.iter().map(|_| Default::default()).collect();
            pool.scope(|scope| {
                for ((qualified, segment, consuming), slot) in work.iter().zip(&slots) {
                    scope.spawn(move || {
                        *slot.lock() =
                            Some(self.tick_segment(qualified, segment, consuming, paused));
                    });
                }
            });
            let mut total = 0usize;
            for slot in slots {
                total += slot
                    .into_inner()
                    .expect("scope joined every partition task")?;
            }
            total
        } else {
            let mut total = 0usize;
            for (qualified, segment, consuming) in &work {
                total += self.tick_segment(qualified, segment, consuming, paused)?;
            }
            total
        };

        let chunks: u64 = work
            .iter()
            .map(|(_, _, c)| c.mutable.take_chunks_sealed())
            .sum();
        if chunks > 0 {
            self.obs
                .metrics
                .counter_add("realtime.chunks_sealed", chunks);
        }
        if ingested > 0 {
            let secs = started.elapsed().as_secs_f64();
            if secs > 0.0 {
                self.obs
                    .metrics
                    .gauge_set("ingest.rows_per_sec", (ingested as f64 / secs) as i64);
            }
        }
        Ok(ingested)
    }

    fn tick_segment(
        &self,
        qualified: &str,
        segment: &str,
        consuming: &Arc<ConsumingSegment>,
        paused: bool,
    ) -> Result<usize> {
        let (flush_rows, flush_millis, topic_name) = self.with_table(qualified, |state| {
            let s = state.config.stream.as_ref().ok_or_else(|| {
                PinotError::Metadata(format!("table {qualified} lost its stream config"))
            })?;
            Ok((
                s.flush_threshold_rows,
                s.flush_threshold_millis,
                s.topic.clone(),
            ))
        })?;

        let mut ingested = 0usize;
        if !consuming.reached_end.load(Ordering::SeqCst) && !paused {
            // Stream fetch with injected-fault awareness and bounded retry:
            // transient failures back off and re-poll; a persistently
            // failing (stalled) partition skips this tick, letting the lag
            // gauge below record how far behind it is falling.
            let chaos = self.chaos();
            let ctx = FaultContext::new()
                .instance(self.id.to_string())
                .table(qualified)
                .partition(consuming.partition);
            let fetched = self.retry.run(|_| {
                if let Some(action) = chaos.intercept(sites::STREAM_FETCH, &ctx) {
                    match action {
                        FaultAction::Fail(e) => return Err(e),
                        FaultAction::Delay(ms) => {
                            std::thread::sleep(std::time::Duration::from_millis(ms))
                        }
                        FaultAction::Crash => {
                            self.crash();
                            return Err(PinotError::Io(format!("{} crashed (injected)", self.id)));
                        }
                    }
                }
                let mut consumer = consuming.consumer.lock();
                consumer.poll(CONSUME_BATCH)
            });
            let batch = match fetched {
                Ok(batch) => batch,
                Err(e) if e.is_retriable() => {
                    self.obs
                        .metrics
                        .counter_add("server.consume.fetch_failed", 1);
                    Vec::new()
                }
                Err(e) => return Err(e),
            };
            for event in batch {
                consuming.mutable.append(event.record, event.offset)?;
                ingested += 1;
                if consuming.mutable.num_rows() >= flush_rows {
                    // Stop exactly at the threshold; remaining events stay
                    // in the stream for the next segment.
                    let mut consumer = consuming.consumer.lock();
                    consumer.seek(consuming.mutable.current_offset());
                    break;
                }
            }
        }
        // End criteria are evaluated even when backpressure paused the
        // fetch: a paused segment must still seal (by size or age) so the
        // buffered backlog drains instead of deadlocking against the pause.
        if !consuming.reached_end.load(Ordering::SeqCst) {
            let rows = consuming.mutable.num_rows();
            let age = self.clock.now_millis() - consuming.mutable.created_at_millis();
            if rows >= flush_rows || (rows > 0 && age >= flush_millis) {
                consuming.reached_end.store(true, Ordering::SeqCst);
            }
        }

        // Ingestion lag: how far the stream's head has moved past what this
        // consuming segment has ingested (§3.3.6 freshness).
        if ingested > 0 {
            self.obs
                .metrics
                .counter_add("server.consume.records", ingested as u64);
        }
        if let Ok(topic) = self.streams.topic(&topic_name) {
            if let Ok(latest) = topic.latest_offset(consuming.partition) {
                let lag = latest.saturating_sub(consuming.mutable.current_offset());
                self.obs.metrics.gauge_set(
                    &format!("server.consume.lag.{qualified}.p{}", consuming.partition),
                    lag as i64,
                );
            }
        }

        if consuming.reached_end.load(Ordering::SeqCst) {
            self.run_completion_step(qualified, segment, consuming)?;
        }
        Ok(ingested)
    }

    fn run_completion_step(
        &self,
        qualified: &str,
        segment: &str,
        consuming: &Arc<ConsumingSegment>,
    ) -> Result<()> {
        let Some(leader) = self.controllers.leader() else {
            return Ok(()); // retry next tick
        };
        let name = SegmentName::from_raw(segment);
        let poll = CompletionPoll::new(
            name.clone(),
            self.id.clone(),
            consuming.mutable.current_offset(),
        );
        match leader.segment_completion_poll(&poll) {
            CompletionInstruction::Hold | CompletionInstruction::NotLeader => Ok(()),
            CompletionInstruction::Catchup { target_offset } => {
                // Consume up to exactly the target, then poll again later.
                while consuming.mutable.current_offset() < target_offset {
                    let need = (target_offset - consuming.mutable.current_offset()) as usize;
                    let batch = {
                        let mut consumer = consuming.consumer.lock();
                        consumer.seek(consuming.mutable.current_offset());
                        consumer.poll(need.min(CONSUME_BATCH))?
                    };
                    if batch.is_empty() {
                        break;
                    }
                    for event in batch {
                        consuming.mutable.append(event.record, event.offset)?;
                    }
                }
                Ok(())
            }
            CompletionInstruction::Commit => {
                // This replica won the committer election. A crash here —
                // after winning, before committing — is the §3.3.6 failure
                // the protocol's commit timeout exists for: the controller
                // must eventually promote a caught-up replica instead.
                if let Some(action) = self.chaos().intercept(
                    sites::COMPLETION_COMMIT,
                    &FaultContext::new()
                        .instance(self.id.to_string())
                        .table(qualified),
                ) {
                    match action {
                        FaultAction::Fail(e) => {
                            self.obs
                                .metrics
                                .counter_add("server.completion.commit_failed", 1);
                            return Err(e);
                        }
                        FaultAction::Delay(ms) => {
                            std::thread::sleep(std::time::Duration::from_millis(ms))
                        }
                        FaultAction::Crash => {
                            self.crash();
                            return Ok(()); // died without committing
                        }
                    }
                }
                let sealed = self.seal(qualified, consuming)?;
                let blob = Bytes::from(pinot_segment::persist::serialize(&sealed));
                let end = consuming.mutable.current_offset();
                let ok = leader.commit_segment(qualified, &name, &self.id, end, blob)?;
                if ok {
                    self.install_segment(qualified, segment, Arc::new(sealed))?;
                    self.cluster
                        .record_state(qualified, segment, &self.id, SegmentState::Online);
                }
                Ok(())
            }
            CompletionInstruction::Keep => {
                // Identical offsets → identical data: flush locally, no
                // upload needed.
                let sealed = self.seal(qualified, consuming)?;
                self.install_segment(qualified, segment, Arc::new(sealed))?;
                self.cluster
                    .record_state(qualified, segment, &self.id, SegmentState::Online);
                Ok(())
            }
            CompletionInstruction::Discard => {
                // Another replica committed a different version: drop local
                // rows and fetch the authoritative copy.
                let blob = leader.download_segment(qualified, segment)?;
                self.load_online_blob(qualified, segment, &blob)?;
                self.cluster
                    .record_state(qualified, segment, &self.id, SegmentState::Online);
                Ok(())
            }
        }
    }

    fn seal(
        &self,
        qualified: &str,
        consuming: &Arc<ConsumingSegment>,
    ) -> Result<pinot_segment::ImmutableSegment> {
        let pool = self.task_pool();
        let cfg = self.with_table(qualified, |state| {
            let mut cfg = BuilderConfig::new("", "");
            if let Some(sorted) = &state.config.indexing.sorted_column {
                cfg.sort_columns = vec![sorted.clone()];
            }
            cfg.inverted_columns = state.config.indexing.inverted_index_columns.clone();
            cfg.bloom_columns = state.config.indexing.bloom_filter_columns.clone();
            if let pinot_common::config::RoutingStrategy::Partitioned {
                column,
                num_partitions,
            } = &state.config.routing
            {
                cfg.partition = Some(PartitionInfo {
                    column: column.clone(),
                    partition_id: consuming.partition,
                    num_partitions: *num_partitions,
                });
            }
            Ok(cfg)
        })?;
        // Column/index builds for the completing segment run as pool tasks
        // (the stream path's share of the execution pool). This must happen
        // OUTSIDE `with_table`: the nested scope's help-while-wait can pick
        // up another consuming segment's tick task, and if that task
        // completes it takes `tables.write()` on this very thread — a
        // self-deadlock if we were still holding the read lock here.
        consuming.mutable.seal_with_pool(cfg, Some(&pool))
    }

    // ---- query execution ----

    /// Execute a broker request over this server's routed segments and
    /// return the merged partial result (§3.3.3 steps 4–6).
    ///
    /// The time from arrival until per-segment execution begins (admission
    /// control plus table metadata resolution) is the request's queue time;
    /// the segment loop itself is its execution time. Both feed this
    /// server's `server.exec.{queue,execute}_ms` histograms.
    pub fn execute(&self, req: &ServerRequest) -> Result<IntermediateResult> {
        let entered = std::time::Instant::now();
        if let Some(action) = self.chaos().intercept(
            sites::SERVER_EXECUTE,
            &FaultContext::new()
                .instance(self.id.to_string())
                .table(req.table.clone()),
        ) {
            match action {
                FaultAction::Fail(e) => return Err(e),
                FaultAction::Delay(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
                FaultAction::Crash => {
                    self.crash();
                    return Err(PinotError::Io(format!("{} crashed (injected)", self.id)));
                }
            }
        }
        if let Err(e) = self.throttle.admit(&req.tenant) {
            self.obs.metrics.counter_add("server.throttle.rejected", 1);
            self.obs
                .metrics
                .counter_add(&format!("server.throttle.rejected.{}", req.tenant), 1);
            return Err(e);
        }
        let started = std::time::Instant::now();

        let mut acc = IntermediateResult::empty_for(&req.query);
        acc.stats.query_id = req.query_id;
        let time_column = self.with_table(&req.table, |state| {
            Ok(state.schema.time_column().map(|tc| tc.name.clone()))
        })?;
        let evaluator = PruneEvaluator::new(time_column);
        let prune_on = (*self.exec_prune.read()).unwrap_or_else(prune_default);
        let exec_started = std::time::Instant::now();
        let queue_ns = exec_started.duration_since(entered).as_nanos() as u64;
        self.obs
            .metrics
            .observe_ms("server.exec.queue_ms", queue_ns as f64 / 1e6);

        // Whole-query short-circuit: when statistics prove no routed
        // segment can match, answer without touching the pool at all.
        let short_circuited = prune_on && self.try_short_circuit(req, &evaluator, &mut acc)?;
        if !short_circuited {
            self.maybe_recalibrate();
            let deadline = Deadline::at(req.deadline);
            let cost = self.cost_model();
            // Cost-gated fan-out (ISSUE 8): estimate the scan work of one
            // per-segment task — zone-map doc counts (an upper bound;
            // per-segment pruning can only shrink it) averaged over the
            // routed segments, times the columns the query touches. A pool
            // task is only worth spawning when its own slice clears the
            // threshold; below that, scheduling overhead dominates and
            // every segment runs inline on the caller thread with zero
            // task overhead. Both paths merge partials in segment order,
            // so the gate's choice never changes result bytes.
            let est_docs = self.estimate_request_docs(&req.table, &req.segments)?;
            let per_segment_docs = est_docs / req.segments.len().max(1) as u64;
            let cols = req.query.referenced_columns().len().max(1) as u64;
            if !cost.should_fan_out(per_segment_docs, cols) {
                self.obs
                    .metrics
                    .counter_add("exec.morsels_inline", req.segments.len() as u64);
                for seg_name in &req.segments {
                    if deadline.expired() {
                        self.obs
                            .metrics
                            .counter_add("server.exec.deadline_abandoned", 1);
                        return Err(PinotError::Timeout(format!(
                            "{}: query deadline elapsed before segment {seg_name}",
                            self.id
                        )));
                    }
                    let partial =
                        self.execute_segment(req, seg_name, &evaluator, prune_on, None)?;
                    merge_intermediate(&mut acc, partial)?;
                }
            } else {
                // Fan every segment's physical plan out as a pool task
                // (§3.3.4, Figure 7): the pool runs them across cores, each
                // task writing its partial into a per-segment slot. Large
                // segments morselize further inside `execute_segment` via
                // the same pool (nested scopes help while they wait, so
                // this cannot deadlock). Merging happens afterwards in
                // segment order, so the merged result is byte-identical no
                // matter how many workers the pool has or which of them ran
                // which task.
                let pool = self.task_pool();
                let parallel = ParallelExec::new(Arc::clone(&pool))
                    .with_deadline(deadline.clone())
                    .with_cost(cost)
                    .with_chaos(
                        self.chaos(),
                        FaultContext::new()
                            .instance(self.id.to_string())
                            .table(req.table.clone()),
                    );
                let slots: Vec<Mutex<Option<Result<IntermediateResult>>>> =
                    req.segments.iter().map(|_| Mutex::new(None)).collect();
                pool.scope(|scope| {
                    for (i, seg_name) in req.segments.iter().enumerate() {
                        let slot = &slots[i];
                        let evaluator = &evaluator;
                        let parallel = &parallel;
                        // Tasks queued past the broker's scatter deadline are
                        // abandoned by the pool: nobody is waiting for them.
                        scope.spawn_with_deadline(&deadline, move || {
                            *slot.lock() = Some(self.execute_segment(
                                req,
                                seg_name,
                                evaluator,
                                prune_on,
                                Some(parallel),
                            ));
                        });
                    }
                });
                for (i, slot) in slots.into_iter().enumerate() {
                    match slot.into_inner() {
                        Some(Ok(partial)) => merge_intermediate(&mut acc, partial)?,
                        Some(Err(e)) => return Err(e),
                        None => {
                            // The pool abandoned this task: the scatter deadline
                            // passed while it was still queued.
                            self.obs
                                .metrics
                                .counter_add("server.exec.deadline_abandoned", 1);
                            return Err(PinotError::Timeout(format!(
                                "{}: query deadline elapsed before segment {}",
                                self.id, req.segments[i]
                            )));
                        }
                    }
                }
            }
        }

        self.obs.metrics.observe_ms(
            "server.exec.execute_ms",
            exec_started.elapsed().as_secs_f64() * 1e3,
        );
        if req.profile {
            // Keep the slowest segments exact; fold the rest into summary
            // nodes so the server→broker profile stays bounded no matter
            // how many segments were routed here.
            let segments = collected_profiles(acc.profile.take());
            let mut server = ProfileNode::named("server", self.id.to_string());
            let mut queue = ProfileNode::new("queue");
            queue.elapsed_ns = queue_ns;
            server.children.push(queue);
            server
                .children
                .extend(aggregate_segment_profiles(segments, PROFILE_KEEP_EXACT));
            server.docs_in = acc.stats.total_docs;
            server.docs_out = acc.stats.num_docs_scanned;
            server.elapsed_ns = entered.elapsed().as_nanos() as u64;
            acc.profile = Some(server);
        }
        let micros = started.elapsed().as_micros() as u64;
        acc.stats.time_used_ms = (micros / 1000).max(acc.stats.time_used_ms);
        self.throttle.debit(&req.tenant, micros);
        Ok(acc)
    }

    /// Pre-pass over the routed segments: when every one is ONLINE and the
    /// statistics prove none can match, fold the pruned stats into `acc`
    /// and skip the execution pool entirely. Consuming segments disable
    /// the short-circuit (their snapshots are taken, and pruned, inside
    /// their pool task). Emits no metrics unless it fires, so the
    /// per-segment path stays the single counting site otherwise.
    fn try_short_circuit(
        &self,
        req: &ServerRequest,
        evaluator: &PruneEvaluator,
        acc: &mut IntermediateResult,
    ) -> Result<bool> {
        if req.segments.is_empty() {
            return Ok(false);
        }
        let decisions = self.with_table(&req.table, |state| {
            let mut per_seg = Vec::with_capacity(req.segments.len());
            for seg_name in &req.segments {
                let Some(h) = state.online.get(seg_name) else {
                    return Ok(None); // consuming or unknown segment
                };
                let outcome = evaluator.evaluate(req.query.filter.as_ref(), h.segment.as_ref());
                if outcome.prunable != Prunable::CannotMatch {
                    return Ok(None);
                }
                per_seg.push((seg_name.clone(), outcome, h.segment.num_docs() as u64));
            }
            Ok(Some(per_seg))
        })?;
        let Some(per_seg) = decisions else {
            return Ok(false);
        };
        let mut pruned_nodes = Vec::new();
        for (seg_name, outcome, docs) in &per_seg {
            self.record_prune(outcome);
            acc.stats.num_segments_queried += 1;
            acc.stats.num_segments_pruned += 1;
            acc.stats.total_docs += docs;
            if req.profile {
                pruned_nodes.push(pruned_segment_profile(seg_name.as_str(), outcome, *docs));
            }
        }
        if req.profile {
            let mut collect = ProfileNode::new("collect");
            collect.children = pruned_nodes;
            acc.profile = Some(collect);
        }
        self.obs
            .metrics
            .counter_add("prune.server_short_circuit", 1);
        Ok(true)
    }

    /// Flush one prune evaluation's counters to obs.
    fn record_prune(&self, outcome: &PruneOutcome) {
        if outcome.bloom_probes > 0 {
            self.obs
                .metrics
                .counter_add("prune.bloom_probes", outcome.bloom_probes);
        }
        if outcome.bloom_negatives > 0 {
            self.obs
                .metrics
                .counter_add("prune.bloom_probe_negatives", outcome.bloom_negatives);
        }
        if let Some(level) = outcome.level {
            self.obs
                .metrics
                .counter_add(&format!("prune.{}_segments", level.as_str()), 1);
        }
    }

    /// Total documents the request's routed segments hold, from segment
    /// metadata alone (zone-map doc counts; consuming segments report
    /// their appended rows). Feeds the fan-out cost gate — deliberately
    /// *not* a prune evaluation, which would double-count bloom probes.
    fn estimate_request_docs(&self, table: &str, segments: &[String]) -> Result<u64> {
        self.with_table(table, |state| {
            let mut docs = 0u64;
            for name in segments {
                if let Some(h) = state.online.get(name) {
                    docs += h.segment.num_docs() as u64;
                } else if let Some(c) = state.consuming.get(name) {
                    docs += c.mutable.num_rows() as u64;
                }
            }
            Ok(docs)
        })
    }

    /// One segment's share of a request: resolve the handle, evaluate the
    /// pruning statistics, and run the physical plan. Runs as a pool
    /// task (or inline below the fan-out gate, with `parallel` absent);
    /// the per-segment latency feeds `server.exec.segment_ms`.
    fn execute_segment(
        &self,
        req: &ServerRequest,
        seg_name: &str,
        evaluator: &PruneEvaluator,
        prune_on: bool,
        parallel: Option<&ParallelExec>,
    ) -> Result<IntermediateResult> {
        let handle = self.with_table(&req.table, |state| {
            if let Some(h) = state.online.get(seg_name) {
                return Ok(Some(h.clone()));
            }
            if let Some(c) = state.consuming.get(seg_name) {
                // Query a consistent cut of the consuming segment — the
                // near-realtime visibility path. Row high-water mark +
                // dictionary generation under one lock; no row copying.
                return Ok(Some(SegmentHandle::new(self.consuming_view(c)?)));
            }
            Ok(None)
        })?;
        let Some(handle) = handle else {
            return Err(PinotError::Segment(format!(
                "{}: segment {seg_name} not hosted here",
                self.id
            )));
        };

        // Statistics-based pruning before planning (zone maps, bloom
        // filters, time bounds — all through one evaluator). A CannotMatch
        // partial is an identity under merge, so it only contributes its
        // stats; MatchAll strips the predicate, which upgrades
        // COUNT/MIN/MAX-only queries to the metadata-only plan.
        let mut stripped = None;
        if prune_on {
            let outcome = evaluator.evaluate(req.query.filter.as_ref(), handle.segment.as_ref());
            self.record_prune(&outcome);
            match outcome.prunable {
                Prunable::CannotMatch => {
                    let docs = handle.segment.num_docs() as u64;
                    let mut pruned = IntermediateResult::empty_for(&req.query);
                    pruned.stats.num_segments_queried += 1;
                    pruned.stats.num_segments_pruned += 1;
                    pruned.stats.total_docs += docs;
                    if req.profile {
                        pruned.profile = Some(pruned_segment_profile(
                            std::sync::Arc::clone(&handle.name),
                            &outcome,
                            docs,
                        ));
                    }
                    return Ok(pruned);
                }
                Prunable::MatchAll if req.query.filter.is_some() => {
                    self.obs.metrics.counter_add("prune.filters_stripped", 1);
                    let mut q = (*req.query).clone();
                    q.filter = None;
                    stripped = Some(q);
                }
                _ => {}
            }
        }
        let query: &Query = stripped.as_ref().unwrap_or(&req.query);
        let seg_started = std::time::Instant::now();
        let opts = ExecOptions {
            batch: *self.exec_batch.read(),
            prune: Some(prune_on),
            obs: Some(Arc::clone(&self.obs)),
            profile: req.profile,
            analyze: req.analyze,
            morsel_docs: *self.exec_morsel_docs.read(),
            parallel: parallel.cloned(),
            planner: *self.exec_planner.read(),
        };
        let partial = execute_on_segment_with(&handle, query, &opts)?;
        self.obs.metrics.observe_ms(
            "server.exec.segment_ms",
            seg_started.elapsed().as_secs_f64() * 1e3,
        );
        Ok(partial)
    }

    /// Per-segment EXPLAIN decisions for every segment this server hosts
    /// for `table` (online handles plus consuming snapshots), mirroring
    /// what [`Server::execute`] would do — prune verdict, plan choice,
    /// predicate order, kernel — without executing anything.
    pub fn explain_segments(&self, table: &str, query: &Query) -> Result<Vec<SegmentExplain>> {
        let opts = ExecOptions {
            batch: *self.exec_batch.read(),
            prune: Some((*self.exec_prune.read()).unwrap_or_else(prune_default)),
            morsel_docs: *self.exec_morsel_docs.read(),
            planner: *self.exec_planner.read(),
            ..ExecOptions::default()
        };
        self.with_table(table, |state| {
            let time_column = state.schema.time_column().map(|tc| tc.name.clone());
            let mut out = Vec::new();
            let mut names: Vec<&String> = state.online.keys().collect();
            names.sort();
            for name in names {
                out.push(explain_segment(
                    &state.online[name],
                    query,
                    time_column.as_deref(),
                    &opts,
                )?);
            }
            let mut consuming: Vec<&String> = state.consuming.keys().collect();
            consuming.sort();
            for name in consuming {
                let view = self.consuming_view(&state.consuming[name])?;
                let cut_rows = view.num_docs() as u64;
                let handle = SegmentHandle::new(view);
                let mut e = explain_segment(&handle, query, time_column.as_deref(), &opts)?;
                e.realtime_cut_rows = Some(cut_rows);
                out.push(e);
            }
            Ok(out)
        })
    }

    /// Which plan kind this server would use for a query on one segment
    /// (exposed for the Figure 13 harness and tests).
    pub fn plan_for(&self, table: &str, segment: &str, query: &Query) -> Result<PlanKind> {
        self.with_table(table, |state| {
            let handle = state
                .online
                .get(segment)
                .ok_or_else(|| PinotError::Segment(format!("{segment} not online")))?;
            Ok(plan_segment(handle, query))
        })
    }

    /// Segment names (online + consuming) hosted for a table.
    pub fn hosted_segments(&self, table: &str) -> Vec<String> {
        let tables = self.tables.read();
        let Some(state) = tables.get(table) else {
            return Vec::new();
        };
        let mut v: Vec<String> = state
            .online
            .keys()
            .chain(state.consuming.keys())
            .cloned()
            .collect();
        v.sort();
        v
    }
}

impl Participant for Server {
    fn instance_id(&self) -> InstanceId {
        self.id.clone()
    }

    fn handle_transition(
        &self,
        table: &str,
        segment: &str,
        from: SegmentState,
        to: SegmentState,
    ) -> Result<()> {
        use SegmentState::*;
        match (from, to) {
            (Offline, Online) => self.load_online(table, segment),
            (Offline, Consuming) => self.start_consuming(table, segment),
            (Consuming, Online) => {
                // The controller says this segment committed. If we already
                // installed it (we were the committer or ran KEEP/DISCARD),
                // this is a no-op; otherwise fetch the committed copy.
                let already = {
                    let tables = self.tables.read();
                    tables
                        .get(table)
                        .map(|s| s.online.contains_key(segment))
                        .unwrap_or(false)
                };
                if already {
                    Ok(())
                } else {
                    self.load_online(table, segment)
                }
            }
            (Online, Offline) | (Consuming, Offline) => {
                self.unload(table, segment);
                Ok(())
            }
            (Offline, Dropped) | (Error, Offline) => Ok(()),
            (f, t) => Err(PinotError::Cluster(format!(
                "illegal transition {}→{} for {segment}",
                f.name(),
                t.name()
            ))),
        }
    }
}

/// Extract `[lo, hi]` bounds (inclusive) that top-level AND conjuncts put on
/// the time column. Conservative: OR/NOT shapes yield no bounds.
pub fn filter_time_bounds(
    pred: Option<&Predicate>,
    time_column: &str,
) -> (Option<i64>, Option<i64>) {
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    fn tighten(slot: &mut Option<i64>, v: i64, take_min: bool) {
        *slot = Some(match *slot {
            None => v,
            Some(cur) if take_min => cur.min(v),
            Some(cur) => cur.max(v),
        });
    }
    fn walk(p: &Predicate, col: &str, lo: &mut Option<i64>, hi: &mut Option<i64>) {
        match p {
            Predicate::And(ps) => {
                for q in ps {
                    walk(q, col, lo, hi);
                }
            }
            Predicate::Cmp { column, op, value } if column == col => {
                if let Some(v) = value.as_i64() {
                    match op {
                        CmpOp::Eq => {
                            tighten(lo, v, false);
                            tighten(hi, v, true);
                        }
                        CmpOp::Ge => tighten(lo, v, false),
                        CmpOp::Gt => tighten(lo, v + 1, false),
                        CmpOp::Le => tighten(hi, v, true),
                        CmpOp::Lt => tighten(hi, v - 1, true),
                        CmpOp::Ne => {}
                    }
                }
            }
            Predicate::Between { column, low, high } if column == col => {
                if let (Some(l), Some(h)) = (low.as_i64(), high.as_i64()) {
                    tighten(lo, l, false);
                    tighten(hi, h, true);
                }
            }
            _ => {}
        }
    }
    if let Some(p) = pred {
        walk(p, time_column, &mut lo, &mut hi);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_pql::parse;

    fn bounds(pql: &str) -> (Option<i64>, Option<i64>) {
        let q = parse(pql).unwrap();
        filter_time_bounds(q.filter.as_ref(), "day")
    }

    #[test]
    fn time_bounds_extraction() {
        assert_eq!(
            bounds("SELECT COUNT(*) FROM t WHERE day >= 10"),
            (Some(10), None)
        );
        assert_eq!(
            bounds("SELECT COUNT(*) FROM t WHERE day > 10"),
            (Some(11), None)
        );
        assert_eq!(
            bounds("SELECT COUNT(*) FROM t WHERE day >= 10 AND day < 20"),
            (Some(10), Some(19))
        );
        assert_eq!(
            bounds("SELECT COUNT(*) FROM t WHERE day BETWEEN 5 AND 9 AND x = 1"),
            (Some(5), Some(9))
        );
        assert_eq!(
            bounds("SELECT COUNT(*) FROM t WHERE day = 7"),
            (Some(7), Some(7))
        );
        // OR gives nothing (conservative).
        assert_eq!(
            bounds("SELECT COUNT(*) FROM t WHERE day = 7 OR day = 9"),
            (None, None)
        );
        // Other columns ignored.
        assert_eq!(bounds("SELECT COUNT(*) FROM t WHERE x = 7"), (None, None));
        assert_eq!(bounds("SELECT COUNT(*) FROM t"), (None, None));
        // Multiple constraints tighten.
        assert_eq!(
            bounds(
                "SELECT COUNT(*) FROM t WHERE day >= 3 AND day >= 8 AND day <= 30 AND day <= 12"
            ),
            (Some(8), Some(12))
        );
    }
}
