//! Multitenancy: per-tenant token buckets (§4.5).
//!
//! Each query debits tokens proportional to its execution time; the bucket
//! refills continuously. A tenant whose bucket is empty gets throttled,
//! which prevents one misbehaving tenant from starving colocated tenants.
//! (The paper enqueues throttled queries until tokens are available; this
//! reproduction rejects them with a retriable `QuotaExceeded` error, which
//! an open-loop client treats identically — see DESIGN.md.)

use parking_lot::Mutex;
use pinot_common::time::Clock;
use pinot_common::{PinotError, Result};
use std::collections::HashMap;

/// Settings for one tenant's bucket.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucketConfig {
    /// Maximum tokens the bucket can hold (burst allowance). One token is
    /// one microsecond of query execution time.
    pub capacity: f64,
    /// Tokens restored per millisecond of wall time.
    pub refill_per_ms: f64,
}

impl Default for TokenBucketConfig {
    fn default() -> Self {
        // 2 s of burst execution, refilling at 1 ms of execution budget per
        // wall ms (i.e. one core's worth, continuously).
        TokenBucketConfig {
            capacity: 2_000_000.0,
            refill_per_ms: 1_000.0,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill_ms: i64,
    config: TokenBucketConfig,
}

impl Bucket {
    fn refill(&mut self, now_ms: i64) {
        let elapsed = (now_ms - self.last_refill_ms).max(0) as f64;
        self.tokens = (self.tokens + elapsed * self.config.refill_per_ms).min(self.config.capacity);
        self.last_refill_ms = now_ms;
    }
}

/// Token-bucket admission control across tenants.
pub struct TenantThrottle {
    clock: Clock,
    default_config: TokenBucketConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantThrottle {
    pub fn new(clock: Clock, default_config: TokenBucketConfig) -> TenantThrottle {
        TenantThrottle {
            clock,
            default_config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Override the bucket settings for one tenant.
    pub fn configure_tenant(&self, tenant: &str, config: TokenBucketConfig) {
        let now = self.clock.now_millis();
        self.buckets.lock().insert(
            tenant.to_string(),
            Bucket {
                tokens: config.capacity,
                last_refill_ms: now,
                config,
            },
        );
    }

    /// Admission check before running a query. Errors with `QuotaExceeded`
    /// when the tenant has no budget left.
    pub fn admit(&self, tenant: &str) -> Result<()> {
        let now = self.clock.now_millis();
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(tenant.to_string()).or_insert_with(|| Bucket {
            tokens: self.default_config.capacity,
            last_refill_ms: now,
            config: self.default_config,
        });
        bucket.refill(now);
        if bucket.tokens <= 0.0 {
            return Err(PinotError::QuotaExceeded(format!(
                "tenant {tenant} has exhausted its query budget"
            )));
        }
        Ok(())
    }

    /// Debit the tenant for a completed query's execution time. Tokens may
    /// go negative (the query already ran); the debt delays future queries.
    pub fn debit(&self, tenant: &str, execution_micros: u64) {
        let now = self.clock.now_millis();
        let mut buckets = self.buckets.lock();
        if let Some(bucket) = buckets.get_mut(tenant) {
            bucket.refill(now);
            bucket.tokens -= execution_micros as f64;
        }
    }

    /// Remaining tokens (for tests and stats).
    pub fn tokens(&self, tenant: &str) -> Option<f64> {
        let now = self.clock.now_millis();
        let mut buckets = self.buckets.lock();
        buckets.get_mut(tenant).map(|b| {
            b.refill(now);
            b.tokens
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn throttle(capacity: f64, refill: f64) -> (TenantThrottle, Clock) {
        let clock = Clock::manual(0);
        let t = TenantThrottle::new(
            clock.clone(),
            TokenBucketConfig {
                capacity,
                refill_per_ms: refill,
            },
        );
        (t, clock)
    }

    #[test]
    fn admits_until_exhausted() {
        let (t, _clock) = throttle(1_000.0, 0.0);
        t.admit("ads").unwrap();
        t.debit("ads", 600);
        t.admit("ads").unwrap(); // 400 left
        t.debit("ads", 600); // now -200
        let err = t.admit("ads").unwrap_err();
        assert_eq!(err.kind(), "quota_exceeded");
        // Quota exhaustion must NOT be auto-retried: the bucket is shedding
        // load, and an immediate retry adds exactly the load being shed.
        // Callers back off on their own schedule (the bucket refills).
        assert!(!err.is_retriable());
    }

    #[test]
    fn refills_over_time() {
        let (t, clock) = throttle(1_000.0, 10.0);
        t.admit("ads").unwrap();
        t.debit("ads", 1_500); // -500
        assert!(t.admit("ads").is_err());
        clock.advance(100); // +1000 tokens
        t.admit("ads").unwrap();
        assert!((t.tokens("ads").unwrap() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn refill_caps_at_capacity() {
        let (t, clock) = throttle(1_000.0, 10.0);
        t.admit("a").unwrap();
        clock.advance(1_000_000);
        assert_eq!(t.tokens("a").unwrap(), 1_000.0);
    }

    #[test]
    fn tenants_are_isolated() {
        let (t, _clock) = throttle(1_000.0, 0.0);
        t.admit("noisy").unwrap();
        t.debit("noisy", 10_000);
        assert!(t.admit("noisy").is_err());
        // The other tenant is unaffected — the point of §4.5.
        t.admit("quiet").unwrap();
        assert_eq!(t.tokens("quiet").unwrap(), 1_000.0);
    }

    #[test]
    fn per_tenant_overrides() {
        let (t, _clock) = throttle(1_000.0, 0.0);
        t.configure_tenant(
            "vip",
            TokenBucketConfig {
                capacity: 50_000.0,
                refill_per_ms: 0.0,
            },
        );
        t.debit("vip", 10_000);
        t.admit("vip").unwrap();
        assert_eq!(t.tokens("vip").unwrap(), 40_000.0);
    }
}
