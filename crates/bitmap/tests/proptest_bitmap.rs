//! Property-based tests: RoaringBitmap must behave exactly like a BTreeSet.

use pinot_bitmap::{deserialize, serialize, RoaringBitmap};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Values concentrated near container boundaries plus a broad range, so the
/// strategies hit array/bitmap/run transitions and multi-chunk paths.
fn value_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![
        0u32..200_000,
        Just(65_535u32),
        Just(65_536u32),
        Just(u32::MAX),
        any::<u32>(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_btreeset_semantics(values in prop::collection::vec(value_strategy(), 0..2000)) {
        let bm = RoaringBitmap::from_iter(values.iter().copied());
        let set: BTreeSet<u32> = values.iter().copied().collect();
        prop_assert_eq!(bm.len(), set.len() as u64);
        prop_assert_eq!(bm.to_vec(), set.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(bm.min(), set.iter().next().copied());
        prop_assert_eq!(bm.max(), set.iter().next_back().copied());
    }

    #[test]
    fn set_operations_match(
        a in prop::collection::vec(value_strategy(), 0..800),
        b in prop::collection::vec(value_strategy(), 0..800),
    ) {
        let ba = RoaringBitmap::from_iter(a.iter().copied());
        let bb = RoaringBitmap::from_iter(b.iter().copied());
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();

        prop_assert_eq!(ba.and(&bb).to_vec(), sa.intersection(&sb).copied().collect::<Vec<_>>());
        prop_assert_eq!(ba.or(&bb).to_vec(), sa.union(&sb).copied().collect::<Vec<_>>());
        prop_assert_eq!(ba.and_not(&bb).to_vec(), sa.difference(&sb).copied().collect::<Vec<_>>());
        prop_assert_eq!(ba.and_len(&bb), sa.intersection(&sb).count() as u64);
    }

    #[test]
    fn optimize_preserves_contents(values in prop::collection::vec(value_strategy(), 0..2000)) {
        let mut bm = RoaringBitmap::from_iter(values.iter().copied());
        let before = bm.to_vec();
        bm.optimize();
        prop_assert_eq!(bm.to_vec(), before);
    }

    #[test]
    fn serialization_round_trips(values in prop::collection::vec(value_strategy(), 0..2000), opt in any::<bool>()) {
        let mut bm = RoaringBitmap::from_iter(values.iter().copied());
        if opt {
            bm.optimize();
        }
        let bytes = serialize(&bm);
        let back = deserialize(&bytes).expect("round trip");
        prop_assert_eq!(back.to_vec(), bm.to_vec());
    }

    #[test]
    fn remove_after_insert(values in prop::collection::vec(value_strategy(), 1..500)) {
        let mut bm = RoaringBitmap::from_iter(values.iter().copied());
        let mut set: BTreeSet<u32> = values.iter().copied().collect();
        // Remove every other distinct value.
        let to_remove: Vec<u32> = set.iter().copied().step_by(2).collect();
        for v in &to_remove {
            prop_assert!(bm.remove(*v));
            set.remove(v);
        }
        prop_assert_eq!(bm.to_vec(), set.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn from_sorted_equals_from_iter(mut values in prop::collection::vec(value_strategy(), 0..2000)) {
        values.sort_unstable();
        values.dedup();
        let a = RoaringBitmap::from_sorted(values.iter().copied());
        let b = RoaringBitmap::from_iter(values.iter().copied());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn range_complement_laws(start in 0u32..100_000, len in 0u32..100_000, values in prop::collection::vec(0u32..200_000, 0..200)) {
        let end = start.saturating_add(len);
        let range = RoaringBitmap::from_range(start, end);
        prop_assert_eq!(range.len(), (end - start) as u64);
        let bm = RoaringBitmap::from_iter(values.iter().copied());
        let universe = 200_000u32;
        let neg = bm.not(universe);
        // Double complement within the universe restores the original ∩ universe.
        let restored = neg.not(universe);
        let expected: Vec<u32> = bm.iter().filter(|v| *v < universe).collect();
        prop_assert_eq!(restored.to_vec(), expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bulk extraction (ISSUE 4): `iter_into` and `for_each_batch` must
    /// produce exactly the ascending id sequence of `iter`, across
    /// array/bitmap/run container mixes.
    #[test]
    fn bulk_extraction_matches_iter(values in prop::collection::vec(value_strategy(), 0..2000)) {
        let mut bm = RoaringBitmap::from_iter(values.iter().copied());
        bm.optimize();
        let expect: Vec<u32> = bm.iter().collect();

        let mut bulk = Vec::new();
        bm.iter_into(&mut bulk);
        prop_assert_eq!(&bulk, &expect);

        let mut batched = Vec::new();
        let mut scratch = Vec::new();
        let mut saw_empty_batch = false;
        bm.for_each_batch(&mut scratch, |ids| {
            saw_empty_batch |= ids.is_empty();
            batched.extend_from_slice(ids);
        });
        prop_assert!(!saw_empty_batch);
        prop_assert_eq!(&batched, &expect);
    }
}
