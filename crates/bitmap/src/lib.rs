//! Roaring-style compressed bitmaps.
//!
//! Both Pinot and Druid use Roaring bitmaps for their inverted indexes
//! (Chambi et al., cited as [6, 7] in the paper). This crate is a
//! from-scratch implementation of the core design: the 32-bit key space is
//! split into 2^16 chunks by the high 16 bits; each chunk stores its low
//! 16 bits in one of three container kinds chosen by density:
//!
//! * **Array** — sorted `Vec<u16>`, for sparse chunks (≤ 4096 values);
//! * **Bitmap** — 1024 × u64 words, for dense chunks;
//! * **Run** — sorted run list `(start, len-1)`, for runs of consecutive
//!   values (the `runOptimize` representation of the Roaring paper).
//!
//! Containers convert automatically on mutation; [`RoaringBitmap::optimize`]
//! applies run compression greedily. Set operations (`and`, `or`, `and_not`)
//! operate container-pairwise.

mod container;
mod serde_bytes;

use container::Container;
use std::fmt;

pub use serde_bytes::{deserialize, serialize};

/// A compressed bitmap over `u32` document ids.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct RoaringBitmap {
    /// Sorted by key (high 16 bits); parallel vectors to keep keys hot.
    keys: Vec<u16>,
    containers: Vec<Container>,
}

impl RoaringBitmap {
    pub fn new() -> RoaringBitmap {
        RoaringBitmap::default()
    }

    /// Build from an iterator of (possibly unsorted, possibly duplicate) ids.
    /// Shadows `FromIterator::from_iter` on purpose: both behave identically.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> RoaringBitmap {
        let mut bm = RoaringBitmap::new();
        for v in iter {
            bm.insert(v);
        }
        bm
    }

    /// Build from a strictly ascending sequence; faster than `from_iter`.
    /// Falls back to `insert` if order is violated.
    pub fn from_sorted<I: IntoIterator<Item = u32>>(iter: I) -> RoaringBitmap {
        let mut bm = RoaringBitmap::new();
        for v in iter {
            bm.push_back(v);
        }
        bm
    }

    /// Append an id known to be greater than every existing member.
    pub fn push_back(&mut self, value: u32) {
        let key = (value >> 16) as u16;
        let low = (value & 0xFFFF) as u16;
        match self.keys.last() {
            Some(&k) if k == key => {
                let c = self.containers.last_mut().expect("parallel vectors");
                debug_assert!(c.max().is_none_or(|m| m <= low));
                c.insert(low);
            }
            Some(&k) if k > key => {
                // Out of order; fall back to insert for correctness.
                self.insert(value);
            }
            _ => {
                let mut c = Container::new_array();
                c.insert(low);
                self.keys.push(key);
                self.containers.push(c);
            }
        }
    }

    /// Bulk [`push_back`](Self::push_back): append a strictly-ascending
    /// slice whose first id exceeds the current max. One container lookup
    /// per 64Ki key range instead of one per id — the batched filter
    /// scan's append path. Ids at or below the current max fall back to
    /// `insert` for correctness.
    pub fn append_sorted(&mut self, values: &[u32]) {
        let mut i = 0;
        while i < values.len() {
            let key = (values[i] >> 16) as u16;
            let hi = values[i] | 0xFFFF;
            let end = i + values[i..].partition_point(|&v| v <= hi);
            match self.keys.last() {
                Some(&k) if k > key => {
                    // Out of order; fall back to insert for correctness.
                    for &v in &values[i..end] {
                        self.insert(v);
                    }
                }
                Some(&k) if k == key => {
                    let c = self.containers.last_mut().expect("parallel vectors");
                    if c.max().is_some_and(|m| m >= (values[i] & 0xFFFF) as u16) {
                        for &v in &values[i..end] {
                            self.insert(v);
                        }
                    } else {
                        c.append_ascending(&values[i..end]);
                    }
                }
                _ => {
                    self.keys.push(key);
                    self.containers.push(Container::new_array());
                    let c = self.containers.last_mut().expect("parallel vectors");
                    c.append_ascending(&values[i..end]);
                }
            }
            i = end;
        }
    }

    pub fn insert(&mut self, value: u32) -> bool {
        let key = (value >> 16) as u16;
        let low = (value & 0xFFFF) as u16;
        match self.keys.binary_search(&key) {
            Ok(i) => self.containers[i].insert(low),
            Err(i) => {
                let mut c = Container::new_array();
                c.insert(low);
                self.keys.insert(i, key);
                self.containers.insert(i, c);
                true
            }
        }
    }

    pub fn remove(&mut self, value: u32) -> bool {
        let key = (value >> 16) as u16;
        let low = (value & 0xFFFF) as u16;
        if let Ok(i) = self.keys.binary_search(&key) {
            let removed = self.containers[i].remove(low);
            if removed && self.containers[i].is_empty() {
                self.keys.remove(i);
                self.containers.remove(i);
            }
            removed
        } else {
            false
        }
    }

    pub fn contains(&self, value: u32) -> bool {
        let key = (value >> 16) as u16;
        let low = (value & 0xFFFF) as u16;
        match self.keys.binary_search(&key) {
            Ok(i) => self.containers[i].contains(low),
            Err(_) => false,
        }
    }

    /// Number of set bits.
    pub fn len(&self) -> u64 {
        self.containers.iter().map(|c| c.len() as u64).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    pub fn min(&self) -> Option<u32> {
        let key = *self.keys.first()? as u32;
        let low = self.containers.first()?.min()? as u32;
        Some((key << 16) | low)
    }

    pub fn max(&self) -> Option<u32> {
        let key = *self.keys.last()? as u32;
        let low = self.containers.last()?.max()? as u32;
        Some((key << 16) | low)
    }

    /// Convert containers into run containers where that is smaller.
    pub fn optimize(&mut self) {
        for c in &mut self.containers {
            c.run_optimize();
        }
    }

    /// Intersection.
    pub fn and(&self, other: &RoaringBitmap) -> RoaringBitmap {
        let mut out = RoaringBitmap::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let c = self.containers[i].and(&other.containers[j]);
                    if !c.is_empty() {
                        out.keys.push(self.keys[i]);
                        out.containers.push(c);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Union.
    pub fn or(&self, other: &RoaringBitmap) -> RoaringBitmap {
        let mut out = RoaringBitmap::new();
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let take_left = match (self.keys.get(i), other.keys.get(j)) {
                (Some(a), Some(b)) => {
                    if a == b {
                        let c = self.containers[i].or(&other.containers[j]);
                        out.keys.push(*a);
                        out.containers.push(c);
                        i += 1;
                        j += 1;
                        continue;
                    }
                    a < b
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_left {
                out.keys.push(self.keys[i]);
                out.containers.push(self.containers[i].clone());
                i += 1;
            } else {
                out.keys.push(other.keys[j]);
                out.containers.push(other.containers[j].clone());
                j += 1;
            }
        }
        out
    }

    /// Difference: bits in `self` not in `other`.
    pub fn and_not(&self, other: &RoaringBitmap) -> RoaringBitmap {
        let mut out = RoaringBitmap::new();
        let mut j = 0usize;
        for (i, key) in self.keys.iter().enumerate() {
            while j < other.keys.len() && other.keys[j] < *key {
                j += 1;
            }
            if j < other.keys.len() && other.keys[j] == *key {
                let c = self.containers[i].and_not(&other.containers[j]);
                if !c.is_empty() {
                    out.keys.push(*key);
                    out.containers.push(c);
                }
            } else {
                out.keys.push(*key);
                out.containers.push(self.containers[i].clone());
            }
        }
        out
    }

    /// Complement within `[0, universe)`: ids below `universe` not in `self`.
    pub fn not(&self, universe: u32) -> RoaringBitmap {
        let full = RoaringBitmap::from_range(0, universe);
        full.and_not(self)
    }

    /// All ids in `[start, end)`.
    pub fn from_range(start: u32, end: u32) -> RoaringBitmap {
        let mut bm = RoaringBitmap::new();
        if start >= end {
            return bm;
        }
        let mut cur = start;
        let last = end - 1;
        loop {
            let key = (cur >> 16) as u16;
            let chunk_start = (cur & 0xFFFF) as u16;
            let chunk_last = if (last >> 16) as u16 == key {
                (last & 0xFFFF) as u16
            } else {
                0xFFFF
            };
            bm.keys.push(key);
            bm.containers
                .push(Container::new_run_range(chunk_start, chunk_last));
            if (key as u32) == (last >> 16) {
                break;
            }
            cur = ((key as u32) + 1) << 16;
        }
        bm
    }

    /// Iterate set ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.keys
            .iter()
            .zip(self.containers.iter())
            .flat_map(|(key, c)| {
                let high = (*key as u32) << 16;
                c.iter().map(move |low| high | low as u32)
            })
    }

    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Append every set id onto `out` in ascending order, container at a
    /// time — the bulk extraction used by batched execution (`out` is
    /// not cleared, so runs can be accumulated).
    pub fn iter_into(&self, out: &mut Vec<u32>) {
        out.reserve(self.len() as usize);
        for (key, c) in self.keys.iter().zip(&self.containers) {
            c.append_into((*key as u32) << 16, out);
        }
    }

    /// Visit set ids in ascending order one container-sized batch at a
    /// time (each batch holds at most 65 536 ids). `scratch` is reused
    /// between batches, so the full id list is never materialized.
    pub fn for_each_batch(&self, scratch: &mut Vec<u32>, mut f: impl FnMut(&[u32])) {
        for (key, c) in self.keys.iter().zip(&self.containers) {
            scratch.clear();
            c.append_into((*key as u32) << 16, scratch);
            if !scratch.is_empty() {
                f(scratch);
            }
        }
    }

    /// Cardinality of the intersection without materializing it.
    pub fn and_len(&self, other: &RoaringBitmap) -> u64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut n = 0u64;
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += self.containers[i].and_len(&other.containers[j]) as u64;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Bulk k-way union, container at a time. Each output container is
    /// folded once from the ≤k input containers sharing its key, so a
    /// union over k postings lists allocates O(chunks) intermediates
    /// instead of the O(k·chunks) a pairwise `acc = acc.or(bm)` fold
    /// pays — the Roaring sweet spot for wide IN-lists and range probes
    /// over an inverted index.
    pub fn union_many(inputs: &[&RoaringBitmap]) -> RoaringBitmap {
        match inputs.len() {
            0 => return RoaringBitmap::new(),
            1 => return inputs[0].clone(),
            _ => {}
        }
        let mut cursors = vec![0usize; inputs.len()];
        let mut out = RoaringBitmap::new();
        loop {
            let mut min_key: Option<u16> = None;
            for (bm, &c) in inputs.iter().zip(&cursors) {
                if let Some(&k) = bm.keys.get(c) {
                    min_key = Some(min_key.map_or(k, |m| m.min(k)));
                }
            }
            let Some(key) = min_key else { break };
            let mut acc: Option<Container> = None;
            for (bm, c) in inputs.iter().zip(cursors.iter_mut()) {
                if bm.keys.get(*c) == Some(&key) {
                    let cont = &bm.containers[*c];
                    acc = Some(match acc {
                        None => cont.clone(),
                        Some(a) => a.or(cont),
                    });
                    *c += 1;
                }
            }
            if let Some(c) = acc {
                if !c.is_empty() {
                    out.keys.push(key);
                    out.containers.push(c);
                }
            }
        }
        out
    }

    /// Bulk k-way intersection, container at a time. Inputs are visited
    /// smallest-cardinality first so the working container never grows,
    /// and each chunk short-circuits to nothing the moment any input
    /// misses its key or the fold empties.
    pub fn intersect_many(inputs: &[&RoaringBitmap]) -> RoaringBitmap {
        match inputs.len() {
            0 => return RoaringBitmap::new(),
            1 => return inputs[0].clone(),
            _ => {}
        }
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        order.sort_by_key(|&i| inputs[i].len());
        let first = inputs[order[0]];
        let mut out = RoaringBitmap::new();
        'keys: for (i, &key) in first.keys.iter().enumerate() {
            let mut acc = first.containers[i].clone();
            for &j in &order[1..] {
                let bm = inputs[j];
                match bm.keys.binary_search(&key) {
                    Ok(pos) => {
                        acc = acc.and(&bm.containers[pos]);
                        if acc.is_empty() {
                            continue 'keys;
                        }
                    }
                    Err(_) => continue 'keys,
                }
            }
            out.keys.push(key);
            out.containers.push(acc);
        }
        out
    }

    /// Approximate heap size in bytes (for storage accounting).
    pub fn size_bytes(&self) -> usize {
        let base = std::mem::size_of::<Self>() + self.keys.len() * 2;
        base + self
            .containers
            .iter()
            .map(Container::size_bytes)
            .sum::<usize>()
    }

    /// Container kinds per chunk, exposed for tests and storage stats.
    pub fn container_kinds(&self) -> Vec<&'static str> {
        self.containers.iter().map(Container::kind_name).collect()
    }

    pub(crate) fn parts(&self) -> (&[u16], &[Container]) {
        (&self.keys, &self.containers)
    }

    pub(crate) fn from_parts(keys: Vec<u16>, containers: Vec<Container>) -> RoaringBitmap {
        RoaringBitmap { keys, containers }
    }
}

impl fmt::Debug for RoaringBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.len();
        write!(f, "RoaringBitmap(len={n}")?;
        if n <= 16 {
            write!(f, ", {:?}", self.to_vec())?;
        }
        write!(f, ")")
    }
}

impl FromIterator<u32> for RoaringBitmap {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        RoaringBitmap::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_remove() {
        let mut bm = RoaringBitmap::new();
        assert!(bm.insert(5));
        assert!(!bm.insert(5));
        assert!(bm.contains(5));
        assert!(!bm.contains(6));
        assert!(bm.remove(5));
        assert!(!bm.remove(5));
        assert!(bm.is_empty());
    }

    #[test]
    fn spans_multiple_containers() {
        let vals = [0u32, 1, 65_535, 65_536, 1 << 20, u32::MAX];
        let bm = RoaringBitmap::from_iter(vals.iter().copied());
        assert_eq!(bm.len(), vals.len() as u64);
        for v in vals {
            assert!(bm.contains(v));
        }
        assert_eq!(bm.min(), Some(0));
        assert_eq!(bm.max(), Some(u32::MAX));
        assert_eq!(bm.to_vec(), vals);
    }

    #[test]
    fn array_to_bitmap_promotion() {
        // > 4096 values in one chunk forces a bitmap container.
        let bm = RoaringBitmap::from_sorted(0..5000u32);
        assert_eq!(bm.len(), 5000);
        assert_eq!(bm.container_kinds(), vec!["bitmap"]);
        assert!(bm.contains(4999));
        assert!(!bm.contains(5000));
    }

    #[test]
    fn bitmap_demotes_to_array_on_removal() {
        let mut bm = RoaringBitmap::from_sorted(0..5000u32);
        for v in 100..5000 {
            bm.remove(v);
        }
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.container_kinds(), vec!["array"]);
    }

    #[test]
    fn run_optimize_compresses_ranges() {
        let mut bm = RoaringBitmap::from_sorted(10..4000u32);
        let before = bm.size_bytes();
        bm.optimize();
        assert_eq!(bm.container_kinds(), vec!["run"]);
        assert!(bm.size_bytes() < before);
        assert_eq!(bm.len(), 3990);
        assert!(bm.contains(10) && bm.contains(3999) && !bm.contains(9));
    }

    #[test]
    fn set_ops_match_btreeset() {
        let a_vals: Vec<u32> = (0..1000).map(|i| i * 7 % 3000).collect();
        let b_vals: Vec<u32> = (0..1000).map(|i| i * 11 % 3000 + 65_530).collect();
        let a = RoaringBitmap::from_iter(a_vals.iter().copied());
        let b = RoaringBitmap::from_iter(b_vals.iter().copied());
        let sa: BTreeSet<u32> = a_vals.into_iter().collect();
        let sb: BTreeSet<u32> = b_vals.into_iter().collect();

        assert_eq!(
            a.and(&b).to_vec(),
            sa.intersection(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            a.or(&b).to_vec(),
            sa.union(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            a.and_not(&b).to_vec(),
            sa.difference(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(a.and_len(&b), sa.intersection(&sb).count() as u64);
    }

    #[test]
    fn from_range_and_not() {
        let bm = RoaringBitmap::from_range(100, 200_000);
        assert_eq!(bm.len(), 199_900);
        assert!(bm.contains(100) && bm.contains(199_999));
        assert!(!bm.contains(99) && !bm.contains(200_000));

        let few = RoaringBitmap::from_iter([0u32, 5, 9]);
        let neg = few.not(10);
        assert_eq!(neg.to_vec(), vec![1, 2, 3, 4, 6, 7, 8]);
    }

    #[test]
    fn empty_range_is_empty() {
        assert!(RoaringBitmap::from_range(5, 5).is_empty());
        assert!(RoaringBitmap::from_range(7, 3).is_empty());
    }

    #[test]
    fn push_back_matches_insert() {
        let vals: Vec<u32> = (0..100_000).step_by(17).collect();
        let a = RoaringBitmap::from_sorted(vals.iter().copied());
        let b = RoaringBitmap::from_iter(vals.iter().copied());
        assert_eq!(a, b);
    }

    #[test]
    fn iter_into_and_batches_match_iter() {
        // One array container, one run container (after optimize), and
        // one bitmap container.
        let mut bm = RoaringBitmap::from_iter([3u32, 900, 70_000]);
        for v in (1 << 17)..((1 << 17) + 5000) {
            bm.insert(v);
        }
        let mut run = RoaringBitmap::from_range(1 << 18, (1 << 18) + 300);
        run.optimize();
        let bm = bm.or(&run);

        let mut bulk = Vec::new();
        bm.iter_into(&mut bulk);
        assert_eq!(bulk, bm.to_vec());

        let mut scratch = Vec::new();
        let mut batched = Vec::new();
        let mut batches = 0usize;
        bm.for_each_batch(&mut scratch, |ids| {
            assert!(!ids.is_empty());
            batched.extend_from_slice(ids);
            batches += 1;
        });
        assert_eq!(batched, bm.to_vec());
        assert_eq!(batches, bm.container_kinds().len());
    }

    #[test]
    fn iter_is_sorted_dedup() {
        let bm = RoaringBitmap::from_iter([5u32, 3, 5, 1, 70_000, 3]);
        assert_eq!(bm.to_vec(), vec![1, 3, 5, 70_000]);
    }

    #[test]
    fn union_many_matches_pairwise_fold() {
        let inputs: Vec<RoaringBitmap> = (0..7u32)
            .map(|k| RoaringBitmap::from_iter((0..400).map(|i| i * (k + 3) % 200_000)))
            .collect();
        let refs: Vec<&RoaringBitmap> = inputs.iter().collect();
        let bulk = RoaringBitmap::union_many(&refs);
        let folded = inputs
            .iter()
            .fold(RoaringBitmap::new(), |acc, bm| acc.or(bm));
        assert_eq!(bulk, folded);
        assert!(RoaringBitmap::union_many(&[]).is_empty());
        assert_eq!(RoaringBitmap::union_many(&[&inputs[0]]), inputs[0]);
    }

    #[test]
    fn intersect_many_matches_pairwise_fold() {
        let a = RoaringBitmap::from_iter((0..100_000u32).filter(|v| v % 2 == 0));
        let b = RoaringBitmap::from_iter((0..100_000u32).filter(|v| v % 3 == 0));
        let mut c = RoaringBitmap::from_range(30_000, 90_000);
        c.optimize();
        let bulk = RoaringBitmap::intersect_many(&[&a, &b, &c]);
        let folded = a.and(&b).and(&c);
        assert_eq!(bulk, folded);
        assert_eq!(bulk.len(), folded.len());
        // Disjoint input short-circuits to empty.
        let d = RoaringBitmap::from_range(200_000, 200_100);
        assert!(RoaringBitmap::intersect_many(&[&a, &d]).is_empty());
        assert!(RoaringBitmap::intersect_many(&[]).is_empty());
        assert_eq!(RoaringBitmap::intersect_many(&[&a]), a);
    }

    #[test]
    fn ops_with_run_containers() {
        let mut a = RoaringBitmap::from_range(0, 10_000);
        a.optimize();
        let b = RoaringBitmap::from_iter((0..10_000u32).filter(|v| v % 2 == 0));
        let both = a.and(&b);
        assert_eq!(both.len(), 5_000);
        let either = a.or(&b);
        assert_eq!(either.len(), 10_000);
        let diff = a.and_not(&b);
        assert_eq!(diff.len(), 5_000);
        assert!(diff.contains(1) && !diff.contains(2));
    }
}
