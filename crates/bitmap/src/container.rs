//! Roaring containers: the per-chunk storage for low 16 bits.

/// Array containers hold at most this many values; beyond it they are
/// promoted to bitmap containers (the threshold from the Roaring paper:
/// 4096 × 2 bytes = 8 KiB, the fixed size of a bitmap container).
pub const ARRAY_MAX: usize = 4096;

const WORDS: usize = 1024;

#[derive(Clone, PartialEq, Eq)]
pub enum Container {
    /// Sorted unique values.
    Array(Vec<u16>),
    /// Fixed 65536-bit bitmap plus a cached popcount.
    Bitmap { words: Box<[u64; WORDS]>, len: u32 },
    /// Sorted disjoint non-adjacent runs, stored as (start, last) inclusive.
    Run(Vec<(u16, u16)>),
}

impl Container {
    pub fn new_array() -> Container {
        Container::Array(Vec::new())
    }

    /// A run container covering `[start, last]` inclusive.
    pub fn new_run_range(start: u16, last: u16) -> Container {
        debug_assert!(start <= last);
        Container::Run(vec![(start, last)])
    }

    pub fn kind_name(&self) -> &'static str {
        match self {
            Container::Array(_) => "array",
            Container::Bitmap { .. } => "bitmap",
            Container::Run(_) => "run",
        }
    }

    pub fn len(&self) -> u32 {
        match self {
            Container::Array(v) => v.len() as u32,
            Container::Bitmap { len, .. } => *len,
            Container::Run(runs) => runs
                .iter()
                .map(|(s, l)| (*l as u32) - (*s as u32) + 1)
                .sum(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn contains(&self, v: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&v).is_ok(),
            Container::Bitmap { words, .. } => words[(v >> 6) as usize] & (1u64 << (v & 63)) != 0,
            Container::Run(runs) => runs
                .binary_search_by(|(s, l)| {
                    if *l < v {
                        std::cmp::Ordering::Less
                    } else if *s > v {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .is_ok(),
        }
    }

    /// Insert; returns true if the value was newly added. Run containers
    /// degrade to array/bitmap on mutation (runs are a read-optimized form).
    pub fn insert(&mut self, v: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&v) {
                Ok(_) => false,
                Err(i) => {
                    if a.len() >= ARRAY_MAX {
                        let mut bm = self.to_bitmap();
                        let added = bm.insert(v);
                        *self = bm;
                        added
                    } else {
                        a.insert(i, v);
                        true
                    }
                }
            },
            Container::Bitmap { words, len } => {
                let w = &mut words[(v >> 6) as usize];
                let bit = 1u64 << (v & 63);
                if *w & bit == 0 {
                    *w |= bit;
                    *len += 1;
                    true
                } else {
                    false
                }
            }
            Container::Run(_) => {
                if self.contains(v) {
                    return false;
                }
                let mut bm = self.to_bitmap();
                let added = bm.insert(v);
                *self = bm;
                added
            }
        }
    }

    /// Bulk append of strictly-ascending low bits, every one greater than
    /// the current max (the `push_back` contract, amortized): arrays
    /// extend in place (converting once if they'd exceed [`ARRAY_MAX`]),
    /// bitmaps just set bits — no per-element search or length check.
    pub(crate) fn append_ascending(&mut self, values: &[u32]) {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(self
            .max()
            .is_none_or(|m| values.first().is_none_or(|&v| m < (v & 0xFFFF) as u16)));
        match self {
            Container::Array(a) => {
                if a.len() + values.len() > ARRAY_MAX {
                    let mut bm = self.to_bitmap();
                    if let Container::Bitmap { words, len } = &mut bm {
                        for &v in values {
                            words[(v >> 6) as usize & 0x3FF] |= 1u64 << (v & 63);
                        }
                        *len += values.len() as u32;
                    }
                    *self = bm;
                } else {
                    a.extend(values.iter().map(|&v| (v & 0xFFFF) as u16));
                }
            }
            Container::Bitmap { words, len } => {
                for &v in values {
                    words[(v >> 6) as usize & 0x3FF] |= 1u64 << (v & 63);
                }
                *len += values.len() as u32;
            }
            Container::Run(_) => {
                for &v in values {
                    self.insert((v & 0xFFFF) as u16);
                }
            }
        }
    }

    /// Remove; returns true if present. Bitmap containers demote to array
    /// when they shrink to the array threshold.
    pub fn remove(&mut self, v: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&v) {
                Ok(i) => {
                    a.remove(i);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap { words, len } => {
                let w = &mut words[(v >> 6) as usize];
                let bit = 1u64 << (v & 63);
                if *w & bit != 0 {
                    *w &= !bit;
                    *len -= 1;
                    if (*len as usize) <= ARRAY_MAX {
                        *self = Container::Array(self.iter().collect());
                    }
                    true
                } else {
                    false
                }
            }
            Container::Run(_) => {
                if !self.contains(v) {
                    return false;
                }
                let mut bm = self.to_bitmap();
                bm.remove(v);
                *self = bm.normalized();
                true
            }
        }
    }

    pub fn min(&self) -> Option<u16> {
        match self {
            Container::Array(a) => a.first().copied(),
            Container::Bitmap { words, .. } => {
                for (i, w) in words.iter().enumerate() {
                    if *w != 0 {
                        return Some((i * 64) as u16 + w.trailing_zeros() as u16);
                    }
                }
                None
            }
            Container::Run(runs) => runs.first().map(|(s, _)| *s),
        }
    }

    pub fn max(&self) -> Option<u16> {
        match self {
            Container::Array(a) => a.last().copied(),
            Container::Bitmap { words, .. } => {
                for (i, w) in words.iter().enumerate().rev() {
                    if *w != 0 {
                        return Some((i * 64) as u16 + (63 - w.leading_zeros()) as u16);
                    }
                }
                None
            }
            Container::Run(runs) => runs.last().map(|(_, l)| *l),
        }
    }

    pub fn iter(&self) -> Box<dyn Iterator<Item = u16> + '_> {
        match self {
            Container::Array(a) => Box::new(a.iter().copied()),
            Container::Bitmap { words, .. } => Box::new(BitmapIter {
                words,
                word_idx: 0,
                cur: words[0],
            }),
            Container::Run(runs) => Box::new(
                runs.iter()
                    .flat_map(|(s, l)| (*s as u32..=*l as u32).map(|v| v as u16)),
            ),
        }
    }

    /// Append every value, offset by `high` (the chunk's high bits), onto
    /// `out` in ascending order — the container-at-a-time extraction the
    /// batched execution path drains selections with, avoiding the
    /// per-element virtual dispatch of the boxed `iter()`.
    pub(crate) fn append_into(&self, high: u32, out: &mut Vec<u32>) {
        match self {
            Container::Array(a) => out.extend(a.iter().map(|&v| high | v as u32)),
            Container::Bitmap { words, len } => {
                out.reserve(*len as usize);
                for (i, &word) in words.iter().enumerate() {
                    let mut w = word;
                    let base = high | ((i as u32) << 6);
                    while w != 0 {
                        out.push(base | w.trailing_zeros());
                        w &= w - 1;
                    }
                }
            }
            Container::Run(runs) => {
                for &(s, l) in runs {
                    out.extend((s as u32..=l as u32).map(|v| high | v));
                }
            }
        }
    }

    /// Materialize as a bitmap container (used by ops and mutations on runs).
    fn to_bitmap(&self) -> Container {
        match self {
            Container::Bitmap { .. } => self.clone(),
            _ => {
                let mut words = Box::new([0u64; WORDS]);
                let mut len = 0u32;
                match self {
                    Container::Array(a) => {
                        for &v in a {
                            words[(v >> 6) as usize] |= 1u64 << (v & 63);
                        }
                        len = a.len() as u32;
                    }
                    Container::Run(runs) => {
                        for &(s, l) in runs {
                            for v in s..=l {
                                words[(v >> 6) as usize] |= 1u64 << (v & 63);
                            }
                            len += (l as u32) - (s as u32) + 1;
                        }
                    }
                    Container::Bitmap { .. } => unreachable!(),
                }
                Container::Bitmap { words, len }
            }
        }
    }

    /// Pick the canonical form for the current cardinality: array when
    /// small, bitmap otherwise. (Runs are only chosen by `run_optimize`.)
    fn normalized(self) -> Container {
        let n = self.len() as usize;
        match &self {
            Container::Bitmap { .. } if n <= ARRAY_MAX => Container::Array(self.iter().collect()),
            Container::Array(_) if n > ARRAY_MAX => self.to_bitmap(),
            _ => self,
        }
    }

    /// Convert to a run container when strictly smaller than the current
    /// representation.
    pub fn run_optimize(&mut self) {
        if matches!(self, Container::Run(_)) {
            return;
        }
        let mut runs: Vec<(u16, u16)> = Vec::new();
        for v in self.iter() {
            match runs.last_mut() {
                Some((_, l)) if *l as u32 + 1 == v as u32 => *l = v,
                _ => runs.push((v, v)),
            }
        }
        let run_size = runs.len() * 4 + 8;
        if run_size < self.size_bytes() {
            *self = Container::Run(runs);
        }
    }

    pub fn size_bytes(&self) -> usize {
        match self {
            Container::Array(a) => a.len() * 2 + 8,
            Container::Bitmap { .. } => WORDS * 8 + 8,
            Container::Run(runs) => runs.len() * 4 + 8,
        }
    }

    pub fn and(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                let mut out = Vec::new();
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                Container::Array(out)
            }
            (Container::Array(a), other) => {
                Container::Array(a.iter().copied().filter(|v| other.contains(*v)).collect())
            }
            (this, Container::Array(b)) => {
                Container::Array(b.iter().copied().filter(|v| this.contains(*v)).collect())
            }
            _ => {
                let (x, y) = (self.to_bitmap(), other.to_bitmap());
                match (x, y) {
                    (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                        let mut words = Box::new([0u64; WORDS]);
                        let mut len = 0u32;
                        for i in 0..WORDS {
                            words[i] = wa[i] & wb[i];
                            len += words[i].count_ones();
                        }
                        Container::Bitmap { words, len }.normalized()
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    pub fn and_len(&self, other: &Container) -> u32 {
        match (self, other) {
            (Container::Array(a), other) => a.iter().filter(|v| other.contains(**v)).count() as u32,
            (this, Container::Array(b)) => b.iter().filter(|v| this.contains(**v)).count() as u32,
            (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                (0..WORDS).map(|i| (wa[i] & wb[i]).count_ones()).sum()
            }
            _ => self.and(other).len(),
        }
    }

    pub fn or(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) if a.len() + b.len() <= ARRAY_MAX => {
                let mut out = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() || j < b.len() {
                    match (a.get(i), b.get(j)) {
                        (Some(x), Some(y)) => match x.cmp(y) {
                            std::cmp::Ordering::Less => {
                                out.push(*x);
                                i += 1;
                            }
                            std::cmp::Ordering::Greater => {
                                out.push(*y);
                                j += 1;
                            }
                            std::cmp::Ordering::Equal => {
                                out.push(*x);
                                i += 1;
                                j += 1;
                            }
                        },
                        (Some(x), None) => {
                            out.push(*x);
                            i += 1;
                        }
                        (None, Some(y)) => {
                            out.push(*y);
                            j += 1;
                        }
                        (None, None) => break,
                    }
                }
                Container::Array(out)
            }
            _ => {
                let (x, y) = (self.to_bitmap(), other.to_bitmap());
                match (x, y) {
                    (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                        let mut words = Box::new([0u64; WORDS]);
                        let mut len = 0u32;
                        for i in 0..WORDS {
                            words[i] = wa[i] | wb[i];
                            len += words[i].count_ones();
                        }
                        Container::Bitmap { words, len }.normalized()
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    pub fn and_not(&self, other: &Container) -> Container {
        match self {
            Container::Array(a) => {
                Container::Array(a.iter().copied().filter(|v| !other.contains(*v)).collect())
            }
            _ => {
                let (x, y) = (self.to_bitmap(), other.to_bitmap());
                match (x, y) {
                    (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                        let mut words = Box::new([0u64; WORDS]);
                        let mut len = 0u32;
                        for i in 0..WORDS {
                            words[i] = wa[i] & !wb[i];
                            len += words[i].count_ones();
                        }
                        Container::Bitmap { words, len }.normalized()
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Raw parts for serialization.
    pub(crate) fn encode_parts(&self) -> (u8, Vec<u16>) {
        match self {
            Container::Array(a) => (0, a.clone()),
            Container::Bitmap { words, .. } => {
                let mut out = Vec::with_capacity(WORDS * 4);
                for w in words.iter() {
                    out.push((w & 0xFFFF) as u16);
                    out.push(((w >> 16) & 0xFFFF) as u16);
                    out.push(((w >> 32) & 0xFFFF) as u16);
                    out.push(((w >> 48) & 0xFFFF) as u16);
                }
                (1, out)
            }
            Container::Run(runs) => {
                let mut out = Vec::with_capacity(runs.len() * 2);
                for (s, l) in runs {
                    out.push(*s);
                    out.push(*l);
                }
                (2, out)
            }
        }
    }

    pub(crate) fn decode_parts(kind: u8, data: Vec<u16>) -> Option<Container> {
        match kind {
            0 => {
                if data.windows(2).any(|w| w[0] >= w[1]) {
                    return None;
                }
                Some(Container::Array(data))
            }
            1 => {
                if data.len() != WORDS * 4 {
                    return None;
                }
                let mut words = Box::new([0u64; WORDS]);
                let mut len = 0u32;
                for i in 0..WORDS {
                    let w = data[i * 4] as u64
                        | (data[i * 4 + 1] as u64) << 16
                        | (data[i * 4 + 2] as u64) << 32
                        | (data[i * 4 + 3] as u64) << 48;
                    words[i] = w;
                    len += w.count_ones();
                }
                Some(Container::Bitmap { words, len })
            }
            2 => {
                if !data.len().is_multiple_of(2) {
                    return None;
                }
                let runs: Vec<(u16, u16)> = data.chunks(2).map(|c| (c[0], c[1])).collect();
                // Runs must be sorted, disjoint, non-adjacent, start <= last.
                for w in runs.windows(2) {
                    if w[0].1 as u32 + 1 >= w[1].0 as u32 {
                        return None;
                    }
                }
                if runs.iter().any(|(s, l)| s > l) {
                    return None;
                }
                Some(Container::Run(runs))
            }
            _ => None,
        }
    }
}

struct BitmapIter<'a> {
    words: &'a [u64; WORDS],
    word_idx: usize,
    cur: u64,
}

impl Iterator for BitmapIter<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        while self.cur == 0 {
            self.word_idx += 1;
            if self.word_idx >= WORDS {
                return None;
            }
            self.cur = self.words[self.word_idx];
        }
        let bit = self.cur.trailing_zeros();
        self.cur &= self.cur - 1;
        Some((self.word_idx * 64) as u16 + bit as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_promotes_at_threshold() {
        let mut c = Container::new_array();
        for v in 0..=ARRAY_MAX as u16 {
            c.insert(v);
        }
        assert_eq!(c.kind_name(), "bitmap");
        assert_eq!(c.len() as usize, ARRAY_MAX + 1);
    }

    #[test]
    fn run_container_contains_and_iter() {
        let c = Container::Run(vec![(2, 4), (10, 10), (100, 102)]);
        assert_eq!(c.len(), 7);
        assert!(c.contains(2) && c.contains(4) && c.contains(10) && c.contains(101));
        assert!(!c.contains(5) && !c.contains(9) && !c.contains(103));
        let vals: Vec<u16> = c.iter().collect();
        assert_eq!(vals, vec![2, 3, 4, 10, 100, 101, 102]);
        assert_eq!(c.min(), Some(2));
        assert_eq!(c.max(), Some(102));
    }

    #[test]
    fn run_mutation_degrades() {
        let mut c = Container::new_run_range(0, 10);
        assert!(!c.insert(5)); // already present
        assert!(c.insert(20));
        assert_ne!(c.kind_name(), "run");
        assert!(c.contains(20) && c.contains(0) && c.contains(10));

        let mut c = Container::new_run_range(0, 10);
        assert!(c.remove(5));
        assert!(!c.contains(5));
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn bitmap_min_max() {
        let mut c = Container::new_array();
        for v in (1000..6000).step_by(1) {
            c.insert(v);
        }
        assert_eq!(c.kind_name(), "bitmap");
        assert_eq!(c.min(), Some(1000));
        assert_eq!(c.max(), Some(5999));
    }

    #[test]
    fn mixed_kind_ops() {
        let arr = Container::Array(vec![1, 5, 9, 4000]);
        let run = Container::new_run_range(0, 8);
        let mut big = Container::new_array();
        for v in 0..5000u16 {
            big.insert(v);
        }
        assert_eq!(arr.and(&run).iter().collect::<Vec<_>>(), vec![1, 5]);
        assert_eq!(arr.and_len(&big), 4);
        assert_eq!(run.and(&big).len(), 9);
        let u = arr.or(&run);
        assert_eq!(u.len(), 11);
        let d = big.and_not(&run);
        assert_eq!(d.len(), 5000 - 9);
    }

    #[test]
    fn encode_decode_round_trip() {
        let cases = vec![
            Container::Array(vec![3, 7, 9]),
            Container::new_run_range(5, 500),
            {
                let mut c = Container::new_array();
                for v in 0..4200u16 {
                    c.insert(v * 3);
                }
                c
            },
        ];
        for c in cases {
            let (kind, data) = c.encode_parts();
            let back = Container::decode_parts(kind, data).unwrap();
            assert_eq!(
                back.iter().collect::<Vec<_>>(),
                c.iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Container::decode_parts(0, vec![5, 5]).is_none()); // duplicates
        assert!(Container::decode_parts(0, vec![9, 3]).is_none()); // unsorted
        assert!(Container::decode_parts(1, vec![0; 7]).is_none()); // bad length
        assert!(Container::decode_parts(2, vec![1, 2, 3]).is_none()); // odd
        assert!(Container::decode_parts(2, vec![1, 5, 5, 9]).is_none()); // overlap
        assert!(Container::decode_parts(2, vec![9, 1]).is_none()); // start > last
        assert!(Container::decode_parts(9, vec![]).is_none()); // bad kind
    }
}
