//! Compact binary serialization for [`RoaringBitmap`].
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "RB01" | u32 container_count
//! per container: u16 key | u8 kind | u32 len_u16 | len_u16 × u16 payload
//! ```
//!
//! Deserialization validates structure (kinds, lengths, key ordering, sorted
//! arrays, disjoint runs) so a corrupted segment file fails loudly instead of
//! producing wrong query results.

use crate::container::Container;
use crate::RoaringBitmap;

const MAGIC: &[u8; 4] = b"RB01";

/// Serialize to a byte buffer.
pub fn serialize(bm: &RoaringBitmap) -> Vec<u8> {
    let (keys, containers) = bm.parts();
    let mut out = Vec::with_capacity(16 + bm.size_bytes());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    for (key, c) in keys.iter().zip(containers) {
        let (kind, data) = c.encode_parts();
        out.extend_from_slice(&key.to_le_bytes());
        out.push(kind);
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        for v in data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Deserialize; returns `None` for malformed input.
pub fn deserialize(bytes: &[u8]) -> Option<RoaringBitmap> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let s = bytes.get(*pos..*pos + n)?;
        *pos += n;
        Some(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return None;
    }
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    let mut keys = Vec::with_capacity(count);
    let mut containers = Vec::with_capacity(count);
    let mut prev_key: Option<u16> = None;
    for _ in 0..count {
        let key = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?);
        if let Some(p) = prev_key {
            if key <= p {
                return None; // keys must be strictly ascending
            }
        }
        prev_key = Some(key);
        let kind = take(&mut pos, 1)?[0];
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let raw = take(&mut pos, len * 2)?;
        let data: Vec<u16> = raw
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        let container = Container::decode_parts(kind, data)?;
        if container.is_empty() {
            return None; // empty containers are never serialized
        }
        keys.push(key);
        containers.push(container);
    }
    if pos != bytes.len() {
        return None;
    }
    Some(RoaringBitmap::from_parts(keys, containers))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_container_kinds() {
        let mut bm = RoaringBitmap::from_iter([1u32, 3, 100_000, 100_001]);
        for v in 200_000..210_000u32 {
            bm.insert(v); // dense chunk → bitmap container
        }
        for v in 300_000..300_500u32 {
            bm.insert(v);
        }
        bm.optimize(); // some chunks become runs
        let bytes = serialize(&bm);
        let back = deserialize(&bytes).unwrap();
        assert_eq!(back, bm);
    }

    #[test]
    fn round_trip_empty() {
        let bm = RoaringBitmap::new();
        assert_eq!(deserialize(&serialize(&bm)).unwrap(), bm);
    }

    #[test]
    fn rejects_corruption() {
        let bm = RoaringBitmap::from_iter(0..1000u32);
        let mut bytes = serialize(&bm);
        assert!(deserialize(&bytes[..bytes.len() - 1]).is_none()); // truncated
        bytes[0] = b'X';
        assert!(deserialize(&bytes).is_none()); // bad magic
        assert!(deserialize(&[]).is_none());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let bm = RoaringBitmap::from_iter([7u32]);
        let mut bytes = serialize(&bm);
        bytes.push(0);
        assert!(deserialize(&bytes).is_none());
    }
}
