//! Client-facing query request/response types.
//!
//! Brokers accept a PQL string and return a [`QueryResponse`]: the merged
//! result plus execution statistics. Errors or timeouts on individual
//! servers mark the response *partial* rather than failing it (§3.3.3 step
//! 7), so the client can choose to display incomplete results or retry.

use crate::value::Value;

/// A query as submitted to a broker.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// PQL text, e.g. `SELECT SUM(clicks) FROM feed WHERE country = 'us'`.
    pub pql: String,
    /// Per-query deadline; servers abandon work past this.
    pub timeout_ms: u64,
    /// Tenant on whose token-bucket budget this query runs (§4.5).
    pub tenant: Option<String>,
    /// Collect a per-operator [`crate::profile::QueryProfile`] during
    /// execution. Off by default: unprofiled execution stays the zero-cost
    /// path and its results are byte-identical either way.
    pub profile: bool,
    /// Collect per-conjunct access-path measurements (chosen path,
    /// estimated vs actual docs) inside the profile. Only `EXPLAIN
    /// ANALYZE` sets this: the detail costs a report allocation per
    /// filter leaf per segment, which plain profiled execution skips to
    /// stay within its overhead budget. Implies nothing on its own —
    /// the report only exists when `profile` is also set.
    pub analyze: bool,
}

impl QueryRequest {
    pub fn new(pql: impl Into<String>) -> QueryRequest {
        QueryRequest {
            pql: pql.into(),
            timeout_ms: 10_000,
            tenant: None,
            profile: false,
            analyze: false,
        }
    }

    pub fn with_timeout_ms(mut self, ms: u64) -> QueryRequest {
        self.timeout_ms = ms;
        self
    }

    pub fn with_tenant(mut self, tenant: impl Into<String>) -> QueryRequest {
        self.tenant = Some(tenant.into());
        self
    }

    pub fn with_profile(mut self) -> QueryRequest {
        self.profile = true;
        self
    }
}

/// One aggregation result: `SUM(clicks) -> 42`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationRow {
    /// Display name, e.g. `sum(clicks)`.
    pub function: String,
    pub value: Value,
}

/// One group-by result table for a single aggregation function.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByRows {
    pub function: String,
    pub group_columns: Vec<String>,
    /// Rows ordered by aggregate descending (top-n semantics).
    pub rows: Vec<(Vec<Value>, Value)>,
}

/// The merged result payload of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Plain aggregations without grouping.
    Aggregation(Vec<AggregationRow>),
    /// Aggregations with GROUP BY, one table per function.
    GroupBy(Vec<GroupByRows>),
    /// SELECT column projections.
    Selection {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
}

impl QueryResult {
    /// Convenience for tests: the single aggregate value, if that is the shape.
    pub fn single_aggregate(&self) -> Option<&Value> {
        match self {
            QueryResult::Aggregation(rows) if rows.len() == 1 => Some(&rows[0].value),
            _ => None,
        }
    }

    pub fn group_by(&self) -> Option<&[GroupByRows]> {
        match self {
            QueryResult::GroupBy(g) => Some(g),
            _ => None,
        }
    }
}

/// What one server contributed to a query — recorded by the broker during
/// gather so partial responses say exactly which servers answered and how
/// much data each returned, not just a boolean flag.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerContribution {
    pub server: String,
    /// False when this server timed out or errored. If `covered_by` is
    /// non-empty its segments were still answered (by other replicas), so
    /// the response is complete despite `responded: false`.
    pub responded: bool,
    pub segments_processed: u64,
    pub docs_scanned: u64,
    pub time_ms: u64,
    /// Replicas that took over this server's segment list after it failed.
    /// Empty for servers that answered themselves or whose segments were
    /// genuinely lost.
    pub covered_by: Vec<String>,
}

/// Execution statistics accumulated across all servers touched by a query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionStats {
    /// Broker-assigned query id, propagated to every server so spans,
    /// per-server stats, and slow-query-log entries can be joined on it.
    /// Deterministic under test: derived from the broker's seeded RNG and
    /// a per-broker sequence number. Zero means "not yet assigned".
    pub query_id: u64,
    /// Segments the routing table asked servers to consider.
    pub num_segments_queried: u64,
    /// Segments actually processed (not pruned by metadata).
    pub num_segments_processed: u64,
    /// Segments pruned by metadata/time-range checks.
    pub num_segments_pruned: u64,
    /// Documents (or preaggregated documents) the filter matched and that
    /// were scanned post-filter.
    pub num_docs_scanned: u64,
    /// Column entries touched while evaluating filters.
    pub num_entries_scanned_in_filter: u64,
    /// Column entries touched while computing projections/aggregations.
    pub num_entries_scanned_post_filter: u64,
    /// Total documents in all queried segments.
    pub total_docs: u64,
    /// Raw (unaggregated) documents the query *would* have scanned without
    /// the star-tree; used for the paper's Figure 13 ratio.
    pub raw_docs_equivalent: u64,
    /// Servers asked / answered; unequal values imply a partial response.
    pub num_servers_queried: u64,
    pub num_servers_responded: u64,
    /// End-to-end broker time.
    pub time_used_ms: u64,
    /// Segments answered from metadata alone / the star-tree / raw scans.
    pub num_segments_metadata_only: u64,
    pub num_segments_star_tree: u64,
    pub num_segments_raw: u64,
    /// `(segment name, plan kind)` for each segment executed.
    pub segment_plans: Vec<(String, String)>,
    /// Per-server accounting filled in by the broker during gather; on a
    /// partial response the non-responding servers appear with
    /// `responded: false`.
    pub per_server: Vec<ServerContribution>,
    /// Hedged scatter accounting: speculative re-issues of a straggling
    /// server's segment slice to a surviving replica, and how many of them
    /// delivered the accepted (first) answer. Losers are discarded at
    /// gather and never double-count into `num_docs_scanned`/`per_server`.
    pub hedges_issued: u64,
    pub hedges_won: u64,
    /// True when the broker answered from its result cache without
    /// scattering. The payload is byte-identical to the execution that
    /// populated the cache; the scan counters describe that execution.
    pub served_from_cache: bool,
}

impl ExecutionStats {
    /// Merge per-server stats into broker-level totals.
    pub fn merge(&mut self, other: &ExecutionStats) {
        if self.query_id == 0 {
            self.query_id = other.query_id;
        }
        self.num_segments_queried += other.num_segments_queried;
        self.num_segments_processed += other.num_segments_processed;
        self.num_segments_pruned += other.num_segments_pruned;
        self.num_docs_scanned += other.num_docs_scanned;
        self.num_entries_scanned_in_filter += other.num_entries_scanned_in_filter;
        self.num_entries_scanned_post_filter += other.num_entries_scanned_post_filter;
        self.total_docs += other.total_docs;
        self.raw_docs_equivalent += other.raw_docs_equivalent;
        self.num_servers_queried += other.num_servers_queried;
        self.num_servers_responded += other.num_servers_responded;
        self.time_used_ms = self.time_used_ms.max(other.time_used_ms);
        self.num_segments_metadata_only += other.num_segments_metadata_only;
        self.num_segments_star_tree += other.num_segments_star_tree;
        self.num_segments_raw += other.num_segments_raw;
        self.segment_plans
            .extend(other.segment_plans.iter().cloned());
        self.per_server.extend(other.per_server.iter().cloned());
        self.hedges_issued += other.hedges_issued;
        self.hedges_won += other.hedges_won;
        self.served_from_cache |= other.served_from_cache;
    }

    /// Figure 13's metric: preaggregated docs scanned / raw docs equivalent.
    /// `None` when the query did not use a preaggregated path.
    pub fn preaggregation_ratio(&self) -> Option<f64> {
        if self.raw_docs_equivalent == 0 {
            None
        } else {
            Some(self.num_docs_scanned as f64 / self.raw_docs_equivalent as f64)
        }
    }
}

/// The full broker response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    pub result: QueryResult,
    pub stats: ExecutionStats,
    /// True when some servers failed or timed out and their partial results
    /// are missing from `result`.
    pub partial: bool,
    /// Human-readable per-server errors that caused `partial`.
    pub exceptions: Vec<String>,
    /// Merged broker → server → segment operator profile; `None` unless
    /// the request set [`QueryRequest::profile`].
    pub profile: Option<crate::profile::QueryProfile>,
}

impl QueryResponse {
    pub fn empty_aggregation() -> QueryResponse {
        QueryResponse {
            result: QueryResult::Aggregation(Vec::new()),
            stats: ExecutionStats::default(),
            partial: false,
            exceptions: Vec::new(),
            profile: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder() {
        let q = QueryRequest::new("SELECT COUNT(*) FROM t")
            .with_timeout_ms(250)
            .with_tenant("ads");
        assert_eq!(q.timeout_ms, 250);
        assert_eq!(q.tenant.as_deref(), Some("ads"));
    }

    #[test]
    fn stats_merge_sums_and_maxes() {
        let mut a = ExecutionStats {
            num_docs_scanned: 10,
            time_used_ms: 5,
            num_servers_queried: 1,
            ..Default::default()
        };
        let b = ExecutionStats {
            num_docs_scanned: 7,
            time_used_ms: 9,
            num_servers_queried: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.num_docs_scanned, 17);
        assert_eq!(a.time_used_ms, 9); // max, not sum
        assert_eq!(a.num_servers_queried, 3);
    }

    #[test]
    fn preaggregation_ratio() {
        let s = ExecutionStats {
            num_docs_scanned: 25,
            raw_docs_equivalent: 100,
            ..Default::default()
        };
        assert_eq!(s.preaggregation_ratio(), Some(0.25));
        assert_eq!(ExecutionStats::default().preaggregation_ratio(), None);
    }

    #[test]
    fn single_aggregate_helper() {
        let r = QueryResult::Aggregation(vec![AggregationRow {
            function: "count(*)".into(),
            value: Value::Long(3),
        }]);
        assert_eq!(r.single_aggregate(), Some(&Value::Long(3)));
        let multi = QueryResult::Aggregation(vec![]);
        assert_eq!(multi.single_aggregate(), None);
    }
}
