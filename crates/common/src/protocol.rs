//! Realtime segment-completion protocol messages (§3.3.6).
//!
//! Replicas consuming the same stream partition reach identical segment
//! contents through this protocol: when a replica hits its end criteria it
//! polls the lead controller with its current offset; the controller's state
//! machine answers with one of the instructions below.

use crate::ids::{InstanceId, SegmentName};

/// Stream offset within one partition.
pub type Offset = u64;

/// A consuming server's poll to the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionPoll {
    pub segment: SegmentName,
    pub instance: InstanceId,
    /// Offset the replica has consumed up to (exclusive).
    pub offset: Offset,
    /// Set when the poll is a commit attempt completion ("I finished
    /// uploading the segment you told me to commit").
    pub commit_upload_done: bool,
}

impl CompletionPoll {
    pub fn new(segment: SegmentName, instance: InstanceId, offset: Offset) -> CompletionPoll {
        CompletionPoll {
            segment,
            instance,
            offset,
            commit_upload_done: false,
        }
    }
}

/// Controller instruction to a polling replica. The variants are exactly the
/// instruction set listed in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletionInstruction {
    /// Do nothing and poll again later.
    Hold,
    /// Discard local data; fetch the authoritative committed copy.
    Discard,
    /// Consume up to the given offset, then resume polling.
    Catchup { target_offset: Offset },
    /// Offsets match the committed copy exactly: flush locally and load,
    /// no upload needed.
    Keep,
    /// Flush and attempt to commit (upload). On failure resume polling.
    Commit,
    /// This controller is not the leader; look up the leader and re-poll.
    NotLeader,
}

impl CompletionInstruction {
    pub fn name(&self) -> &'static str {
        match self {
            CompletionInstruction::Hold => "HOLD",
            CompletionInstruction::Discard => "DISCARD",
            CompletionInstruction::Catchup { .. } => "CATCHUP",
            CompletionInstruction::Keep => "KEEP",
            CompletionInstruction::Commit => "COMMIT",
            CompletionInstruction::NotLeader => "NOTLEADER",
        }
    }
}

/// Outcome a server reports after attempting a commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    Success,
    Failure,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_names_match_paper() {
        assert_eq!(CompletionInstruction::Hold.name(), "HOLD");
        assert_eq!(CompletionInstruction::Discard.name(), "DISCARD");
        assert_eq!(
            CompletionInstruction::Catchup { target_offset: 5 }.name(),
            "CATCHUP"
        );
        assert_eq!(CompletionInstruction::Keep.name(), "KEEP");
        assert_eq!(CompletionInstruction::Commit.name(), "COMMIT");
        assert_eq!(CompletionInstruction::NotLeader.name(), "NOTLEADER");
    }

    #[test]
    fn poll_constructor_defaults() {
        let p = CompletionPoll::new(
            SegmentName::realtime("t_REALTIME", 0, 1),
            InstanceId::server(1),
            100,
        );
        assert!(!p.commit_upload_done);
        assert_eq!(p.offset, 100);
    }
}
