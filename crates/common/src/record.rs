//! Records: rows flowing through ingestion.

use crate::error::{PinotError, Result};
use crate::schema::Schema;
use crate::value::Value;

/// One row, positionally aligned with a [`Schema`]'s columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    pub fn new(values: Vec<Value>) -> Record {
        Record { values }
    }

    /// Build a record from `(column, value)` pairs, filling unmentioned
    /// columns with their schema defaults. Unknown columns are an error.
    pub fn from_pairs(schema: &Schema, pairs: &[(&str, Value)]) -> Result<Record> {
        let mut values: Vec<Value> = schema
            .fields()
            .iter()
            .map(|f| f.default_value.clone())
            .collect();
        for (name, v) in pairs {
            let idx = schema
                .column_index(name)
                .ok_or_else(|| PinotError::Schema(format!("unknown column {name}")))?;
            schema.fields()[idx].validate(v)?;
            values[idx] = v.clone();
        }
        Ok(Record { values })
    }

    /// Validate against a schema and replace nulls with column defaults.
    pub fn normalize(mut self, schema: &Schema) -> Result<Record> {
        if self.values.len() != schema.num_columns() {
            return Err(PinotError::Schema(format!(
                "record has {} values, schema has {} columns",
                self.values.len(),
                schema.num_columns()
            )));
        }
        for (v, f) in self.values.iter_mut().zip(schema.fields()) {
            f.validate(v)?;
            if v.is_null() {
                *v = f.default_value.clone();
            }
        }
        Ok(self)
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl From<Vec<Value>> for Record {
    fn from(values: Vec<Value>) -> Self {
        Record { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, FieldSpec, TimeUnit};

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                FieldSpec::dimension("d", DataType::String),
                FieldSpec::metric("m", DataType::Long),
                FieldSpec::time("ts", DataType::Long, TimeUnit::Hours),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_pairs_fills_defaults() {
        let s = schema();
        let r = Record::from_pairs(&s, &[("d", Value::String("x".into()))]).unwrap();
        assert_eq!(r.get(0), Some(&Value::String("x".into())));
        assert_eq!(r.get(1), Some(&Value::Long(0))); // metric default
    }

    #[test]
    fn from_pairs_rejects_unknown_column() {
        let s = schema();
        assert!(Record::from_pairs(&s, &[("nope", Value::Int(1))]).is_err());
    }

    #[test]
    fn normalize_replaces_nulls_and_checks_arity() {
        let s = schema();
        let r = Record::new(vec![Value::Null, Value::Long(4), Value::Long(10)])
            .normalize(&s)
            .unwrap();
        assert_eq!(r.get(0), Some(&Value::String("null".into())));

        let bad = Record::new(vec![Value::Long(4)]).normalize(&s);
        assert!(bad.is_err());
    }

    #[test]
    fn normalize_rejects_type_mismatch() {
        let s = schema();
        let bad = Record::new(vec![
            Value::Int(1), // should be string
            Value::Long(4),
            Value::Long(10),
        ])
        .normalize(&s);
        assert!(bad.is_err());
    }
}
