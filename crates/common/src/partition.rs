//! The shared partition function.
//!
//! Pinot ships a partition function that matches the stream's partitioner so
//! offline data can be partitioned the same way as realtime data (§4.4).
//! Producers (the stream substrate), segment builders (offline pushes), and
//! brokers (partition-aware routing) must all agree on this function, so it
//! lives here in the shared crate.

use crate::value::Value;

/// Stable 64-bit FNV-1a hash of a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Hash a partition-key value to a stable 64-bit code.
///
/// Integers hash by their 8-byte little-endian form so that `Int(5)` and
/// `Long(5)` land in the same partition; strings hash by UTF-8 bytes.
pub fn hash_value(v: &Value) -> u64 {
    match v {
        Value::Int(x) => fnv1a(&(*x as i64).to_le_bytes()),
        Value::Long(x) => fnv1a(&x.to_le_bytes()),
        Value::Boolean(b) => fnv1a(&[*b as u8]),
        Value::String(s) => fnv1a(s.as_bytes()),
        Value::Float(x) => fnv1a(&(*x as f64).to_bits().to_le_bytes()),
        Value::Double(x) => fnv1a(&x.to_bits().to_le_bytes()),
        // Multi-value and null keys are unusual; hash a stable rendering.
        other => fnv1a(other.to_string().as_bytes()),
    }
}

/// The partition a key belongs to, for a topic/table with `num_partitions`.
pub fn partition_for_value(v: &Value, num_partitions: u32) -> u32 {
    assert!(num_partitions > 0, "num_partitions must be >= 1");
    (hash_value(v) % num_partitions as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        for n in [1u32, 2, 8, 16] {
            for i in 0..100i64 {
                let p = partition_for_value(&Value::Long(i), n);
                assert!(p < n);
                assert_eq!(p, partition_for_value(&Value::Long(i), n));
            }
        }
    }

    #[test]
    fn int_and_long_agree() {
        for i in [-5i32, 0, 7, 1000] {
            assert_eq!(
                partition_for_value(&Value::Int(i), 16),
                partition_for_value(&Value::Long(i as i64), 16)
            );
        }
    }

    #[test]
    fn spreads_keys_reasonably() {
        let n = 8u32;
        let mut counts = vec![0usize; n as usize];
        for i in 0..10_000i64 {
            counts[partition_for_value(&Value::Long(i), n) as usize] += 1;
        }
        // Each partition should get 1250 ± 25%.
        for c in counts {
            assert!(c > 900 && c < 1600, "unbalanced: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "num_partitions")]
    fn zero_partitions_panics() {
        partition_for_value(&Value::Long(1), 0);
    }
}
