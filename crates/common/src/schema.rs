//! Table schemas.
//!
//! A Pinot table has a fixed schema of typed columns; each column is either a
//! *dimension*, a *metric*, or the special *time column* used for hybrid
//! offline/realtime merging and retention (§3.1 of the paper).

use crate::error::{PinotError, Result};
use crate::value::Value;

/// Scalar column types supported by the paper's data model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Long,
    Float,
    Double,
    String,
    Boolean,
}

impl DataType {
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Long => "LONG",
            DataType::Float => "FLOAT",
            DataType::Double => "DOUBLE",
            DataType::String => "STRING",
            DataType::Boolean => "BOOLEAN",
        }
    }

    pub fn parse(s: &str) -> Result<DataType> {
        match s {
            "INT" => Ok(DataType::Int),
            "LONG" => Ok(DataType::Long),
            "FLOAT" => Ok(DataType::Float),
            "DOUBLE" => Ok(DataType::Double),
            "STRING" => Ok(DataType::String),
            "BOOLEAN" => Ok(DataType::Boolean),
            other => Err(PinotError::Schema(format!("unknown data type {other:?}"))),
        }
    }

    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            DataType::Int | DataType::Long | DataType::Float | DataType::Double
        )
    }
}

/// Role of a column within the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldRole {
    Dimension,
    Metric,
    /// The special timestamp dimension column (at most one per schema).
    Time,
}

/// Time granularity of the time column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeUnit {
    Millis,
    Seconds,
    Minutes,
    Hours,
    Days,
}

impl TimeUnit {
    /// Milliseconds in one unit.
    pub fn millis(&self) -> i64 {
        match self {
            TimeUnit::Millis => 1,
            TimeUnit::Seconds => 1_000,
            TimeUnit::Minutes => 60_000,
            TimeUnit::Hours => 3_600_000,
            TimeUnit::Days => 86_400_000,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            TimeUnit::Millis => "MILLIS",
            TimeUnit::Seconds => "SECONDS",
            TimeUnit::Minutes => "MINUTES",
            TimeUnit::Hours => "HOURS",
            TimeUnit::Days => "DAYS",
        }
    }

    pub fn parse(s: &str) -> Result<TimeUnit> {
        match s {
            "MILLIS" => Ok(TimeUnit::Millis),
            "SECONDS" => Ok(TimeUnit::Seconds),
            "MINUTES" => Ok(TimeUnit::Minutes),
            "HOURS" => Ok(TimeUnit::Hours),
            "DAYS" => Ok(TimeUnit::Days),
            other => Err(PinotError::Schema(format!("unknown time unit {other:?}"))),
        }
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSpec {
    pub name: String,
    pub data_type: DataType,
    pub role: FieldRole,
    /// Single-value vs multi-value (array) column.
    pub single_value: bool,
    /// Granularity, only meaningful for the time column.
    pub time_unit: Option<TimeUnit>,
    /// Value used to fill nulls and back-fill newly added columns.
    pub default_value: Value,
}

impl FieldSpec {
    pub fn dimension(name: impl Into<String>, data_type: DataType) -> FieldSpec {
        let name = name.into();
        FieldSpec {
            default_value: Value::default_for(data_type, true),
            name,
            data_type,
            role: FieldRole::Dimension,
            single_value: true,
            time_unit: None,
        }
    }

    pub fn multi_value_dimension(name: impl Into<String>, data_type: DataType) -> FieldSpec {
        let name = name.into();
        FieldSpec {
            default_value: Value::default_for(data_type, false),
            name,
            data_type,
            role: FieldRole::Dimension,
            single_value: false,
            time_unit: None,
        }
    }

    pub fn metric(name: impl Into<String>, data_type: DataType) -> FieldSpec {
        let name = name.into();
        FieldSpec {
            default_value: match data_type {
                DataType::Int => Value::Int(0),
                DataType::Long => Value::Long(0),
                DataType::Float => Value::Float(0.0),
                DataType::Double => Value::Double(0.0),
                DataType::Boolean => Value::Boolean(false),
                DataType::String => Value::String(String::new()),
            },
            name,
            data_type,
            role: FieldRole::Metric,
            single_value: true,
            time_unit: None,
        }
    }

    pub fn time(name: impl Into<String>, data_type: DataType, unit: TimeUnit) -> FieldSpec {
        let name = name.into();
        FieldSpec {
            default_value: Value::default_for(data_type, true),
            name,
            data_type,
            role: FieldRole::Time,
            single_value: true,
            time_unit: Some(unit),
        }
    }

    /// Replace the default value (builder style).
    pub fn with_default(mut self, v: Value) -> FieldSpec {
        self.default_value = v;
        self
    }

    /// Validate a cell against this spec. Nulls are allowed (they are
    /// replaced by the default at ingest).
    pub fn validate(&self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        if v.is_multi_value() && self.single_value {
            return Err(PinotError::Schema(format!(
                "column {} is single-value but got an array",
                self.name
            )));
        }
        match v.data_type() {
            Some(dt) if dt == self.data_type => Ok(()),
            // Allow widening INT -> LONG and FLOAT -> DOUBLE on ingest.
            Some(DataType::Int) if self.data_type == DataType::Long => Ok(()),
            Some(DataType::Float) if self.data_type == DataType::Double => Ok(()),
            Some(dt) => Err(PinotError::Schema(format!(
                "column {} expects {} but got {}",
                self.name,
                self.data_type.name(),
                dt.name()
            ))),
            None => Ok(()),
        }
    }
}

/// A table schema: an ordered list of uniquely named columns with at most one
/// time column.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    name: String,
    fields: Vec<FieldSpec>,
}

impl Schema {
    pub fn new(name: impl Into<String>, fields: Vec<FieldSpec>) -> Result<Schema> {
        let name = name.into();
        let mut seen = std::collections::HashSet::new();
        let mut time_cols = 0usize;
        for f in &fields {
            if !seen.insert(f.name.clone()) {
                return Err(PinotError::Schema(format!("duplicate column {}", f.name)));
            }
            if f.role == FieldRole::Time {
                time_cols += 1;
                if !f.data_type.is_numeric() {
                    return Err(PinotError::Schema(format!(
                        "time column {} must be numeric",
                        f.name
                    )));
                }
                if f.time_unit.is_none() {
                    return Err(PinotError::Schema(format!(
                        "time column {} needs a time unit",
                        f.name
                    )));
                }
            }
            if f.role == FieldRole::Metric && !f.single_value {
                return Err(PinotError::Schema(format!(
                    "metric column {} cannot be multi-value",
                    f.name
                )));
            }
        }
        if time_cols > 1 {
            return Err(PinotError::Schema("more than one time column".into()));
        }
        if fields.is_empty() {
            return Err(PinotError::Schema("schema has no columns".into()));
        }
        Ok(Schema { name, fields })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    pub fn num_columns(&self) -> usize {
        self.fields.len()
    }

    pub fn field(&self, name: &str) -> Option<&FieldSpec> {
        self.fields.iter().find(|f| f.name == name)
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    pub fn time_column(&self) -> Option<&FieldSpec> {
        self.fields.iter().find(|f| f.role == FieldRole::Time)
    }

    pub fn dimensions(&self) -> impl Iterator<Item = &FieldSpec> {
        self.fields
            .iter()
            .filter(|f| matches!(f.role, FieldRole::Dimension | FieldRole::Time))
    }

    pub fn metrics(&self) -> impl Iterator<Item = &FieldSpec> {
        self.fields.iter().filter(|f| f.role == FieldRole::Metric)
    }

    /// Evolve the schema by appending a new column (Pinot supports adding
    /// columns on the fly without downtime; existing segments expose the
    /// default value, §5.2). Fails on duplicates or a second time column.
    pub fn with_added_column(&self, field: FieldSpec) -> Result<Schema> {
        let mut fields = self.fields.clone();
        fields.push(field);
        Schema::new(self.name.clone(), fields)
    }

    /// JSON rendering for metastore storage.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj(vec![
            ("name", self.name.as_str().into()),
            (
                "fields",
                Json::Arr(
                    self.fields
                        .iter()
                        .map(|f| {
                            let mut pairs: Vec<(&str, Json)> = vec![
                                ("name", f.name.as_str().into()),
                                ("type", f.data_type.name().into()),
                                (
                                    "role",
                                    match f.role {
                                        FieldRole::Dimension => "DIMENSION",
                                        FieldRole::Metric => "METRIC",
                                        FieldRole::Time => "TIME",
                                    }
                                    .into(),
                                ),
                                ("singleValue", f.single_value.into()),
                            ];
                            if let Some(u) = f.time_unit {
                                pairs.push(("timeUnit", u.name().into()));
                            }
                            Json::obj(pairs)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse the JSON produced by [`Schema::to_json`]. Default values are
    /// re-derived from the field type and role.
    pub fn from_json(j: &crate::json::Json) -> Result<Schema> {
        use crate::json::Json;
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| PinotError::Schema("schema JSON missing name".into()))?;
        let fields_json = j
            .get("fields")
            .and_then(Json::as_arr)
            .ok_or_else(|| PinotError::Schema("schema JSON missing fields".into()))?;
        let mut fields = Vec::with_capacity(fields_json.len());
        for fj in fields_json {
            let fname = fj
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| PinotError::Schema("field missing name".into()))?;
            let dt = DataType::parse(
                fj.get("type")
                    .and_then(Json::as_str)
                    .ok_or_else(|| PinotError::Schema("field missing type".into()))?,
            )?;
            let single_value = fj
                .get("singleValue")
                .and_then(Json::as_bool)
                .unwrap_or(true);
            let role = fj.get("role").and_then(Json::as_str).unwrap_or("DIMENSION");
            let spec = match role {
                "METRIC" => FieldSpec::metric(fname, dt),
                "TIME" => {
                    let unit =
                        TimeUnit::parse(fj.get("timeUnit").and_then(Json::as_str).ok_or_else(
                            || PinotError::Schema("time field missing unit".into()),
                        )?)?;
                    FieldSpec::time(fname, dt, unit)
                }
                _ if single_value => FieldSpec::dimension(fname, dt),
                _ => FieldSpec::multi_value_dimension(fname, dt),
            };
            fields.push(spec);
        }
        Schema::new(name, fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(
            "events",
            vec![
                FieldSpec::dimension("country", DataType::String),
                FieldSpec::dimension("browser", DataType::String),
                FieldSpec::metric("impressions", DataType::Long),
                FieldSpec::time("day", DataType::Long, TimeUnit::Days),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lookup_and_roles() {
        let s = sample();
        assert_eq!(s.num_columns(), 4);
        assert_eq!(s.column_index("browser"), Some(1));
        assert_eq!(s.time_column().unwrap().name, "day");
        assert_eq!(s.dimensions().count(), 3); // includes time column
        assert_eq!(s.metrics().count(), 1);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(
            "t",
            vec![
                FieldSpec::dimension("a", DataType::Int),
                FieldSpec::dimension("a", DataType::Long),
            ],
        )
        .unwrap_err();
        assert_eq!(err.kind(), "schema");
    }

    #[test]
    fn two_time_columns_rejected() {
        let err = Schema::new(
            "t",
            vec![
                FieldSpec::time("t1", DataType::Long, TimeUnit::Days),
                FieldSpec::time("t2", DataType::Long, TimeUnit::Days),
            ],
        )
        .unwrap_err();
        assert_eq!(err.kind(), "schema");
    }

    #[test]
    fn non_numeric_time_rejected() {
        assert!(Schema::new(
            "t",
            vec![FieldSpec::time("ts", DataType::String, TimeUnit::Days)]
        )
        .is_err());
    }

    #[test]
    fn multivalue_metric_rejected() {
        let mut f = FieldSpec::metric("m", DataType::Long);
        f.single_value = false;
        assert!(Schema::new("t", vec![f]).is_err());
    }

    #[test]
    fn validate_cells() {
        let s = sample();
        let country = s.field("country").unwrap();
        assert!(country.validate(&Value::String("us".into())).is_ok());
        assert!(country.validate(&Value::Int(3)).is_err());
        assert!(country.validate(&Value::Null).is_ok());
        let imps = s.field("impressions").unwrap();
        assert!(imps.validate(&Value::Int(5)).is_ok()); // widening
        assert!(imps.validate(&Value::Double(5.0)).is_err());
    }

    #[test]
    fn schema_evolution_adds_column() {
        let s = sample();
        let s2 = s
            .with_added_column(FieldSpec::dimension("region", DataType::String))
            .unwrap();
        assert_eq!(s2.num_columns(), 5);
        assert!(s2
            .with_added_column(FieldSpec::dimension("region", DataType::String))
            .is_err());
    }

    #[test]
    fn data_type_parse_round_trip() {
        for dt in [
            DataType::Int,
            DataType::Long,
            DataType::Float,
            DataType::Double,
            DataType::String,
            DataType::Boolean,
        ] {
            assert_eq!(DataType::parse(dt.name()).unwrap(), dt);
        }
        assert!(DataType::parse("BLOB").is_err());
    }

    #[test]
    fn schema_json_round_trip() {
        let s = Schema::new(
            "events",
            vec![
                FieldSpec::dimension("country", DataType::String),
                FieldSpec::multi_value_dimension("tags", DataType::String),
                FieldSpec::metric("impressions", DataType::Long),
                FieldSpec::time("day", DataType::Long, TimeUnit::Days),
            ],
        )
        .unwrap();
        let back = Schema::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // And through text.
        let text = s.to_json().emit();
        let back2 = Schema::from_json(&crate::json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back2, s);
    }

    #[test]
    fn schema_from_json_rejects_garbage() {
        use crate::json::Json;
        assert!(Schema::from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(Schema::from_json(
            &Json::parse(r#"{"name":"t","fields":[{"name":"a"}]}"#).unwrap()
        )
        .is_err());
    }

    #[test]
    fn time_unit_millis() {
        assert_eq!(TimeUnit::Days.millis(), 86_400_000);
        assert_eq!(TimeUnit::Seconds.millis(), 1_000);
        assert_eq!(TimeUnit::parse("HOURS").unwrap(), TimeUnit::Hours);
    }
}
