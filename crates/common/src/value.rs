//! Typed cell values.
//!
//! Pinot supports integers of various lengths, floating point numbers,
//! strings and booleans, plus arrays of those (multi-value columns). A
//! [`Value`] is one cell of a record.

use crate::schema::DataType;
use std::cmp::Ordering;
use std::fmt;

/// One cell of a record: a single value or a multi-value array.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
    String(String),
    Boolean(bool),
    /// Multi-value column cell. All elements must share one scalar type.
    IntArray(Vec<i32>),
    LongArray(Vec<i64>),
    StringArray(Vec<String>),
    /// Explicit null; columns fill nulls with the field default at ingest.
    Null,
}

impl Value {
    /// The declared data type this value conforms to, if unambiguous.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) | Value::IntArray(_) => Some(DataType::Int),
            Value::Long(_) | Value::LongArray(_) => Some(DataType::Long),
            Value::Float(_) => Some(DataType::Float),
            Value::Double(_) => Some(DataType::Double),
            Value::String(_) | Value::StringArray(_) => Some(DataType::String),
            Value::Boolean(_) => Some(DataType::Boolean),
            Value::Null => None,
        }
    }

    /// True when the cell holds a multi-value array.
    pub fn is_multi_value(&self) -> bool {
        matches!(
            self,
            Value::IntArray(_) | Value::LongArray(_) | Value::StringArray(_)
        )
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by aggregation functions. Booleans count as 0/1 so
    /// `SUM(clicked)` works on boolean metrics; strings are not numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Long(v) => Some(*v as f64),
            Value::Float(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            Value::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view; floats are rejected rather than truncated so callers
    /// cannot silently lose precision when filling a LONG column.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v as i64),
            Value::Long(v) => Some(*v),
            Value::Boolean(b) => Some(if *b { 1 } else { 0 }),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Scalar elements of the cell: one element for single values, each
    /// array element for multi-value cells, nothing for null. Used when
    /// building dictionaries and inverted indexes, where a multi-value row
    /// contributes one posting per element.
    pub fn elements(&self) -> Vec<Value> {
        match self {
            Value::IntArray(xs) => xs.iter().copied().map(Value::Int).collect(),
            Value::LongArray(xs) => xs.iter().copied().map(Value::Long).collect(),
            Value::StringArray(xs) => xs.iter().cloned().map(Value::String).collect(),
            Value::Null => Vec::new(),
            other => vec![other.clone()],
        }
    }

    /// Total order used for dictionary sorting and ORDER BY semantics.
    ///
    /// Values of different types order by type tag; NaN sorts greater than
    /// every number so ordering stays total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Boolean(_) => 1,
                Value::Int(_) | Value::Long(_) | Value::Float(_) | Value::Double(_) => 2,
                Value::String(_) => 3,
                Value::IntArray(_) | Value::LongArray(_) | Value::StringArray(_) => 4,
            }
        }
        match (self, other) {
            (Value::Boolean(a), Value::Boolean(b)) => a.cmp(b),
            (Value::String(a), Value::String(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Long(a), Value::Long(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let (x, y) = (
                    a.as_f64().unwrap_or(f64::NAN),
                    b.as_f64().unwrap_or(f64::NAN),
                );
                x.total_cmp(&y)
            }
            (Value::IntArray(a), Value::IntArray(b)) => a.cmp(b),
            (Value::LongArray(a), Value::LongArray(b)) => a.cmp(b),
            (Value::StringArray(a), Value::StringArray(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// The per-type default used to fill nulls and newly added columns
    /// (Pinot adds new schema columns with a default value, §5.2).
    pub fn default_for(dt: DataType, single_value: bool) -> Value {
        if single_value {
            match dt {
                DataType::Int => Value::Int(i32::MIN),
                DataType::Long => Value::Long(i64::MIN),
                DataType::Float => Value::Float(f32::NEG_INFINITY),
                DataType::Double => Value::Double(f64::NEG_INFINITY),
                DataType::String => Value::String("null".to_string()),
                DataType::Boolean => Value::Boolean(false),
            }
        } else {
            match dt {
                DataType::Int => Value::IntArray(vec![i32::MIN]),
                DataType::Long => Value::LongArray(vec![i64::MIN]),
                DataType::String => Value::StringArray(vec!["null".to_string()]),
                // Float/double/boolean multi-value are not supported by the
                // paper's data model; map them to the closest scalar default.
                DataType::Float => Value::Float(f32::NEG_INFINITY),
                DataType::Double => Value::Double(f64::NEG_INFINITY),
                DataType::Boolean => Value::Boolean(false),
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join<T: fmt::Display>(f: &mut fmt::Formatter<'_>, xs: &[T]) -> fmt::Result {
            write!(f, "[")?;
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{x}")?;
            }
            write!(f, "]")
        }
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::String(s) => write!(f, "{s}"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::IntArray(xs) => join(f, xs),
            Value::LongArray(xs) => join(f, xs),
            Value::StringArray(xs) => join(f, xs),
            Value::Null => write!(f, "null"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Long(-5).as_i64(), Some(-5));
        assert_eq!(Value::Boolean(true).as_i64(), Some(1));
        assert_eq!(Value::Double(1.5).as_i64(), None);
        assert_eq!(Value::String("x".into()).as_f64(), None);
    }

    #[test]
    fn elements_of_multivalue() {
        let v = Value::IntArray(vec![1, 2, 3]);
        assert_eq!(
            v.elements(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        assert_eq!(Value::Null.elements(), Vec::<Value>::new());
        assert_eq!(Value::Long(7).elements(), vec![Value::Long(7)]);
    }

    #[test]
    fn total_order_is_total_across_types() {
        let vals = [
            Value::Null,
            Value::Boolean(false),
            Value::Int(1),
            Value::Double(2.5),
            Value::String("a".into()),
            Value::IntArray(vec![1]),
        ];
        for a in &vals {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn nan_orders_greater_than_numbers() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(Value::Double(1e300).total_cmp(&nan), Ordering::Less);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).total_cmp(&Value::Double(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            Value::Long(3).total_cmp(&Value::Float(2.5)),
            Ordering::Greater
        );
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::IntArray(vec![1, 2]).to_string(), "[1,2]");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn defaults_match_types() {
        assert_eq!(
            Value::default_for(DataType::Int, true).data_type(),
            Some(DataType::Int)
        );
        assert!(Value::default_for(DataType::String, false).is_multi_value());
    }
}
