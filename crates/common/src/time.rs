//! Time helpers: wall clock abstraction and hybrid time-boundary math.

use crate::schema::TimeUnit;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Milliseconds since the UNIX epoch.
pub fn now_millis() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0)
}

/// A clock that components read instead of the system clock, so tests and
/// simulations can advance time deterministically.
#[derive(Clone)]
pub struct Clock {
    // None = wall clock; Some = manual clock value in millis.
    manual: Option<Arc<AtomicI64>>,
}

impl Clock {
    /// Wall-clock backed clock.
    pub fn system() -> Clock {
        Clock { manual: None }
    }

    /// Manually advanced clock starting at `start_millis`.
    pub fn manual(start_millis: i64) -> Clock {
        Clock {
            manual: Some(Arc::new(AtomicI64::new(start_millis))),
        }
    }

    pub fn now_millis(&self) -> i64 {
        match &self.manual {
            Some(v) => v.load(Ordering::SeqCst),
            None => now_millis(),
        }
    }

    /// Advance a manual clock; no-op (and false) for the system clock.
    pub fn advance(&self, millis: i64) -> bool {
        match &self.manual {
            Some(v) => {
                v.fetch_add(millis, Ordering::SeqCst);
                true
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.manual {
            Some(v) => write!(f, "Clock::manual({})", v.load(Ordering::SeqCst)),
            None => write!(f, "Clock::system"),
        }
    }
}

/// Compute the hybrid-table time boundary (§3.3.3, Fig 6).
///
/// Offline data is authoritative strictly *before* the boundary; realtime
/// answers at or after it. Pinot uses `maxOfflineTime - 1 unit` when offline
/// segments end mid-window, rounded to the table's push granularity. We
/// reproduce the simple rule: boundary = max offline time value, so offline
/// serves `time < boundary` and realtime serves `time >= boundary`.
pub fn hybrid_time_boundary(max_offline_time: i64, _unit: TimeUnit) -> i64 {
    max_offline_time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = Clock::manual(1_000);
        assert_eq!(c.now_millis(), 1_000);
        assert!(c.advance(500));
        assert_eq!(c.now_millis(), 1_500);
    }

    #[test]
    fn manual_clock_shared_between_clones() {
        let c = Clock::manual(0);
        let c2 = c.clone();
        c.advance(42);
        assert_eq!(c2.now_millis(), 42);
    }

    #[test]
    fn system_clock_monotonic_enough() {
        let c = Clock::system();
        let a = c.now_millis();
        assert!(!c.advance(10));
        let b = c.now_millis();
        assert!(b >= a);
        assert!(a > 1_600_000_000_000); // sanity: after 2020
    }

    #[test]
    fn boundary_is_max_offline_time() {
        assert_eq!(hybrid_time_boundary(17_000, TimeUnit::Days), 17_000);
    }
}
