//! Table configuration.
//!
//! Table configs are the operator-facing knobs the paper describes: table
//! type (offline/realtime/hybrid), replication, retention, indexing choices
//! (inverted columns, sorted column, star-tree), stream ingestion settings,
//! routing strategy, tenant, and storage quota. Configs serialize to JSON
//! for metastore storage (§5.2 keeps them in source control).

use crate::error::{PinotError, Result};
use crate::ids::TableType;
use crate::json::Json;
use crate::schema::TimeUnit;

/// How brokers build routing tables for a table (§4.4).
#[derive(Debug, Clone, PartialEq)]
pub enum RoutingStrategy {
    /// Spread all segments evenly over all servers; every query touches
    /// every server hosting the table. Good for small/medium clusters.
    Balanced,
    /// Large-cluster routing (Algorithms 1 and 2): bound the number of
    /// servers per query to `target_servers`, pre-generating
    /// `routing_table_count` tables out of `generation_count` candidates.
    LargeCluster {
        target_servers: usize,
        routing_table_count: usize,
        generation_count: usize,
    },
    /// Partition-aware routing: route only to servers whose segments can
    /// match the query's partition-column equality filter.
    Partitioned { column: String, num_partitions: u32 },
}

impl RoutingStrategy {
    fn to_json(&self) -> Json {
        match self {
            RoutingStrategy::Balanced => Json::obj(vec![("type", "balanced".into())]),
            RoutingStrategy::LargeCluster {
                target_servers,
                routing_table_count,
                generation_count,
            } => Json::obj(vec![
                ("type", "largeCluster".into()),
                ("targetServers", (*target_servers).into()),
                ("routingTableCount", (*routing_table_count).into()),
                ("generationCount", (*generation_count).into()),
            ]),
            RoutingStrategy::Partitioned {
                column,
                num_partitions,
            } => Json::obj(vec![
                ("type", "partitioned".into()),
                ("column", column.as_str().into()),
                ("numPartitions", (*num_partitions as i64).into()),
            ]),
        }
    }

    fn from_json(j: &Json) -> Result<RoutingStrategy> {
        let ty = j
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| PinotError::Metadata("routing strategy missing type".into()))?;
        match ty {
            "balanced" => Ok(RoutingStrategy::Balanced),
            "largeCluster" => Ok(RoutingStrategy::LargeCluster {
                target_servers: req_u64(j, "targetServers")? as usize,
                routing_table_count: req_u64(j, "routingTableCount")? as usize,
                generation_count: req_u64(j, "generationCount")? as usize,
            }),
            "partitioned" => Ok(RoutingStrategy::Partitioned {
                column: req_str(j, "column")?,
                num_partitions: req_u64(j, "numPartitions")? as u32,
            }),
            other => Err(PinotError::Metadata(format!(
                "unknown routing strategy {other:?}"
            ))),
        }
    }
}

/// Star-tree index settings (§4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct StarTreeConfig {
    /// Dimension split order, most selective first. Empty = use all
    /// dimensions ordered by descending cardinality.
    pub dimensions: Vec<String>,
    /// Metrics preaggregated in tree nodes (empty = all metrics).
    pub metrics: Vec<String>,
    /// Stop splitting when a node covers at most this many raw records.
    pub max_leaf_records: usize,
    /// Dimensions excluded from star-node generation (always drilled into).
    pub skip_star_dimensions: Vec<String>,
}

impl Default for StarTreeConfig {
    fn default() -> Self {
        StarTreeConfig {
            dimensions: Vec::new(),
            metrics: Vec::new(),
            max_leaf_records: 1_000,
            skip_star_dimensions: Vec::new(),
        }
    }
}

/// Index-related settings for a table (§4.2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexingConfig {
    /// Columns with bitmap inverted indexes.
    pub inverted_index_columns: Vec<String>,
    /// Physical sort column; segments store records ordered by it and keep
    /// a (start, end) range per value instead of a bitmap.
    pub sorted_column: Option<String>,
    /// Columns with blocked bloom filters built at seal time, enabling
    /// exact-match segment pruning beyond min/max zone maps.
    pub bloom_filter_columns: Vec<String>,
    /// Optional star-tree for iceberg/aggregation queries.
    pub star_tree: Option<StarTreeConfig>,
}

/// Realtime stream ingestion settings (§3.3.6).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Stream topic to consume.
    pub topic: String,
    /// Flush a consuming segment after this many records...
    pub flush_threshold_rows: usize,
    /// ...or after this much consumption time, whichever comes first.
    pub flush_threshold_millis: i64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            topic: String::new(),
            flush_threshold_rows: 100_000,
            flush_threshold_millis: 6 * 3_600_000,
        }
    }
}

/// Data retention (§3.2): segments wholly older than the window are GC'ed.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionConfig {
    pub unit: TimeUnit,
    pub duration: i64,
}

/// Complete per-table configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TableConfig {
    /// Logical table name (no _OFFLINE/_REALTIME suffix).
    pub name: String,
    pub table_type: TableType,
    /// Replicas per segment.
    pub replication: usize,
    pub tenant: String,
    pub indexing: IndexingConfig,
    pub routing: RoutingStrategy,
    pub retention: Option<RetentionConfig>,
    /// Only for realtime tables.
    pub stream: Option<StreamConfig>,
    /// Storage quota in bytes (controller rejects uploads that exceed it).
    pub quota_bytes: Option<u64>,
}

impl TableConfig {
    pub fn offline(name: impl Into<String>) -> TableConfig {
        TableConfig {
            name: name.into(),
            table_type: TableType::Offline,
            replication: 1,
            tenant: "DefaultTenant".to_string(),
            indexing: IndexingConfig::default(),
            routing: RoutingStrategy::Balanced,
            retention: None,
            stream: None,
            quota_bytes: None,
        }
    }

    pub fn realtime(name: impl Into<String>, stream: StreamConfig) -> TableConfig {
        TableConfig {
            stream: Some(stream),
            table_type: TableType::Realtime,
            ..TableConfig::offline(name)
        }
    }

    pub fn with_replication(mut self, r: usize) -> TableConfig {
        self.replication = r;
        self
    }

    pub fn with_tenant(mut self, t: impl Into<String>) -> TableConfig {
        self.tenant = t.into();
        self
    }

    pub fn with_inverted_indexes(mut self, cols: &[&str]) -> TableConfig {
        self.indexing.inverted_index_columns = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_sorted_column(mut self, col: impl Into<String>) -> TableConfig {
        self.indexing.sorted_column = Some(col.into());
        self
    }

    pub fn with_bloom_filters(mut self, cols: &[&str]) -> TableConfig {
        self.indexing.bloom_filter_columns = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_star_tree(mut self, cfg: StarTreeConfig) -> TableConfig {
        self.indexing.star_tree = Some(cfg);
        self
    }

    pub fn with_routing(mut self, r: RoutingStrategy) -> TableConfig {
        self.routing = r;
        self
    }

    pub fn with_retention(mut self, unit: TimeUnit, duration: i64) -> TableConfig {
        self.retention = Some(RetentionConfig { unit, duration });
        self
    }

    pub fn with_quota_bytes(mut self, q: u64) -> TableConfig {
        self.quota_bytes = Some(q);
        self
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(PinotError::Metadata("table name is empty".into()));
        }
        if self.replication == 0 {
            return Err(PinotError::Metadata("replication must be >= 1".into()));
        }
        if self.table_type == TableType::Realtime && self.stream.is_none() {
            return Err(PinotError::Metadata(
                "realtime table requires a stream config".into(),
            ));
        }
        if let Some(s) = &self.stream {
            if s.flush_threshold_rows == 0 {
                return Err(PinotError::Metadata(
                    "flush_threshold_rows must be >= 1".into(),
                ));
            }
        }
        if let (Some(sorted), inv) = (
            &self.indexing.sorted_column,
            &self.indexing.inverted_index_columns,
        ) {
            if inv.contains(sorted) {
                return Err(PinotError::Metadata(format!(
                    "column {sorted} cannot be both sorted and inverted-indexed"
                )));
            }
        }
        Ok(())
    }

    /// Serialize to the JSON stored in the metastore.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![
            ("name", self.name.as_str().into()),
            ("type", self.table_type.suffix().into()),
            ("replication", self.replication.into()),
            ("tenant", self.tenant.as_str().into()),
            ("routing", self.routing.to_json()),
            (
                "invertedIndexColumns",
                Json::Arr(
                    self.indexing
                        .inverted_index_columns
                        .iter()
                        .map(|c| c.as_str().into())
                        .collect(),
                ),
            ),
        ];
        if let Some(c) = &self.indexing.sorted_column {
            pairs.push(("sortedColumn", c.as_str().into()));
        }
        if !self.indexing.bloom_filter_columns.is_empty() {
            pairs.push((
                "bloomFilterColumns",
                Json::Arr(
                    self.indexing
                        .bloom_filter_columns
                        .iter()
                        .map(|c| c.as_str().into())
                        .collect(),
                ),
            ));
        }
        if let Some(st) = &self.indexing.star_tree {
            pairs.push((
                "starTree",
                Json::obj(vec![
                    (
                        "dimensions",
                        Json::Arr(st.dimensions.iter().map(|c| c.as_str().into()).collect()),
                    ),
                    (
                        "metrics",
                        Json::Arr(st.metrics.iter().map(|c| c.as_str().into()).collect()),
                    ),
                    ("maxLeafRecords", st.max_leaf_records.into()),
                    (
                        "skipStarDimensions",
                        Json::Arr(
                            st.skip_star_dimensions
                                .iter()
                                .map(|c| c.as_str().into())
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(r) = &self.retention {
            pairs.push((
                "retention",
                Json::obj(vec![
                    ("unit", r.unit.name().into()),
                    ("duration", r.duration.into()),
                ]),
            ));
        }
        if let Some(s) = &self.stream {
            pairs.push((
                "stream",
                Json::obj(vec![
                    ("topic", s.topic.as_str().into()),
                    ("flushThresholdRows", s.flush_threshold_rows.into()),
                    ("flushThresholdMillis", s.flush_threshold_millis.into()),
                ]),
            ));
        }
        if let Some(q) = self.quota_bytes {
            pairs.push(("quotaBytes", q.into()));
        }
        Json::obj(pairs)
    }

    pub fn from_json(j: &Json) -> Result<TableConfig> {
        let name = req_str(j, "name")?;
        let table_type = match j.get("type").and_then(Json::as_str) {
            Some("OFFLINE") => TableType::Offline,
            Some("REALTIME") => TableType::Realtime,
            other => return Err(PinotError::Metadata(format!("bad table type {other:?}"))),
        };
        let replication = req_u64(j, "replication")? as usize;
        let tenant = req_str(j, "tenant")?;
        let routing = RoutingStrategy::from_json(
            j.get("routing")
                .ok_or_else(|| PinotError::Metadata("missing routing".into()))?,
        )?;
        let inverted_index_columns = j
            .get("invertedIndexColumns")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        let sorted_column = j
            .get("sortedColumn")
            .and_then(Json::as_str)
            .map(str::to_string);
        let star_tree = match j.get("starTree") {
            None => None,
            Some(st) => Some(StarTreeConfig {
                dimensions: str_arr(st, "dimensions"),
                metrics: str_arr(st, "metrics"),
                max_leaf_records: req_u64(st, "maxLeafRecords")? as usize,
                skip_star_dimensions: str_arr(st, "skipStarDimensions"),
            }),
        };
        let retention = match j.get("retention") {
            None => None,
            Some(r) => Some(RetentionConfig {
                unit: TimeUnit::parse(&req_str(r, "unit")?)?,
                duration: req_u64(r, "duration")? as i64,
            }),
        };
        let stream = match j.get("stream") {
            None => None,
            Some(s) => Some(StreamConfig {
                topic: req_str(s, "topic")?,
                flush_threshold_rows: req_u64(s, "flushThresholdRows")? as usize,
                flush_threshold_millis: req_u64(s, "flushThresholdMillis")? as i64,
            }),
        };
        let quota_bytes = j.get("quotaBytes").and_then(Json::as_i64).map(|v| v as u64);
        let cfg = TableConfig {
            name,
            table_type,
            replication,
            tenant,
            indexing: IndexingConfig {
                inverted_index_columns,
                sorted_column,
                bloom_filter_columns: str_arr(j, "bloomFilterColumns"),
                star_tree,
            },
            routing,
            retention,
            stream,
            quota_bytes,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

fn req_str(j: &Json, key: &str) -> Result<String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| PinotError::Metadata(format!("missing string field {key:?}")))
}

fn req_u64(j: &Json, key: &str) -> Result<u64> {
    j.get(key)
        .and_then(Json::as_i64)
        .filter(|v| *v >= 0)
        .map(|v| v as u64)
        .ok_or_else(|| PinotError::Metadata(format!("missing numeric field {key:?}")))
}

fn str_arr(j: &Json, key: &str) -> Vec<String> {
    j.get(key)
        .and_then(Json::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_config() -> TableConfig {
        TableConfig::realtime(
            "feed",
            StreamConfig {
                topic: "feed-events".into(),
                flush_threshold_rows: 500,
                flush_threshold_millis: 60_000,
            },
        )
        .with_replication(3)
        .with_tenant("feedTenant")
        .with_inverted_indexes(&["country", "browser"])
        .with_sorted_column("viewee_id")
        .with_bloom_filters(&["country"])
        .with_star_tree(StarTreeConfig {
            dimensions: vec!["country".into()],
            metrics: vec!["clicks".into()],
            max_leaf_records: 100,
            skip_star_dimensions: vec!["browser".into()],
        })
        .with_routing(RoutingStrategy::Partitioned {
            column: "viewee_id".into(),
            num_partitions: 8,
        })
        .with_retention(TimeUnit::Days, 30)
        .with_quota_bytes(1 << 30)
    }

    #[test]
    fn json_round_trip_full() {
        let cfg = full_config();
        let j = cfg.to_json();
        let back = TableConfig::from_json(&j).unwrap();
        assert_eq!(back, cfg);
        // And through text.
        let text = j.emit();
        let back2 = TableConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back2, cfg);
    }

    #[test]
    fn json_round_trip_minimal() {
        let cfg = TableConfig::offline("wvmp");
        let back = TableConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        assert!(TableConfig::offline("").validate().is_err());
        assert!(TableConfig::offline("t")
            .with_replication(0)
            .validate()
            .is_err());
        let mut rt = TableConfig::offline("t");
        rt.table_type = TableType::Realtime;
        assert!(rt.validate().is_err()); // realtime without stream

        let conflict = TableConfig::offline("t")
            .with_sorted_column("a")
            .with_inverted_indexes(&["a"]);
        assert!(conflict.validate().is_err());
    }

    #[test]
    fn routing_strategy_round_trips() {
        for r in [
            RoutingStrategy::Balanced,
            RoutingStrategy::LargeCluster {
                target_servers: 4,
                routing_table_count: 10,
                generation_count: 100,
            },
            RoutingStrategy::Partitioned {
                column: "k".into(),
                num_partitions: 16,
            },
        ] {
            assert_eq!(RoutingStrategy::from_json(&r.to_json()).unwrap(), r);
        }
    }
}
