//! Shared data model for the Pinot reproduction.
//!
//! This crate holds everything that more than one component needs to agree
//! on: column types and values, table schemas and configs, record rows,
//! broker/server query request and response types, the realtime
//! segment-completion protocol messages, segment naming, and a tiny JSON
//! representation used for human-readable metadata in the metastore.
//!
//! Nothing here performs I/O; these are plain data types plus small pure
//! helpers, which keeps the dependency graph of the workspace a clean DAG.

pub mod config;
pub mod error;
pub mod ids;
pub mod json;
pub mod partition;
pub mod profile;
pub mod protocol;
pub mod query;
pub mod record;
pub mod retry;
pub mod schema;
pub mod time;
pub mod value;

pub use error::{PinotError, Result};
pub use record::Record;
pub use retry::RetryPolicy;
pub use schema::{DataType, FieldRole, FieldSpec, Schema, TimeUnit};
pub use value::Value;
