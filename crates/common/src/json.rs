//! A deliberately small JSON implementation.
//!
//! Table configs and cluster metadata are stored human-readable in the
//! metastore (the paper keeps table configurations in source control and
//! syncs them through a REST API, §5.2). The workspace's dependency policy
//! allows only a short list of crates, so this module provides the minimal
//! JSON value/parse/emit needed for that purpose. It supports the full JSON
//! grammar except `\uXXXX` surrogate pairs beyond the BMP.

use crate::error::{PinotError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A JSON document. Objects use a BTreeMap so emission is deterministic,
/// which keeps metastore writes stable and diffs readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Emit compact JSON text.
    pub fn emit(&self) -> String {
        let mut s = String::new();
        self.emit_into(&mut s);
        s
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e18 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text.
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(PinotError::Metadata(format!(
                "trailing characters at byte {} in JSON",
                p.pos
            )));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.emit())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> PinotError {
        PinotError::Metadata(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected literal {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x80 => s.push(c as char),
                Some(c) => {
                    // Multi-byte UTF-8: copy the remaining continuation bytes.
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.emit()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn round_trip_nested() {
        let text = r#"{"a":[1,2,{"b":"x\ny"}],"c":null,"d":true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.emit(), text);
    }

    #[test]
    fn object_access_helpers() {
        let v = Json::parse(r#"{"n":3,"s":"str","b":false,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("str"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,", "tru", "\"abc", "{\"a\":}", "1 2"] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Json::parse(r#""café \t \"q\"""#).unwrap();
        assert_eq!(v.as_str(), Some("café \t \"q\""));
        let raw = Json::Str("héllo\u{1F600}".into());
        assert_eq!(Json::parse(&raw.emit()).unwrap(), raw);
    }

    #[test]
    fn integer_emission_has_no_fraction() {
        assert_eq!(Json::Num(5.0).emit(), "5");
        assert_eq!(Json::Num(5.25).emit(), "5.25");
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-2.5E-1").unwrap().as_f64(), Some(-0.25));
    }

    #[test]
    fn deterministic_object_order() {
        let a = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(a.emit(), r#"{"a":2,"z":1}"#);
    }
}
