//! Deterministic retry policy with jittered exponential backoff.
//!
//! Shared by every component that retries transient failures: the broker's
//! replica-failover path, the servers' realtime stream fetches, and the
//! controller's metastore compare-and-set writes. Retries only fire for
//! errors whose [`PinotError::is_retriable`] classification says a second
//! attempt could plausibly succeed; permanent errors (bad query, schema
//! violation) propagate immediately.
//!
//! The jitter is *deterministic*: a SplitMix64 hash of `(seed, attempt)`
//! scales each delay into `[delay/2, delay]`. Two policies with the same
//! seed produce identical delay sequences, which keeps chaos tests and
//! simulations reproducible while still de-synchronizing real replicas
//! that are configured with distinct seeds.

use crate::error::{PinotError, Result};
use std::time::{Duration, Instant};

/// Backoff schedule for retrying a transient failure.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Growth factor between consecutive retries.
    pub multiplier: f64,
    /// Upper bound on any single delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Seed for the deterministic jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 2,
            multiplier: 2.0,
            max_delay_ms: 100,
            seed: 0,
        }
    }
}

/// SplitMix64: the jitter hash. Deterministic, well-distributed, no state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy with no delays, for tests that only care about attempt
    /// counts.
    pub fn immediate(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay_ms: 0,
            multiplier: 1.0,
            max_delay_ms: 0,
            seed: 0,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// Backoff before retry number `attempt` (1-based: the delay taken
    /// after the `attempt`-th failure). Exponential growth capped at
    /// `max_delay_ms`, then jittered deterministically into
    /// `[delay/2, delay]`.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        if attempt == 0 || self.base_delay_ms == 0 {
            return 0;
        }
        let exp = self.base_delay_ms as f64 * self.multiplier.powi(attempt as i32 - 1);
        let capped = exp.min(self.max_delay_ms as f64).max(0.0) as u64;
        if capped == 0 {
            return 0;
        }
        // Jitter into [capped/2, capped]; half-width keeps the bound tight
        // enough to budget against while spreading concurrent retries.
        let h = splitmix64(self.seed ^ (attempt as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let span = capped - capped / 2;
        capped / 2 + if span == 0 { 0 } else { h % (span + 1) }
    }

    /// Upper bound on the total time this policy can spend sleeping: every
    /// retry at the per-delay cap. Useful for sizing deadline budgets.
    pub fn max_total_delay_ms(&self) -> u64 {
        (1..self.max_attempts)
            .map(|_| self.max_delay_ms)
            .sum::<u64>()
    }

    /// Run `op` with retries. `op` receives the 1-based attempt number.
    /// Retries only on [`PinotError::is_retriable`] errors, sleeping the
    /// jittered backoff between attempts; the last error propagates.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> Result<T>) -> Result<T> {
        self.run_with_deadline(None, &mut op)
    }

    /// Like [`RetryPolicy::run`], but stops retrying once the next backoff
    /// would cross `deadline` — the remaining budget belongs to the caller
    /// (a query's scatter timeout), not to the retry loop.
    pub fn run_with_deadline<T>(
        &self,
        deadline: Option<Instant>,
        op: &mut impl FnMut(u32) -> Result<T>,
    ) -> Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retriable() && attempt < attempts => {
                    let delay = Duration::from_millis(self.delay_ms(attempt));
                    if let Some(d) = deadline {
                        let now = Instant::now();
                        if now + delay >= d {
                            return Err(PinotError::Timeout(format!(
                                "retry budget exhausted after attempt {attempt}: {e}"
                            )));
                        }
                    }
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_bounded() {
        let p = RetryPolicy::default().with_seed(7);
        let q = RetryPolicy::default().with_seed(7);
        for a in 1..10 {
            assert_eq!(p.delay_ms(a), q.delay_ms(a));
            assert!(p.delay_ms(a) <= p.max_delay_ms);
        }
        // A different seed gives a different schedule somewhere.
        let r = RetryPolicy::default().with_seed(8);
        assert!((1..10).any(|a| p.delay_ms(a) != r.delay_ms(a)));
    }

    #[test]
    fn retries_transient_then_succeeds() {
        let p = RetryPolicy::immediate(3);
        let mut calls = 0;
        let out = p.run(|_| {
            calls += 1;
            if calls < 3 {
                Err(PinotError::Io("flaky".into()))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls, 3);
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let p = RetryPolicy::immediate(5);
        let mut calls = 0;
        let out: Result<()> = p.run(|_| {
            calls += 1;
            Err(PinotError::InvalidQuery("bad".into()))
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn attempts_are_capped() {
        let p = RetryPolicy::immediate(4);
        let mut calls = 0;
        let out: Result<()> = p.run(|_| {
            calls += 1;
            Err(PinotError::Timeout("slow".into()))
        });
        assert_eq!(out.unwrap_err().kind(), "timeout");
        assert_eq!(calls, 4);
    }

    #[test]
    fn deadline_stops_retries() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 50,
            multiplier: 2.0,
            max_delay_ms: 1_000,
            seed: 1,
        };
        let deadline = Instant::now() + Duration::from_millis(5);
        let mut calls = 0;
        let out: Result<()> = p.run_with_deadline(Some(deadline), &mut |_| {
            calls += 1;
            Err(PinotError::Io("down".into()))
        });
        assert_eq!(out.unwrap_err().kind(), "timeout");
        assert_eq!(calls, 1); // first backoff would already cross the deadline
    }

    #[test]
    fn total_delay_bound() {
        let p = RetryPolicy::default();
        assert_eq!(
            p.max_total_delay_ms(),
            (p.max_attempts as u64 - 1) * p.max_delay_ms
        );
    }
}
