//! Query profiles: structured per-operator execution trees.
//!
//! A [`ProfileNode`] records what one operator (filter, scan, star-tree,
//! metadata-only, group-by, merge, ...) did during a query: documents in
//! and out, blocks decoded, wall time, plan kind and prune attribution.
//! Segment executions produce small trees; servers aggregate them (keeping
//! the slowest segments exact and folding the rest into a summary node);
//! the broker merges per-server trees into one cluster-wide
//! [`QueryProfile`] that is attached to slow-query-log entries and
//! returned by `execute_profiled`.
//!
//! Serialization uses the in-repo JSON emitter with stable field names so
//! benches and external tools can diff profiles across runs.

use crate::json::Json;
use std::sync::Arc;

/// One operator's contribution to a query.
///
/// `elapsed_ns` is inclusive of children; [`ProfileNode::self_ns`] gives
/// the exclusive time. Counter semantics: `docs_in` is the number of
/// documents the operator considered, `docs_out` the number it produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileNode {
    /// Operator kind: `filter`, `scan`, `aggregate`, `group_by`, `select`,
    /// `star_tree`, `metadata_only`, `segment`, `segments_summary`,
    /// `server`, `broker`, `merge`, or a phase name. A static label so
    /// building and folding profile trees on the hot path never allocates
    /// for the enum-like attributes (only `name` is dynamic).
    pub operator: &'static str,
    /// Instance label (segment name, server id). Cleared when the node is
    /// folded into a summary. `Arc<str>` so hot-path construction shares
    /// the label the segment already owns instead of allocating per query.
    pub name: Option<Arc<str>>,
    /// Plan the segment chose: `metadata_only` | `star_tree` | `raw`.
    pub plan_kind: Option<&'static str>,
    /// Prune attribution when the segment was skipped:
    /// `time` | `zonemap` | `bloom` | `stats` | `broker` | `partition`.
    pub prune: Option<&'static str>,
    /// Kernel choice for scan/aggregate work: `batch` | `row`.
    pub kernel: Option<&'static str>,
    pub docs_in: u64,
    pub docs_out: u64,
    pub blocks_decoded: u64,
    pub elapsed_ns: u64,
    /// How many segment executions are folded into this node (1 for an
    /// exact per-segment node, more for summary nodes).
    pub segments: u64,
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    pub fn new(operator: &'static str) -> ProfileNode {
        ProfileNode {
            operator,
            segments: 0,
            ..ProfileNode::default()
        }
    }

    pub fn named(operator: &'static str, name: impl Into<Arc<str>>) -> ProfileNode {
        ProfileNode {
            name: Some(name.into()),
            ..ProfileNode::new(operator)
        }
    }

    /// Merge identity: a node every fold leaves unchanged except for the
    /// absorbed counters.
    pub fn summary(operator: &'static str) -> ProfileNode {
        ProfileNode::new(operator)
    }

    /// Exclusive time: `elapsed_ns` minus the children's inclusive time.
    pub fn self_ns(&self) -> u64 {
        let child_ns: u64 = self.children.iter().map(|c| c.elapsed_ns).sum();
        self.elapsed_ns.saturating_sub(child_ns)
    }

    /// Key that decides which children merge with each other when folding.
    fn fold_key(
        &self,
    ) -> (
        &'static str,
        Option<&'static str>,
        Option<&'static str>,
        Option<&'static str>,
    ) {
        (self.operator, self.plan_kind, self.prune, self.kernel)
    }

    fn strip_names(&mut self) {
        self.name = None;
        for c in &mut self.children {
            c.strip_names();
        }
    }

    /// Fold `other` into `self`, summing all counters and recursively
    /// merging children that share (operator, plan_kind, prune, kernel).
    /// Instance names are dropped — a folded node is a summary. Children
    /// are kept sorted by fold key, which makes folding associative and
    /// commutative (see the proptests in pinot-exec).
    pub fn fold(&mut self, other: &ProfileNode) {
        self.docs_in += other.docs_in;
        self.docs_out += other.docs_out;
        self.blocks_decoded += other.blocks_decoded;
        self.elapsed_ns += other.elapsed_ns;
        self.segments += other.segments.max(1);
        self.name = None;
        for oc in &other.children {
            match self
                .children
                .iter_mut()
                .find(|c| c.fold_key() == oc.fold_key())
            {
                Some(mine) => mine.fold(oc),
                None => {
                    let mut clone = oc.clone();
                    clone.strip_names();
                    if clone.segments == 0 {
                        clone.segments = 1;
                    }
                    self.children.push(clone);
                }
            }
        }
        self.children
            .sort_by(|a, b| a.fold_key().cmp(&b.fold_key()));
    }

    /// Sum of `docs_out` over leaves matching `operator` anywhere in the
    /// tree (used by tests reconciling profiles against execution stats).
    pub fn sum_docs_out(&self, operator: &str) -> u64 {
        let own = if self.operator == operator {
            self.docs_out
        } else {
            0
        };
        own + self
            .children
            .iter()
            .map(|c| c.sum_docs_out(operator))
            .sum::<u64>()
    }

    /// Count nodes matching a predicate anywhere in the tree.
    pub fn count_nodes(&self, pred: &dyn Fn(&ProfileNode) -> bool) -> u64 {
        let own = u64::from(pred(self));
        own + self
            .children
            .iter()
            .map(|c| c.count_nodes(pred))
            .sum::<u64>()
    }

    /// The operator with the largest *exclusive* time anywhere in the
    /// tree — "where did this query's time go". Ties break toward the
    /// first node in depth-first order.
    pub fn dominant_operator(&self) -> (&str, u64) {
        let mut best: (&str, u64) = (self.operator, self.self_ns());
        for c in &self.children {
            let cand = c.dominant_operator();
            if cand.1 > best.1 {
                best = cand;
            }
        }
        best
    }

    /// JSON with stable field names. Optional attributes are omitted when
    /// absent; counters and `children` are always present.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![("operator", self.operator.into())];
        if let Some(n) = &self.name {
            pairs.push(("name", (&**n).into()));
        }
        if let Some(k) = self.plan_kind {
            pairs.push(("plan_kind", k.into()));
        }
        if let Some(p) = self.prune {
            pairs.push(("prune", p.into()));
        }
        if let Some(k) = self.kernel {
            pairs.push(("kernel", k.into()));
        }
        pairs.push(("docs_in", self.docs_in.into()));
        pairs.push(("docs_out", self.docs_out.into()));
        pairs.push(("blocks_decoded", self.blocks_decoded.into()));
        pairs.push(("elapsed_ns", self.elapsed_ns.into()));
        pairs.push(("segments", self.segments.into()));
        pairs.push((
            "children",
            Json::Arr(self.children.iter().map(|c| c.to_json()).collect()),
        ));
        Json::obj(pairs)
    }

    /// Indented one-line-per-operator rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let mut label = self.operator.to_string();
        if let Some(n) = &self.name {
            label.push_str(&format!(" {n}"));
        }
        let mut attrs = Vec::new();
        if let Some(k) = self.plan_kind {
            attrs.push(format!("plan={k}"));
        }
        if let Some(p) = self.prune {
            attrs.push(format!("prune={p}"));
        }
        if let Some(k) = self.kernel {
            attrs.push(format!("kernel={k}"));
        }
        if self.segments > 1 {
            attrs.push(format!("segments={}", self.segments));
        }
        attrs.push(format!("docs={}→{}", self.docs_in, self.docs_out));
        if self.blocks_decoded > 0 {
            attrs.push(format!("blocks={}", self.blocks_decoded));
        }
        attrs.push(format!("{:.3}ms", self.elapsed_ns as f64 / 1e6));
        out.push_str(&format!(
            "{:indent$}{label} [{}]\n",
            "",
            attrs.join(" "),
            indent = depth * 2,
        ));
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// A cluster-wide merged profile for one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// Broker-assigned query id; joins the profile with spans, per-server
    /// stats, and the slow-query log.
    pub query_id: u64,
    /// Root of the broker → server → segment operator tree.
    pub root: ProfileNode,
}

impl QueryProfile {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("query_id", self.query_id.into()),
            ("root", self.root.to_json()),
        ])
    }

    pub fn render_text(&self) -> String {
        format!("query_id: {}\n{}", self.query_id, self.root.render_text())
    }

    /// Delegates to [`ProfileNode::dominant_operator`] on the root.
    pub fn dominant_operator(&self) -> (&str, u64) {
        self.root.dominant_operator()
    }
}

/// Server-side aggregation of per-segment profile trees: the `keep_exact`
/// slowest segments stay as exact per-segment nodes; the rest fold into
/// `segments_summary` nodes, one per (plan_kind, prune, kernel) shape so
/// prune attribution survives the folding. Returns the kept nodes
/// slowest-first followed by the summaries in fold-key order.
pub fn aggregate_segment_profiles(
    mut nodes: Vec<ProfileNode>,
    keep_exact: usize,
) -> Vec<ProfileNode> {
    nodes.sort_by(|a, b| {
        b.elapsed_ns
            .cmp(&a.elapsed_ns)
            .then_with(|| a.name.cmp(&b.name))
    });
    let rest = nodes.split_off(keep_exact.min(nodes.len()));
    let mut summaries: Vec<ProfileNode> = Vec::new();
    for node in &rest {
        let shape = (node.plan_kind, node.prune, node.kernel);
        match summaries
            .iter_mut()
            .find(|s| (s.plan_kind, s.prune, s.kernel) == shape)
        {
            Some(s) => s.fold(node),
            None => {
                let mut s = ProfileNode::summary("segments_summary");
                s.plan_kind = node.plan_kind;
                s.prune = node.prune;
                s.kernel = node.kernel;
                s.fold(node);
                summaries.push(s);
            }
        }
    }
    summaries.sort_by(|a, b| a.fold_key().cmp(&b.fold_key()));
    nodes.extend(summaries);
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment_node(name: &str, filter_ns: u64, scan_ns: u64) -> ProfileNode {
        let mut seg = ProfileNode::named("segment", name);
        seg.plan_kind = Some("raw");
        seg.segments = 1;
        seg.docs_in = 100;
        seg.docs_out = 40;
        seg.elapsed_ns = filter_ns + scan_ns;
        let mut filter = ProfileNode::new("filter");
        filter.docs_in = 100;
        filter.docs_out = 40;
        filter.elapsed_ns = filter_ns;
        let mut scan = ProfileNode::new("aggregate");
        scan.kernel = Some("batch");
        scan.docs_in = 40;
        scan.docs_out = 1;
        scan.blocks_decoded = 2;
        scan.elapsed_ns = scan_ns;
        seg.children = vec![filter, scan];
        seg
    }

    #[test]
    fn fold_sums_counters_and_merges_children() {
        let mut sum = ProfileNode::summary("segments_summary");
        sum.fold(&segment_node("s1", 10, 20));
        sum.fold(&segment_node("s2", 5, 7));
        assert_eq!(sum.segments, 2);
        assert_eq!(sum.docs_in, 200);
        assert_eq!(sum.docs_out, 80);
        assert_eq!(sum.elapsed_ns, 42);
        assert_eq!(sum.children.len(), 2);
        let agg = sum
            .children
            .iter()
            .find(|c| c.operator == "aggregate")
            .unwrap();
        assert_eq!(agg.blocks_decoded, 4);
        assert_eq!(agg.segments, 2);
        assert!(agg.name.is_none());
    }

    #[test]
    fn fold_is_order_independent() {
        let nodes = [
            segment_node("a", 1, 2),
            segment_node("b", 3, 4),
            segment_node("c", 5, 6),
        ];
        let mut fwd = ProfileNode::summary("s");
        let mut rev = ProfileNode::summary("s");
        for n in &nodes {
            fwd.fold(n);
        }
        for n in nodes.iter().rev() {
            rev.fold(n);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn dominant_operator_uses_exclusive_time() {
        let seg = segment_node("s1", 10, 90);
        assert_eq!(seg.dominant_operator(), ("aggregate", 90));
    }

    #[test]
    fn json_has_stable_field_names() {
        let profile = QueryProfile {
            query_id: 7,
            root: segment_node("s1", 1, 2),
        };
        let text = profile.to_json().emit();
        for field in [
            "\"query_id\"",
            "\"operator\"",
            "\"docs_in\"",
            "\"docs_out\"",
            "\"blocks_decoded\"",
            "\"elapsed_ns\"",
            "\"segments\"",
            "\"children\"",
            "\"plan_kind\"",
            "\"kernel\"",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
        // Round-trips through the parser.
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn aggregate_keeps_slowest_exact_and_folds_rest_by_shape() {
        let mut pruned = ProfileNode::named("segment", "p1");
        pruned.prune = Some("zonemap");
        pruned.segments = 1;
        pruned.docs_in = 50;
        let nodes = vec![
            segment_node("fast", 1, 2),
            segment_node("slow", 50, 60),
            segment_node("mid", 10, 20),
            pruned,
        ];
        let out = aggregate_segment_profiles(nodes, 1);
        // Slowest segment survives exactly, with its name.
        assert_eq!(out[0].name.as_deref(), Some("slow"));
        assert_eq!(out[0].elapsed_ns, 110);
        // The rest fold into two summaries: one raw shape, one pruned shape.
        let summaries: Vec<_> = out
            .iter()
            .filter(|n| n.operator == "segments_summary")
            .collect();
        assert_eq!(summaries.len(), 2);
        let raw = summaries
            .iter()
            .find(|s| s.plan_kind == Some("raw"))
            .unwrap();
        assert_eq!(raw.segments, 2);
        assert_eq!(raw.docs_in, 200);
        let zoned = summaries
            .iter()
            .find(|s| s.prune == Some("zonemap"))
            .unwrap();
        assert_eq!(zoned.segments, 1);
        assert_eq!(zoned.docs_in, 50);
    }

    #[test]
    fn render_text_names_operators() {
        let seg = segment_node("s1", 1, 2);
        let text = seg.render_text();
        assert!(text.contains("segment s1"));
        assert!(text.contains("filter"));
        assert!(text.contains("kernel=batch"));
    }
}
