//! Error type shared across all Pinot components.

use std::fmt;

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, PinotError>;

/// Unified error for every Pinot component.
///
/// Variants are coarse-grained on purpose: callers almost always either
/// propagate, retry, or mark a query response as partial; they rarely need to
/// distinguish finer causes than these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinotError {
    /// The query text failed to parse or validate.
    InvalidQuery(String),
    /// A schema violation: unknown column, wrong type, bad field spec.
    Schema(String),
    /// Segment data is malformed or an index is unusable.
    Segment(String),
    /// Table or segment does not exist, or config is inconsistent.
    Metadata(String),
    /// A cluster-management operation failed (state transition, assignment).
    Cluster(String),
    /// An I/O-ish failure in a substrate (object store, stream, metastore).
    Io(String),
    /// Query execution exceeded its deadline.
    Timeout(String),
    /// The tenant's token bucket is exhausted and the queue is full.
    QuotaExceeded(String),
    /// The broker shed this query before scatter: the tenant's concurrency
    /// slots are saturated and the admission wait queue is full (or the
    /// queued query's deadline passed before a slot freed). Distinct from
    /// [`PinotError::QuotaExceeded`], which is the *server-side* token
    /// bucket — an overloaded broker never paid the scatter cost.
    Overloaded(String),
    /// A quota on storage size would be exceeded by an upload.
    StorageQuota(String),
    /// The contacted node is not the leader for this operation.
    NotLeader(String),
    /// Catch-all for internal invariant violations.
    Internal(String),
}

impl PinotError {
    /// Short machine-readable kind label, used in stats and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            PinotError::InvalidQuery(_) => "invalid_query",
            PinotError::Schema(_) => "schema",
            PinotError::Segment(_) => "segment",
            PinotError::Metadata(_) => "metadata",
            PinotError::Cluster(_) => "cluster",
            PinotError::Io(_) => "io",
            PinotError::Timeout(_) => "timeout",
            PinotError::QuotaExceeded(_) => "quota_exceeded",
            PinotError::Overloaded(_) => "overloaded",
            PinotError::StorageQuota(_) => "storage_quota",
            PinotError::NotLeader(_) => "not_leader",
            PinotError::Internal(_) => "internal",
        }
    }

    /// True when retrying the same operation against the cluster could
    /// plausibly succeed: transient timeouts, substrate I/O hiccups, moved
    /// leadership, and cluster-management races (a server died between
    /// routing and scatter). `RetryPolicy` consults this before every
    /// retry.
    ///
    /// Deliberately *not* retriable: query/schema errors (permanent until
    /// the caller changes the input), segment corruption and metadata
    /// inconsistencies (retrying re-reads the same bad state), quota
    /// exhaustion (retrying amplifies exactly the load the quota is
    /// shedding — callers must back off at their own cadence), and
    /// internal invariant violations.
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            PinotError::Timeout(_)
                | PinotError::Io(_)
                | PinotError::NotLeader(_)
                | PinotError::Cluster(_)
        )
    }
}

impl fmt::Display for PinotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            PinotError::InvalidQuery(m) => ("invalid query", m),
            PinotError::Schema(m) => ("schema error", m),
            PinotError::Segment(m) => ("segment error", m),
            PinotError::Metadata(m) => ("metadata error", m),
            PinotError::Cluster(m) => ("cluster error", m),
            PinotError::Io(m) => ("io error", m),
            PinotError::Timeout(m) => ("timeout", m),
            PinotError::QuotaExceeded(m) => ("quota exceeded", m),
            PinotError::Overloaded(m) => ("overloaded", m),
            PinotError::StorageQuota(m) => ("storage quota exceeded", m),
            PinotError::NotLeader(m) => ("not leader", m),
            PinotError::Internal(m) => ("internal error", m),
        };
        write!(f, "{kind}: {msg}")
    }
}

impl std::error::Error for PinotError {}

impl From<std::io::Error> for PinotError {
    fn from(e: std::io::Error) -> Self {
        PinotError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = PinotError::InvalidQuery("bad token".into());
        assert_eq!(e.to_string(), "invalid query: bad token");
        let e = PinotError::Timeout("5s elapsed".into());
        assert_eq!(e.to_string(), "timeout: 5s elapsed");
        let e = PinotError::Overloaded("admission queue full".into());
        assert_eq!(e.to_string(), "overloaded: admission queue full");
    }

    /// Broker shedding (`Overloaded`) and server token buckets
    /// (`QuotaExceeded`) are different signals with different remedies;
    /// clients must be able to tell them apart.
    #[test]
    fn overloaded_is_distinct_from_quota_exceeded() {
        let o = PinotError::Overloaded(String::new());
        let q = PinotError::QuotaExceeded(String::new());
        assert_ne!(o.kind(), q.kind());
        assert!(!o.is_retriable());
        assert!(!q.is_retriable());
    }

    #[test]
    fn retriable_classification() {
        // Transient: a retry against the cluster could succeed.
        assert!(PinotError::Timeout(String::new()).is_retriable());
        assert!(PinotError::Io(String::new()).is_retriable());
        assert!(PinotError::NotLeader(String::new()).is_retriable());
        assert!(PinotError::Cluster(String::new()).is_retriable());
        // Permanent: the input or the stored state is wrong; retrying
        // re-runs the same failure.
        assert!(!PinotError::InvalidQuery(String::new()).is_retriable());
        assert!(!PinotError::Schema(String::new()).is_retriable());
        assert!(!PinotError::Segment(String::new()).is_retriable());
        assert!(!PinotError::Metadata(String::new()).is_retriable());
        assert!(!PinotError::Internal(String::new()).is_retriable());
        // Load shedding: retries amplify the very load being shed.
        assert!(!PinotError::QuotaExceeded(String::new()).is_retriable());
        assert!(!PinotError::Overloaded(String::new()).is_retriable());
        assert!(!PinotError::StorageQuota(String::new()).is_retriable());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: PinotError = io.into();
        assert_eq!(e.kind(), "io");
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            PinotError::InvalidQuery(String::new()).kind(),
            PinotError::Schema(String::new()).kind(),
            PinotError::Segment(String::new()).kind(),
            PinotError::Metadata(String::new()).kind(),
            PinotError::Cluster(String::new()).kind(),
            PinotError::Io(String::new()).kind(),
            PinotError::Timeout(String::new()).kind(),
            PinotError::QuotaExceeded(String::new()).kind(),
            PinotError::Overloaded(String::new()).kind(),
            PinotError::StorageQuota(String::new()).kind(),
            PinotError::NotLeader(String::new()).kind(),
            PinotError::Internal(String::new()).kind(),
        ];
        let set: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(set.len(), kinds.len());
    }
}
