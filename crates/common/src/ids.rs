//! Identifiers: table names, segment names, instance ids.
//!
//! Segment naming mirrors Pinot's conventions: offline segments are
//! `table_OFFLINE__<seq>` style opaque names, while realtime (LLC) segments
//! encode table, Kafka partition and sequence number so that every replica
//! consuming a partition independently derives the same name.

use crate::error::{PinotError, Result};
use std::fmt;

/// Which physical table a segment or query targets. Hybrid tables are a
/// logical pairing of one OFFLINE and one REALTIME physical table (§3.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TableType {
    Offline,
    Realtime,
}

impl TableType {
    pub fn suffix(&self) -> &'static str {
        match self {
            TableType::Offline => "OFFLINE",
            TableType::Realtime => "REALTIME",
        }
    }
}

impl fmt::Display for TableType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Fully qualified physical table name, e.g. `wvmp_OFFLINE`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableName {
    raw: String,
    table_type: TableType,
}

impl TableName {
    pub fn new(raw: impl Into<String>, table_type: TableType) -> TableName {
        TableName {
            raw: raw.into(),
            table_type,
        }
    }

    pub fn offline(raw: impl Into<String>) -> TableName {
        TableName::new(raw, TableType::Offline)
    }

    pub fn realtime(raw: impl Into<String>) -> TableName {
        TableName::new(raw, TableType::Realtime)
    }

    /// Logical (user-facing) table name without the type suffix.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    pub fn table_type(&self) -> TableType {
        self.table_type
    }

    /// `raw_TYPE` form used as keys in the metastore and cluster state.
    pub fn qualified(&self) -> String {
        format!("{}_{}", self.raw, self.table_type.suffix())
    }

    pub fn parse(s: &str) -> Result<TableName> {
        if let Some(raw) = s.strip_suffix("_OFFLINE") {
            Ok(TableName::offline(raw))
        } else if let Some(raw) = s.strip_suffix("_REALTIME") {
            Ok(TableName::realtime(raw))
        } else {
            Err(PinotError::Metadata(format!(
                "table name {s:?} lacks _OFFLINE/_REALTIME suffix"
            )))
        }
    }
}

impl fmt::Display for TableName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.qualified())
    }
}

/// A segment name.
///
/// * Offline: `<table>__<sequence>` (opaque sequence assigned at upload).
/// * Realtime: `<table>__<partition>__<sequence>` — all replicas of a
///   consuming segment derive the same name deterministically.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentName(String);

impl SegmentName {
    pub fn offline(table: &str, sequence: u64) -> SegmentName {
        SegmentName(format!("{table}__{sequence}"))
    }

    pub fn realtime(table: &str, partition: u32, sequence: u64) -> SegmentName {
        SegmentName(format!("{table}__{partition}__{sequence}"))
    }

    pub fn from_raw(s: impl Into<String>) -> SegmentName {
        SegmentName(s.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// For realtime segment names, the `(partition, sequence)` pair.
    pub fn realtime_parts(&self) -> Option<(u32, u64)> {
        let mut it = self.0.rsplitn(3, "__");
        let seq = it.next()?.parse().ok()?;
        let part = it.next()?.parse().ok()?;
        it.next()?; // table part must exist
        Some((part, seq))
    }
}

impl fmt::Display for SegmentName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Identifier for a cluster node (server, broker, controller, minion).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(String);

impl InstanceId {
    pub fn server(n: usize) -> InstanceId {
        InstanceId(format!("Server_{n}"))
    }
    pub fn broker(n: usize) -> InstanceId {
        InstanceId(format!("Broker_{n}"))
    }
    pub fn controller(n: usize) -> InstanceId {
        InstanceId(format!("Controller_{n}"))
    }
    pub fn minion(n: usize) -> InstanceId {
        InstanceId(format!("Minion_{n}"))
    }
    pub fn from_raw(s: impl Into<String>) -> InstanceId {
        InstanceId(s.into())
    }
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_name_round_trip() {
        let t = TableName::offline("wvmp");
        assert_eq!(t.qualified(), "wvmp_OFFLINE");
        assert_eq!(TableName::parse("wvmp_OFFLINE").unwrap(), t);
        let r = TableName::parse("feed_REALTIME").unwrap();
        assert_eq!(r.table_type(), TableType::Realtime);
        assert_eq!(r.raw(), "feed");
        assert!(TableName::parse("plain").is_err());
    }

    #[test]
    fn realtime_segment_name_parts() {
        let s = SegmentName::realtime("feed_REALTIME", 3, 42);
        assert_eq!(s.realtime_parts(), Some((3, 42)));
        let o = SegmentName::offline("wvmp_OFFLINE", 7);
        // Offline names have no partition component.
        assert_eq!(o.realtime_parts(), None);
    }

    #[test]
    fn instance_ids_distinct_by_role() {
        assert_ne!(InstanceId::server(1), InstanceId::broker(1));
        assert_eq!(InstanceId::server(2).as_str(), "Server_2");
    }

    #[test]
    fn segment_names_sort_stably() {
        let mut v = [SegmentName::offline("t", 10), SegmentName::offline("t", 2)];
        v.sort();
        // Lexicographic, not numeric — fine, names are opaque identifiers.
        assert_eq!(v[0].as_str(), "t__10");
    }
}
