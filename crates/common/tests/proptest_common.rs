//! Robustness properties for the shared data layer: the JSON parser never
//! panics and round-trips every value it emits; config/schema text
//! serialization is stable; the partition function is deterministic.

use pinot_common::config::{RoutingStrategy, StarTreeConfig, StreamConfig, TableConfig};
use pinot_common::json::Json;
use pinot_common::partition::partition_for_value;
use pinot_common::{TimeUnit, Value};
use proptest::prelude::*;

fn json_strategy() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite numbers only: JSON has no NaN/Inf representation.
        (-1.0e12f64..1.0e12).prop_map(Json::Num),
        "[a-zA-Z0-9 _\\-\"\\\\/\u{e9}\u{4e16}]*".prop_map(Json::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Json::Obj),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_parse_never_panics(s in ".*") {
        let _ = Json::parse(&s);
    }

    #[test]
    fn json_emit_parse_round_trip(j in json_strategy()) {
        let text = j.emit();
        let back = Json::parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        // Numbers may lose their integer-vs-float rendering but not value.
        prop_assert_eq!(back.emit(), text);
    }

    #[test]
    fn partition_function_deterministic_and_bounded(
        v in prop_oneof![
            any::<i64>().prop_map(Value::Long),
            any::<i32>().prop_map(Value::Int),
            "[a-z0-9]{0,16}".prop_map(Value::String),
        ],
        n in 1u32..64,
    ) {
        let p = partition_for_value(&v, n);
        prop_assert!(p < n);
        prop_assert_eq!(p, partition_for_value(&v, n));
    }

    #[test]
    fn table_config_text_round_trip(
        replication in 1usize..5,
        tenant in "[a-zA-Z]{1,10}",
        inverted in prop::collection::vec("[a-z]{1,6}", 0..3),
        sorted in prop::option::of("[A-Z]{1,6}"),
        star in any::<bool>(),
        retention in prop::option::of(1i64..1000),
        quota in prop::option::of(1u64..1_000_000),
        partitions in prop::option::of(1u32..32),
        stream in any::<bool>(),
    ) {
        let mut cfg = if stream {
            TableConfig::realtime(
                "t",
                StreamConfig {
                    topic: "topic".into(),
                    flush_threshold_rows: 100,
                    flush_threshold_millis: 1_000,
                },
            )
        } else {
            TableConfig::offline("t")
        };
        cfg = cfg.with_replication(replication).with_tenant(tenant);
        let inverted_refs: Vec<&str> = inverted.iter().map(String::as_str).collect();
        cfg = cfg.with_inverted_indexes(&inverted_refs);
        if let Some(s) = sorted {
            cfg = cfg.with_sorted_column(s);
        }
        if star {
            cfg = cfg.with_star_tree(StarTreeConfig::default());
        }
        if let Some(r) = retention {
            cfg = cfg.with_retention(TimeUnit::Days, r);
        }
        if let Some(q) = quota {
            cfg = cfg.with_quota_bytes(q);
        }
        if let Some(p) = partitions {
            cfg = cfg.with_routing(RoutingStrategy::Partitioned {
                column: "k".into(),
                num_partitions: p,
            });
        }
        prop_assume!(cfg.validate().is_ok());
        let text = cfg.to_json().emit();
        let back = TableConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, cfg);
    }
}
