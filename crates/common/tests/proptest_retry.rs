//! Properties of the broker/server retry policy: backoff never exceeds its
//! cap, total sleep is bounded by the policy's advertised budget, and the
//! jitter is a pure function of (seed, attempt) — same policy, same
//! schedule, every run.

use pinot_common::RetryPolicy;
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = RetryPolicy> {
    (1u32..8, 0u64..200, 1.0f64..4.0, 0u64..500, 0u64..u64::MAX).prop_map(
        |(max_attempts, base_delay_ms, multiplier, max_delay_ms, seed)| RetryPolicy {
            max_attempts,
            base_delay_ms,
            multiplier,
            max_delay_ms,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn each_delay_is_capped(policy in policy_strategy(), attempt in 0u32..12) {
        prop_assert!(policy.delay_ms(attempt) <= policy.max_delay_ms);
    }

    #[test]
    fn total_delay_is_bounded_by_the_budget(policy in policy_strategy()) {
        let total: u64 = (1..policy.max_attempts).map(|a| policy.delay_ms(a)).sum();
        prop_assert!(
            total <= policy.max_total_delay_ms(),
            "total {} exceeds budget {}",
            total,
            policy.max_total_delay_ms()
        );
    }

    #[test]
    fn schedule_is_deterministic_per_seed(policy in policy_strategy()) {
        let twin = policy.clone();
        for attempt in 0..policy.max_attempts + 3 {
            prop_assert_eq!(policy.delay_ms(attempt), twin.delay_ms(attempt));
        }
    }

    #[test]
    fn jitter_stays_above_half_the_raw_backoff(policy in policy_strategy(), attempt in 1u32..8) {
        let raw = (policy.base_delay_ms as f64 * policy.multiplier.powi(attempt as i32 - 1))
            .min(policy.max_delay_ms as f64) as u64;
        let jittered = policy.delay_ms(attempt);
        prop_assert!(
            jittered >= raw / 2,
            "jittered {} fell below half the raw backoff {}",
            jittered,
            raw
        );
    }
}
