//! EXPLAIN stability golden (ISSUE 6 satellite): `EXPLAIN PLAN FOR`
//! output on a fixed cluster is part of the observable surface — tools
//! and humans diff it across runs — so its exact rendering is pinned to
//! a committed golden file. `UPDATE_GOLDEN=1 cargo test -p pinot-core
//! --test explain_golden` rewrites the golden after an intentional
//! change.

use pinot_common::config::TableConfig;
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_core::{ClusterConfig, PinotCluster};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/explain_plan.txt");

const STATEMENTS: &[&str] = &[
    "EXPLAIN PLAN FOR SELECT COUNT(*) FROM events",
    "EXPLAIN PLAN FOR SELECT SUM(clicks) FROM events WHERE country = 'us' AND day > 101",
    "EXPLAIN PLAN FOR SELECT country, clicks FROM events WHERE day = 99 LIMIT 10",
    "EXPLAIN PLAN FOR SELECT COUNT(*) FROM events WHERE country = 'zz'",
    "EXPLAIN PLAN FOR SELECT COUNT(*), MAX(clicks) FROM events GROUP BY country TOP 5",
];

fn cluster() -> PinotCluster {
    let schema = Schema::new(
        "events",
        vec![
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap();
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(2)).unwrap();
    cluster
        .create_table(
            TableConfig::offline("events").with_bloom_filters(&["country"]),
            schema,
        )
        .unwrap();
    // Three fixed segments; segment 2 owns the later time range so the
    // goldens show both time pruning and a surviving raw plan.
    for base in [0i64, 40, 80] {
        let rows: Vec<Record> = (0..40)
            .map(|i| {
                Record::new(vec![
                    Value::from(["us", "de", "jp"][((base + i) % 3) as usize]),
                    Value::Long(base + i),
                    Value::Long(100 + base / 40),
                ])
            })
            .collect();
        cluster.upload_rows("events", rows).unwrap();
    }
    cluster
}

#[test]
fn explain_plan_output_matches_golden() {
    let cluster = cluster();
    let mut actual = String::new();
    for pql in STATEMENTS {
        actual.push_str(&format!("==== {pql}\n"));
        actual.push_str(&cluster.explain(pql).unwrap());
    }

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, expected,
        "EXPLAIN output drifted from {GOLDEN_PATH}; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}
