//! Fault-injection scenarios through `pinot-chaos` (ISSUE 2 acceptance).
//!
//! Every scenario is deterministic: faults are armed at named sites with
//! explicit scopes and budgets, time is a manual clock where it matters,
//! and the committer election is a BTreeMap order (lowest instance id at
//! the target offset wins), so `Server_1` is always the first committer.

use pinot_common::config::{StreamConfig, TableConfig};
use pinot_common::query::{QueryRequest, QueryResult};
use pinot_common::time::Clock;
use pinot_common::{DataType, FieldSpec, PinotError, Record, Schema, TimeUnit, Value};
use pinot_core::chaos::{sites, Fault, FaultScope};
use pinot_core::{ClusterConfig, PinotCluster};

fn schema() -> Schema {
    Schema::new(
        "views",
        vec![
            FieldSpec::dimension("viewer", DataType::Long),
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn row(viewer: i64, country: &str, clicks: i64, day: i64) -> Record {
    Record::new(vec![
        Value::Long(viewer),
        Value::String(country.into()),
        Value::Long(clicks),
        Value::Long(day),
    ])
}

fn count_of(resp: &pinot_common::query::QueryResponse) -> i64 {
    match &resp.result {
        QueryResult::Aggregation(rows) => rows
            .iter()
            .find(|r| r.function.starts_with("count"))
            .and_then(|r| r.value.as_i64())
            .unwrap_or(-1),
        _ => -1,
    }
}

/// A server killed mid-scatter: with replication 2, the broker re-routes
/// the dead server's segments to the surviving replica and the response
/// stays complete — `partial: false`, full count, and the per-server
/// stats name the covering replica.
#[test]
fn replica_crash_mid_query_recovers_via_failover() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(2)).unwrap();
    cluster
        .create_table(TableConfig::offline("views").with_replication(2), schema())
        .unwrap();
    for base in [0i64, 100] {
        let rows: Vec<Record> = (0..50).map(|i| row(base + i, "us", 1, 10)).collect();
        cluster.upload_rows("views", rows).unwrap();
    }
    // Healthy baseline.
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 100);

    // Server_1 dies the next time it is asked to execute anything.
    cluster.chaos().arm(
        sites::SERVER_EXECUTE,
        Fault::crash().with_scope(FaultScope::any().instance("Server_1")),
    );

    let resp = cluster.query("SELECT COUNT(*) FROM views");
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.counter("chaos.fault.injected"), 1, "crash never fired");
    assert!(
        !resp.partial,
        "failover should recover: {:?}",
        resp.exceptions
    );
    assert_eq!(count_of(&resp), 100);
    assert!(snap.counter("broker.scatter.failover_success") >= 1);
    assert!(snap.counter("broker.scatter.retry") >= 1);

    // The failed server is reported distinctly: it did not respond, but its
    // segments were covered by the surviving replica.
    let failed = resp
        .stats
        .per_server
        .iter()
        .find(|c| c.server == "Server_1")
        .expect("Server_1 appears in per-server stats");
    assert!(!failed.responded);
    assert_eq!(failed.covered_by, vec!["Server_2".to_string()]);
    let survivor = resp
        .stats
        .per_server
        .iter()
        .find(|c| c.server == "Server_2")
        .expect("Server_2 appears in per-server stats");
    assert!(survivor.responded);
}

/// The same crash with replication 1: no surviving replica exists, so the
/// response is partial and the exception names the dead server and how
/// many segments were lost.
#[test]
fn all_replicas_crashed_yields_partial_naming_the_server() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(1)).unwrap();
    cluster
        .create_table(TableConfig::offline("views").with_replication(1), schema())
        .unwrap();
    cluster
        .upload_rows("views", (0..50).map(|i| row(i, "us", 1, 10)).collect())
        .unwrap();
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 50);

    cluster.chaos().arm(
        sites::SERVER_EXECUTE,
        Fault::crash().with_scope(FaultScope::any().instance("Server_1")),
    );

    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(resp.partial, "no replica can cover — must be partial");
    assert!(
        resp.exceptions.iter().any(|e| e.contains("Server_1")),
        "exception must name the dead server: {:?}",
        resp.exceptions
    );
    assert!(
        resp.exceptions.iter().any(|e| e.contains("unrecoverable")),
        "{:?}",
        resp.exceptions
    );
    let failed = resp
        .stats
        .per_server
        .iter()
        .find(|c| c.server == "Server_1")
        .unwrap();
    assert!(!failed.responded);
    assert!(failed.covered_by.is_empty(), "nobody covered the segments");
    // No failover succeeded.
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.counter("broker.scatter.failover_success"), 0);
}

/// §3.3.6 committer failure: the elected committer crashes after winning
/// the election but before uploading. Once `commit_timeout_ms` passes, the
/// controller promotes the caught-up surviving replica, which commits the
/// segment — and the rows stay queryable throughout.
#[test]
fn committer_crash_promotes_caught_up_replica() {
    let clock = Clock::manual(1_700_000_000_000);
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(2)
            .with_clock(clock.clone()),
    )
    .unwrap();
    cluster.streams().create_topic("view-events", 1).unwrap();
    cluster
        .create_table(
            TableConfig::realtime(
                "views",
                StreamConfig {
                    topic: "view-events".into(),
                    flush_threshold_rows: 10,
                    flush_threshold_millis: i64::MAX / 4,
                },
            )
            .with_replication(2),
            schema(),
        )
        .unwrap();

    for i in 0..10i64 {
        cluster
            .produce("view-events", &Value::Long(i), row(i, "us", 1, 20_000))
            .unwrap();
    }

    // The committer election picks the lowest caught-up instance id, which
    // is deterministically Server_1. Arm its death at the commit site:
    // it will crash after winning, before uploading.
    cluster.chaos().arm(
        sites::COMPLETION_COMMIT,
        Fault::crash().with_scope(FaultScope::any().instance("Server_1")),
    );

    // Tick 1: both replicas ingest 10 rows, reach the end criteria, and
    // poll. The FSM elects Server_1 once it has heard from both.
    // Tick 2: Server_1 receives COMMIT and crashes; Server_2 HOLDs.
    cluster.consume_tick().unwrap();
    cluster.consume_tick().unwrap();
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.counter("server.chaos.crashed"), 1);
    assert_eq!(snap.counter("chaos.fault.injected"), 1);

    // Rows are still queryable from the survivor's consuming segment even
    // though the segment is not committed yet.
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 10);

    // Within the commit timeout the survivor keeps holding.
    cluster.servers()[1].consume_tick().unwrap();
    let leader = cluster.leader_controller().unwrap();
    assert!(leader
        .download_segment("views_REALTIME", "views_REALTIME__0__0")
        .is_err());

    // Past the timeout the survivor is promoted and commits. (Only the
    // survivor ticks — the crashed process is gone.)
    clock.advance(30_001);
    cluster.servers()[1].consume_tick().unwrap();
    assert!(
        leader
            .download_segment("views_REALTIME", "views_REALTIME__0__0")
            .is_ok(),
        "promoted replica must have committed the segment"
    );

    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 10);
}

/// A stalled stream partition: fetches fail (retried, then skipped), the
/// ingestion-lag gauge rises while the stall lasts, and recovery drains
/// the backlog back to lag 0. Queries keep answering with the rows already
/// ingested — a stall degrades freshness, not availability.
#[test]
fn stream_stall_raises_lag_then_recovers() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(1)).unwrap();
    cluster.streams().create_topic("view-events", 1).unwrap();
    cluster
        .create_table(
            TableConfig::realtime(
                "views",
                StreamConfig {
                    topic: "view-events".into(),
                    flush_threshold_rows: 1_000,
                    flush_threshold_millis: i64::MAX / 4,
                },
            ),
            schema(),
        )
        .unwrap();

    for i in 0..5i64 {
        cluster
            .produce("view-events", &Value::Long(i), row(i, "us", 1, 20_000))
            .unwrap();
    }
    cluster.consume_tick().unwrap();
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 5);

    // Stall partition 0: every fetch errors until disarmed.
    let stall = cluster.chaos().arm(
        sites::STREAM_FETCH,
        Fault::fail(PinotError::Io("stream partition unreachable".into()))
            .with_scope(FaultScope::any().partition(0)),
    );
    for i in 5..12i64 {
        cluster
            .produce("view-events", &Value::Long(i), row(i, "us", 1, 20_000))
            .unwrap();
    }
    cluster.consume_tick().unwrap();
    let snap = cluster.metrics_snapshot();
    assert!(snap.counter("server.consume.fetch_failed") >= 1);
    assert_eq!(
        snap.gauge("server.consume.lag.views_REALTIME.p0"),
        Some(7),
        "lag gauge must show the un-ingested backlog"
    );
    // Already-ingested rows still answer.
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 5);

    // Recovery: disarm and tick — the backlog drains.
    cluster.chaos().disarm(stall);
    cluster.consume_tick().unwrap();
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.gauge("server.consume.lag.views_REALTIME.p0"), Some(0));
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 12);
}

/// Metastore CAS flakes during a segment-metadata write: the controller's
/// retry loop absorbs exactly the injected failures and the upload
/// succeeds with no caller-visible error.
#[test]
fn metastore_cas_conflicts_are_retried_transparently() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(1)).unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();

    // Two consecutive CAS failures; the third attempt goes through.
    cluster.chaos().arm(
        sites::METASTORE_CAS,
        Fault::fail(PinotError::Io("zk connection reset".into())).first_n(2),
    );

    cluster
        .upload_rows("views", (0..20).map(|i| row(i, "us", 1, 10)).collect())
        .unwrap();

    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.counter("chaos.fault.injected"), 2);
    assert!(snap.counter("controller.meta.cas_retry") >= 1);
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 20);
}

/// Delay faults slow a site down without failing it — the query still
/// completes (the deadline is generous) and the injection is counted.
#[test]
fn delay_fault_slows_but_does_not_fail() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(1)).unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    cluster
        .upload_rows("views", (0..10).map(|i| row(i, "us", 1, 10)).collect())
        .unwrap();

    cluster
        .chaos()
        .arm(sites::SERVER_EXECUTE, Fault::delay_ms(5).first_n(1));
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 10);
    assert_eq!(
        cluster.metrics_snapshot().counter("chaos.fault.injected"),
        1
    );
}

// ---- chaos under parallel execution (ISSUE 3) ----
//
// The taskpool changed *how* a server runs a request (per-segment pool
// tasks) but must not change *what* chaos faults mean: injection stays
// request-level, and the PR 2 failover/partial-response semantics hold
// verbatim with a multi-thread pool active.

/// Flaky replica with the pool active: Server_1 fails every execute with a
/// retriable error, and failover still recovers a complete response.
#[test]
fn flaky_fault_under_parallel_pool_still_fails_over() {
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(2)
            .with_taskpool_threads(4),
    )
    .unwrap();
    cluster
        .create_table(TableConfig::offline("views").with_replication(2), schema())
        .unwrap();
    for base in [0i64, 100, 200] {
        let rows: Vec<Record> = (0..50).map(|i| row(base + i, "us", 1, 10)).collect();
        cluster.upload_rows("views", rows).unwrap();
    }
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 150);

    cluster.chaos().arm(
        sites::SERVER_EXECUTE,
        Fault::flaky(1.0, 7, PinotError::Io("flaky nic".into()))
            .with_scope(FaultScope::any().instance("Server_1")),
    );
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    let snap = cluster.metrics_snapshot();
    assert!(snap.counter("chaos.fault.injected") >= 1);
    assert!(
        !resp.partial,
        "failover should recover: {:?}",
        resp.exceptions
    );
    assert_eq!(count_of(&resp), 150);
    assert!(snap.counter("broker.scatter.failover_success") >= 1);
    // The recovered query really ran its segment plans as pool tasks.
    assert!(snap.counter("taskpool.tasks_run") > 0);
}

/// Delay with the pool active: a one-shot latency spike on a replicated
/// table is absorbed without going partial.
#[test]
fn delay_fault_under_parallel_pool_does_not_fail() {
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(2)
            .with_taskpool_threads(4),
    )
    .unwrap();
    cluster
        .create_table(TableConfig::offline("views").with_replication(2), schema())
        .unwrap();
    for base in [0i64, 100] {
        let rows: Vec<Record> = (0..50).map(|i| row(base + i, "us", 1, 10)).collect();
        cluster.upload_rows("views", rows).unwrap();
    }

    cluster
        .chaos()
        .arm(sites::SERVER_EXECUTE, Fault::delay_ms(5).first_n(1));
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 100);
    assert!(cluster.metrics_snapshot().counter("chaos.fault.injected") >= 1);
}

/// A delay that eats the whole query deadline: by the time the server fans
/// out, the deadline has passed, so its queued per-segment tasks are
/// *cancelled* — never run — and the cancellations show up in the new
/// taskpool counters alongside the server's deadline-abandonment counter.
#[test]
fn deadline_expiry_cancels_queued_segment_tasks() {
    // Threshold 0 pins the fan-out gate open: this corpus is far below
    // the default gate and would otherwise run inline with no pool tasks
    // to cancel.
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(1)
            .with_taskpool_threads(2)
            .with_fanout_threshold_ns(0),
    )
    .unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    for base in [0i64, 100, 200] {
        let rows: Vec<Record> = (0..30).map(|i| row(base + i, "us", 1, 10)).collect();
        cluster.upload_rows("views", rows).unwrap();
    }

    // The delay fires at request admission (request-level chaos site),
    // after which the 10ms deadline has long passed.
    cluster
        .chaos()
        .arm(sites::SERVER_EXECUTE, Fault::delay_ms(50).first_n(1));
    let req = QueryRequest::new("SELECT COUNT(*) FROM views").with_timeout_ms(10);
    let resp = cluster.execute(&req);
    assert!(resp.partial, "deadline expiry must surface as partial");
    assert!(!resp.exceptions.is_empty());

    let snap = cluster.metrics_snapshot();
    assert!(
        snap.counter("taskpool.tasks_cancelled") >= 3,
        "all three queued segment tasks should be abandoned, got {}",
        snap.counter("taskpool.tasks_cancelled")
    );
    assert!(snap.counter("server.exec.deadline_abandoned") >= 1);

    // The cluster is healthy again once the fault budget is spent.
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 90);
}

/// Morsel-level deadline discipline (ISSUE 8): with fan-out forced and a
/// single 5000-row segment split into five 1024-doc morsels, a delay
/// fault at the morsel chaos site stalls every executing worker past the
/// query deadline. The still-queued morsels must be *abandoned* — never
/// run — surfacing as taskpool cancellations and the server's
/// deadline-abandonment counter, and no partially-merged morsel result
/// may leak into the response.
#[test]
fn delayed_morsel_abandons_queued_morsels_at_deadline() {
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(1)
            .with_taskpool_threads(2)
            // Gate open + minimum morsel size: the one segment below must
            // split into ⌈5000/1024⌉ = 5 morsels and fan out.
            .with_fanout_threshold_ns(0)
            .with_morsel_docs(1024),
    )
    .unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    let rows: Vec<Record> = (0..5000).map(|i| row(i, "us", 1, 10)).collect();
    cluster.upload_rows("views", rows).unwrap();

    // Every morsel sleeps 30ms against a 10ms deadline. At most three
    // threads can execute morsels concurrently (two workers plus the
    // scope owner helping), and each blocks well past the deadline on its
    // first morsel — so at least two of the five morsels are still queued
    // when the deadline passes and must be cancelled at dequeue.
    cluster.chaos().arm(sites::EXEC_MORSEL, Fault::delay_ms(30));
    // SUM forces a raw column scan — a bare COUNT(*) would be answered
    // from segment metadata without ever reaching the morsel plane.
    let req = QueryRequest::new("SELECT COUNT(*), SUM(clicks) FROM views").with_timeout_ms(10);
    let resp = cluster.execute(&req);
    assert!(
        resp.partial,
        "morsel deadline expiry must surface as partial"
    );
    assert!(!resp.exceptions.is_empty());
    // No partial merge may leak: the segment's morsels did scan rows, but
    // an abandoned morsel poisons the whole segment result, so nothing a
    // completed morsel counted can reach the response.
    assert!(
        count_of(&resp) <= 0,
        "partially-merged morsel result leaked into the response: {:?}",
        resp.result
    );

    let snap = cluster.metrics_snapshot();
    assert!(
        snap.counter("taskpool.tasks_cancelled") >= 1,
        "queued morsels should be cancelled at dequeue, got {}",
        snap.counter("taskpool.tasks_cancelled")
    );
    assert!(
        snap.counter("server.exec.deadline_abandoned") >= 1,
        "abandoned morsel must be counted"
    );
    assert!(
        snap.counter("exec.morsels_split") >= 5,
        "the segment should have fanned out into five morsels"
    );

    // Disarm and the same query completes exactly — the abandoned morsels
    // left no residue in any accumulator.
    cluster.chaos().clear();
    let resp = cluster.query("SELECT COUNT(*), SUM(clicks) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 5000);
}
