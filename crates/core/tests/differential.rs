//! Differential testing of the Pinot execution stack (ISSUE 3 satellite).
//!
//! A seeded generator builds one synthetic table and a few hundred PQL
//! queries covering selections, filters over dimensions/metrics/time,
//! group-bys, top-n, and multi-value columns. Every query runs against
//! both
//!
//! * the full Pinot cluster (broker parse → route → scatter → server
//!   taskpool fan-out → merge → finalize), and
//! * the baseline engine (`pinot-baseline`'s Druid-style historicals),
//!
//! and the results must agree. Metrics are integer-valued so f64
//! aggregation is exact regardless of merge order, making exact
//! cross-engine equality meaningful.
//!
//! A second suite re-runs the same queries on 1-thread vs N-thread task
//! pools and demands *byte-identical* results — the taskpool's
//! slot-ordered merge guarantee. A proptest checks the underlying
//! algebra: merging aggregation states is associative/commutative versus
//! a sequential fold oracle.

use pinot_baseline::DruidEngine;
use pinot_common::config::TableConfig;
use pinot_common::query::{QueryRequest, QueryResponse, QueryResult};
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_core::{ClusterConfig, PinotCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TABLE: &str = "diffevents";
const NUM_ROWS: usize = 600;
const ROWS_PER_SEGMENT: usize = 97;
/// Large enough that no generated selection is truncated, so row-set
/// comparison is not sensitive to which rows an engine keeps.
const SELECTION_LIMIT: usize = 5000;

const COUNTRIES: &[&str] = &["us", "de", "in", "br", "jp", "fr", "cn", "gb"];
const DEVICES: &[&str] = &["ios", "android", "web", "tv"];
const TAGS: &[&str] = &["a", "b", "c", "d", "e", "f"];
const DAY_LO: i64 = 100;
const DAY_HI: i64 = 129;

fn schema() -> Schema {
    Schema::new(
        TABLE,
        vec![
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::dimension("device", DataType::String),
            FieldSpec::multi_value_dimension("tags", DataType::String),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::metric("cost", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn gen_rows(seed: u64) -> Vec<Record> {
    gen_rows_n(seed, NUM_ROWS)
}

fn gen_rows_n(seed: u64, n: usize) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let ntags = rng.gen_range(1..=3usize);
            let mut tags: Vec<String> = Vec::with_capacity(ntags);
            while tags.len() < ntags {
                let t = TAGS[rng.gen_range(0..TAGS.len())].to_string();
                if !tags.contains(&t) {
                    tags.push(t);
                }
            }
            Record::new(vec![
                Value::from(COUNTRIES[rng.gen_range(0..COUNTRIES.len())]),
                Value::from(DEVICES[rng.gen_range(0..DEVICES.len())]),
                Value::StringArray(tags),
                Value::Long(rng.gen_range(0..50i64)),
                Value::Long(rng.gen_range(1..1000i64)),
                Value::Long(rng.gen_range(DAY_LO..=DAY_HI)),
            ])
        })
        .collect()
}

// ---- seeded PQL generator ----

fn str_list(rng: &mut StdRng, pool: &[&str], max: usize) -> String {
    let n = rng.gen_range(1..=max.min(pool.len()));
    let mut picked: Vec<&str> = Vec::new();
    while picked.len() < n {
        let c = pool[rng.gen_range(0..pool.len())];
        if !picked.contains(&c) {
            picked.push(c);
        }
    }
    picked
        .iter()
        .map(|c| format!("'{c}'"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_predicate(rng: &mut StdRng, depth: usize) -> String {
    if depth > 0 && rng.gen_range(0..100) < 40 {
        let a = gen_predicate(rng, depth - 1);
        let b = gen_predicate(rng, depth - 1);
        let op = if rng.gen_range(0..2) == 0 {
            "AND"
        } else {
            "OR"
        };
        return format!("({a} {op} {b})");
    }
    if depth > 0 && rng.gen_range(0..100) < 10 {
        return format!("NOT {}", gen_predicate(rng, depth - 1));
    }
    match rng.gen_range(0..9) {
        0 => {
            let op = ["=", "!="][rng.gen_range(0..2usize)];
            format!(
                "country {op} '{}'",
                COUNTRIES[rng.gen_range(0..COUNTRIES.len())]
            )
        }
        // Selective probes outside the generated data: zone maps and time
        // stats can prove these empty (ISSUE 5), and every engine must
        // agree they match nothing.
        7 => {
            let day = [DAY_LO - 1, DAY_HI + 1][rng.gen_range(0..2usize)];
            let op = ["=", "<", ">"][rng.gen_range(0..3usize)];
            format!("day {op} {day}")
        }
        // Absent countries: 'aa'/'zz' sit outside the lexicographic zone
        // map; 'ca' is inside it, so only a bloom filter can prune it.
        8 => format!(
            "country = '{}'",
            ["aa", "ca", "zz"][rng.gen_range(0..3usize)]
        ),
        1 => format!("country IN ({})", str_list(rng, COUNTRIES, 4)),
        2 => format!("device NOT IN ({})", str_list(rng, DEVICES, 2)),
        // Multi-value semantics: matches if any element matches.
        3 => format!("tags = '{}'", TAGS[rng.gen_range(0..TAGS.len())]),
        4 => {
            let op = ["<", "<=", ">", ">="][rng.gen_range(0..4usize)];
            format!("clicks {op} {}", rng.gen_range(0..50i64))
        }
        5 => {
            let lo = rng.gen_range(DAY_LO..=DAY_HI);
            let hi = rng.gen_range(lo..=DAY_HI);
            format!("day BETWEEN {lo} AND {hi}")
        }
        _ => {
            let op = ["<", ">=", "="][rng.gen_range(0..3usize)];
            format!("day {op} {}", rng.gen_range(DAY_LO..=DAY_HI + 1))
        }
    }
}

fn gen_aggs(rng: &mut StdRng) -> String {
    const AGGS: &[&str] = &[
        "COUNT(*)",
        "SUM(clicks)",
        "SUM(cost)",
        "MIN(cost)",
        "MAX(clicks)",
        "AVG(cost)",
        "DISTINCTCOUNT(country)",
        "DISTINCTCOUNT(device)",
    ];
    let n = rng.gen_range(1..=3usize);
    let mut picked: Vec<&str> = Vec::new();
    while picked.len() < n {
        let a = AGGS[rng.gen_range(0..AGGS.len())];
        if !picked.contains(&a) {
            picked.push(a);
        }
    }
    picked.join(", ")
}

fn gen_query(rng: &mut StdRng) -> String {
    let where_clause = if rng.gen_range(0..100) < 75 {
        format!(" WHERE {}", gen_predicate(rng, 2))
    } else {
        String::new()
    };
    match rng.gen_range(0..10) {
        // Selections with a limit past the table size (see SELECTION_LIMIT).
        0 | 1 => {
            const COLS: &[&str] = &["country", "device", "tags", "clicks", "cost", "day"];
            let n = rng.gen_range(1..=3usize);
            let mut cols: Vec<&str> = Vec::new();
            while cols.len() < n {
                let c = COLS[rng.gen_range(0..COLS.len())];
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            format!(
                "SELECT {} FROM {TABLE}{where_clause} LIMIT {SELECTION_LIMIT}",
                cols.join(", ")
            )
        }
        // Group-bys, sometimes truncated by a small TOP (both engines share
        // finalize's deterministic value-then-key ordering, so equal data
        // means equal truncation).
        2..=5 => {
            const GROUPS: &[&str] = &["country", "device", "tags", "day"];
            let n = rng.gen_range(1..=2usize);
            let mut cols: Vec<&str> = Vec::new();
            while cols.len() < n {
                let c = GROUPS[rng.gen_range(0..GROUPS.len())];
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            let top = match rng.gen_range(0..3) {
                0 => format!(" TOP {}", rng.gen_range(1..=5)),
                1 => " TOP 1000".to_string(),
                _ => String::new(),
            };
            format!(
                "SELECT {} FROM {TABLE}{where_clause} GROUP BY {}{top}",
                gen_aggs(rng),
                cols.join(", ")
            )
        }
        // Plain aggregations.
        _ => format!("SELECT {} FROM {TABLE}{where_clause}", gen_aggs(rng)),
    }
}

// ---- comparison ----

/// Selection rows are compared as unordered multisets: engines visit
/// segments in different orders and neither order is part of the contract.
/// Aggregations and group-bys come out of the shared `finalize` in a
/// deterministic order and are compared verbatim.
fn normalize(result: &QueryResult) -> QueryResult {
    match result {
        QueryResult::Selection { columns, rows } => {
            let mut rows = rows.clone();
            rows.sort_by_key(|r| format!("{r:?}"));
            QueryResult::Selection {
                columns: columns.clone(),
                rows,
            }
        }
        other => other.clone(),
    }
}

fn assert_same(pql: &str, pinot: &QueryResponse, baseline: &QueryResponse) {
    assert!(
        !pinot.partial && pinot.exceptions.is_empty(),
        "pinot returned partial/failed for {pql}: {:?}",
        pinot.exceptions
    );
    assert_eq!(
        normalize(&pinot.result),
        normalize(&baseline.result),
        "engines disagree on {pql}"
    );
}

fn start_cluster(rows: &[Record], threads: Option<usize>) -> PinotCluster {
    let mut config = ClusterConfig::default().with_servers(3);
    if let Some(t) = threads {
        config = config.with_taskpool_threads(t);
    }
    let cluster = PinotCluster::start(config).unwrap();
    cluster
        .create_table(TableConfig::offline(TABLE).with_replication(2), schema())
        .unwrap();
    for chunk in rows.chunks(ROWS_PER_SEGMENT) {
        cluster.upload_rows(TABLE, chunk.to_vec()).unwrap();
    }
    cluster
}

/// ≥200 seeded cases: the full Pinot stack vs the baseline engine on the
/// same generated table.
#[test]
fn pinot_matches_baseline_on_generated_queries() {
    const SEEDS: &[u64] = &[11, 23, 57, 91];
    const QUERIES_PER_SEED: usize = 60;

    for &seed in SEEDS {
        let rows = gen_rows(seed);
        let cluster = start_cluster(&rows, None);
        let mut baseline = DruidEngine::new(3);
        baseline
            .load_table(TABLE, schema(), rows, ROWS_PER_SEGMENT)
            .unwrap();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xd1f);
        for case in 0..QUERIES_PER_SEED {
            let pql = gen_query(&mut rng);
            let req = QueryRequest::new(&pql);
            let pinot = cluster.execute(&req);
            let druid = baseline
                .execute(&req)
                .unwrap_or_else(|e| panic!("baseline failed seed {seed} case {case} {pql}: {e}"));
            assert_same(&pql, &pinot, &druid);
        }
    }
}

/// Determinism: the same query on the same single-server cluster must give
/// byte-identical results (including row and group order) on a 1-thread
/// pool and an N-thread pool — the taskpool's slot-ordered merge makes
/// thread count unobservable.
#[test]
fn parallel_results_are_byte_identical_to_single_thread() {
    const SEED: u64 = 42;
    const CASES: usize = 80;

    let rows = gen_rows(SEED);
    // Threshold 0 pins the cost gate open so this corpus — far below the
    // default gate — still exercises the pool fan-out it is meant to test.
    let build = |threads: usize| {
        let mut config = ClusterConfig::default()
            .with_servers(1)
            .with_taskpool_threads(threads)
            .with_fanout_threshold_ns(0);
        config.num_controllers = 1;
        let c = PinotCluster::start(config).unwrap();
        c.create_table(TableConfig::offline(TABLE), schema())
            .unwrap();
        for chunk in rows.chunks(ROWS_PER_SEGMENT) {
            c.upload_rows(TABLE, chunk.to_vec()).unwrap();
        }
        c
    };
    let sequential = build(1);
    let parallel = build(4);

    let mut rng = StdRng::seed_from_u64(SEED ^ 0xbeef);
    for _ in 0..CASES {
        let pql = gen_query(&mut rng);
        let req = QueryRequest::new(&pql);
        let seq = sequential.execute(&req);
        let par = parallel.execute(&req);
        assert!(!seq.partial && !par.partial, "partial response for {pql}");
        // Verbatim equality — not normalized — is the whole point.
        assert_eq!(seq.result, par.result, "thread count observable via {pql}");
    }

    // The parallel cluster really did run segment plans on pool workers.
    let snap = parallel.metrics_snapshot();
    assert!(snap.counter("taskpool.tasks_run") > 0);
    assert!(snap.histogram("server.exec.segment_ms").is_some());
}

/// Morsel determinism matrix (ISSUE 8): {1, 2, 4, 8} threads ×
/// {row, batch} kernels, with 1024-doc morsels forced on a corpus big
/// enough that every broad selection splits into several morsels per
/// segment. Every cell must agree *byte-for-byte* with the
/// 1-thread/row-path reference cell — results verbatim, and the
/// deterministic `ExecutionStats` totals too — so neither thread count,
/// morsel scheduling, nor the kernel choice is observable.
#[test]
fn morsel_thread_matrix_is_byte_identical() {
    const SEED: u64 = 8;
    const CASES: usize = 40;
    // Below SELECTION_LIMIT so no selection is ever truncated, while each
    // 2400-row segment still splits into three 1024-doc morsels.
    const ROWS: usize = 4800;
    const SEG_ROWS: usize = 2400;

    let rows = gen_rows_n(SEED, ROWS);
    let build = |threads: usize, batch: bool| {
        let mut config = ClusterConfig::default()
            .with_servers(1)
            .with_taskpool_threads(threads)
            .with_exec_batch(batch)
            // Force multi-morsel execution regardless of the calibrated
            // cost model: gate open, morsels at the minimum block size.
            .with_fanout_threshold_ns(0)
            .with_morsel_docs(1024);
        config.num_controllers = 1;
        let c = PinotCluster::start(config).unwrap();
        c.create_table(TableConfig::offline(TABLE), schema())
            .unwrap();
        for chunk in rows.chunks(SEG_ROWS) {
            c.upload_rows(TABLE, chunk.to_vec()).unwrap();
        }
        c
    };

    let queries: Vec<String> = {
        let mut rng = StdRng::seed_from_u64(SEED ^ 0x305e1);
        (0..CASES).map(|_| gen_query(&mut rng)).collect()
    };

    let reference = build(1, false);
    let ref_responses: Vec<QueryResponse> = queries
        .iter()
        .map(|pql| reference.execute(&QueryRequest::new(pql)))
        .collect();
    for (pql, resp) in queries.iter().zip(&ref_responses) {
        assert!(
            !resp.partial && resp.exceptions.is_empty(),
            "reference cell failed {pql}: {:?}",
            resp.exceptions
        );
    }

    for &threads in &[1usize, 2, 4, 8] {
        for &batch in &[false, true] {
            if threads == 1 && !batch {
                continue; // the reference cell itself
            }
            let cell = build(threads, batch);
            for (pql, reference) in queries.iter().zip(&ref_responses) {
                let got = cell.execute(&QueryRequest::new(pql));
                assert!(
                    !got.partial && got.exceptions.is_empty(),
                    "cell t={threads} batch={batch} failed {pql}: {:?}",
                    got.exceptions
                );
                // Verbatim equality: same rows, same order, same floats.
                assert_eq!(
                    got.result, reference.result,
                    "t={threads} batch={batch} observable via {pql}"
                );
                // The deterministic stats totals must agree across the
                // whole matrix too — morsels may change *scheduling*, not
                // what was scanned.
                assert_eq!(
                    got.stats.num_docs_scanned, reference.stats.num_docs_scanned,
                    "docs-scanned drift t={threads} batch={batch} on {pql}"
                );
                assert_eq!(
                    got.stats.num_entries_scanned_in_filter,
                    reference.stats.num_entries_scanned_in_filter,
                    "filter-entries drift t={threads} batch={batch} on {pql}"
                );
                assert_eq!(
                    got.stats.num_entries_scanned_post_filter,
                    reference.stats.num_entries_scanned_post_filter,
                    "post-filter-entries drift t={threads} batch={batch} on {pql}"
                );
                assert_eq!(
                    got.stats.total_docs, reference.stats.total_docs,
                    "total-docs drift t={threads} batch={batch} on {pql}"
                );
            }
            // Each cell genuinely split work into morsels — the matrix is
            // meaningless if everything quietly took the single-morsel path.
            let snap = cell.metrics_snapshot();
            assert!(
                snap.counter("exec.morsels_split") > 0,
                "cell t={threads} batch={batch} never fanned morsels out"
            );
        }
    }
}

/// Batched vs row-at-a-time execution (ISSUE 4): the dict-id block
/// kernels must be *byte-identical* to the legacy row path — same rows,
/// same group order, same float accumulation order — across ≥240
/// generated queries, on both a sequential and a multi-thread pool.
#[test]
fn batch_results_are_byte_identical_to_row_path() {
    const SEEDS: &[u64] = &[11, 23, 57, 91];
    const QUERIES_PER_SEED: usize = 60;

    for &threads in &[1usize, 4] {
        for &seed in SEEDS {
            let rows = gen_rows(seed);
            let build = |batch: bool| {
                let mut config = ClusterConfig::default()
                    .with_servers(1)
                    .with_taskpool_threads(threads)
                    .with_exec_batch(batch);
                config.num_controllers = 1;
                let c = PinotCluster::start(config).unwrap();
                c.create_table(TableConfig::offline(TABLE), schema())
                    .unwrap();
                for chunk in rows.chunks(ROWS_PER_SEGMENT) {
                    c.upload_rows(TABLE, chunk.to_vec()).unwrap();
                }
                c
            };
            let batched = build(true);
            let row = build(false);

            let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c);
            for case in 0..QUERIES_PER_SEED {
                let pql = gen_query(&mut rng);
                let req = QueryRequest::new(&pql);
                let b = batched.execute(&req);
                let r = row.execute(&req);
                assert!(
                    !b.partial && b.exceptions.is_empty(),
                    "batched partial/failed seed {seed} case {case} {pql}: {:?}",
                    b.exceptions
                );
                // Verbatim equality, stats included below: the batch
                // kernels must be unobservable except in speed.
                assert_eq!(
                    b.result, r.result,
                    "batch path observable via seed {seed} case {case} {pql}"
                );
                assert_eq!(
                    b.stats.num_docs_scanned, r.stats.num_docs_scanned,
                    "docs-scanned drift on {pql}"
                );
                assert_eq!(
                    b.stats.num_entries_scanned_in_filter, r.stats.num_entries_scanned_in_filter,
                    "filter-entries drift on {pql}"
                );
                assert_eq!(
                    b.stats.num_entries_scanned_post_filter,
                    r.stats.num_entries_scanned_post_filter,
                    "post-filter-entries drift on {pql}"
                );
            }

            // The clusters really did run different engines, and the
            // batch kernels emitted their obs counters.
            let bsnap = batched.metrics_snapshot();
            assert!(bsnap.counter("exec.batch_segments") > 0);
            assert!(bsnap.counter("exec.blocks_decoded") > 0);
            let rsnap = row.metrics_snapshot();
            assert!(rsnap.counter("exec.row_segments") > 0);
            assert_eq!(rsnap.counter("exec.blocks_decoded"), 0);
        }
    }
}

/// Zone-map/bloom pruning (ISSUE 5): with pruning forced on vs off, every
/// generated query must return *byte-identical* results — pruning may only
/// skip work the filter provably makes irrelevant — and the stats must stay
/// consistent: the same segments queried, with
/// `queried == processed + pruned` holding at every setting.
#[test]
fn prune_results_are_byte_identical_to_unpruned() {
    const SEEDS: &[u64] = &[11, 23, 57, 91];
    const QUERIES_PER_SEED: usize = 60;

    for &seed in SEEDS {
        let rows = gen_rows(seed);
        // One server: multi-server gather appends selection rows in
        // completion order, which is timing-dependent with or without
        // pruning; per-server slot-ordered merge is deterministic, which
        // is what makes byte-identity a meaningful contract here.
        let build = |prune: bool| {
            let mut config = ClusterConfig::default()
                .with_servers(1)
                .with_taskpool_threads(2)
                .with_exec_prune(prune);
            config.num_controllers = 1;
            let c = PinotCluster::start(config).unwrap();
            c.create_table(
                TableConfig::offline(TABLE).with_bloom_filters(&["country", "device"]),
                schema(),
            )
            .unwrap();
            for chunk in rows.chunks(ROWS_PER_SEGMENT) {
                c.upload_rows(TABLE, chunk.to_vec()).unwrap();
            }
            c
        };
        let pruned = build(true);
        let unpruned = build(false);

        let mut rng = StdRng::seed_from_u64(seed ^ 0x9a3e);
        for case in 0..QUERIES_PER_SEED {
            let pql = gen_query(&mut rng);
            let req = QueryRequest::new(&pql);
            let p = pruned.execute(&req);
            let u = unpruned.execute(&req);
            assert!(
                !p.partial && p.exceptions.is_empty(),
                "pruned partial/failed seed {seed} case {case} {pql}: {:?}",
                p.exceptions
            );
            assert_eq!(
                p.result, u.result,
                "pruning observable via seed {seed} case {case} {pql}"
            );
            // Pruned segments are counted, not hidden: both settings see
            // the same universe of segments and docs, and the accounting
            // identity holds at both.
            assert_eq!(
                p.stats.num_segments_queried, u.stats.num_segments_queried,
                "segments-queried drift on {pql}"
            );
            assert_eq!(
                p.stats.total_docs, u.stats.total_docs,
                "total-docs drift on {pql}"
            );
            for (label, s) in [("pruned", &p.stats), ("unpruned", &u.stats)] {
                assert_eq!(
                    s.num_segments_queried,
                    s.num_segments_processed + s.num_segments_pruned,
                    "{label} stats unbalanced on {pql}: {s:?}"
                );
            }
            assert_eq!(
                u.stats.num_segments_pruned, 0,
                "unpruned cluster pruned segments on {pql}"
            );
        }

        // Pruning really happened — time/zone-map prunes fired (the
        // generator emits out-of-range day filters) and bloom filters
        // were probed for in-range equality filters.
        let psnap = pruned.metrics_snapshot();
        let pruned_total = psnap.counter("prune.time_segments")
            + psnap.counter("prune.zonemap_segments")
            + psnap.counter("prune.bloom_segments");
        assert!(pruned_total > 0, "no segments pruned across the suite");
        assert!(psnap.counter("prune.bloom_probes") > 0);
        let usnap = unpruned.metrics_snapshot();
        assert_eq!(usnap.counter("prune.time_segments"), 0);
        assert_eq!(usnap.counter("prune.zonemap_segments"), 0);
        assert_eq!(usnap.counter("prune.bloom_probes"), 0);
    }
}

/// Access-path strategy matrix (ISSUE 9): the cost-based planner's choice
/// of inverted probe vs sorted binary search vs scan is a pure performance
/// decision, so every cell of {auto, forced scan, forced inverted, forced
/// sorted} × {row, batch} × {1, 4 threads} must return *byte-identical*
/// results on an indexed table. Strategy-invariant stats (docs scanned,
/// post-filter entries, segment accounting) must agree across the matrix
/// too; only `num_entries_scanned_in_filter` may differ — that's the
/// entire point of picking a cheaper access path.
#[test]
fn planner_strategy_matrix_is_byte_identical() {
    use pinot_core::exec::PlannerMode;

    const SEED: u64 = 19;
    const CASES: usize = 40;

    let rows = gen_rows(SEED);
    let build = |mode: PlannerMode, batch: bool, threads: usize| {
        let mut config = ClusterConfig::default()
            .with_servers(1)
            .with_taskpool_threads(threads)
            .with_exec_batch(batch)
            .with_exec_planner(mode);
        config.num_controllers = 1;
        let c = PinotCluster::start(config).unwrap();
        // Sorted day + inverted country/device so every access path has
        // real structure to pick (and the forced modes aren't all no-ops).
        c.create_table(
            TableConfig::offline(TABLE)
                .with_sorted_column("day")
                .with_inverted_indexes(&["country", "device"]),
            schema(),
        )
        .unwrap();
        for chunk in rows.chunks(ROWS_PER_SEGMENT) {
            c.upload_rows(TABLE, chunk.to_vec()).unwrap();
        }
        c
    };

    let queries: Vec<String> = {
        let mut rng = StdRng::seed_from_u64(SEED ^ 0x91a);
        (0..CASES).map(|_| gen_query(&mut rng)).collect()
    };

    let reference = build(PlannerMode::Scan, false, 1);
    let ref_responses: Vec<QueryResponse> = queries
        .iter()
        .map(|pql| reference.execute(&QueryRequest::new(pql)))
        .collect();
    for (pql, resp) in queries.iter().zip(&ref_responses) {
        assert!(
            !resp.partial && resp.exceptions.is_empty(),
            "reference cell failed {pql}: {:?}",
            resp.exceptions
        );
    }

    for mode in [
        PlannerMode::Auto,
        PlannerMode::Scan,
        PlannerMode::Inverted,
        PlannerMode::Sorted,
    ] {
        for &batch in &[false, true] {
            for &threads in &[1usize, 4] {
                if mode == PlannerMode::Scan && !batch && threads == 1 {
                    continue; // the reference cell itself
                }
                let cell = build(mode, batch, threads);
                for (pql, reference) in queries.iter().zip(&ref_responses) {
                    let got = cell.execute(&QueryRequest::new(pql));
                    assert!(
                        !got.partial && got.exceptions.is_empty(),
                        "cell {mode:?} batch={batch} t={threads} failed {pql}: {:?}",
                        got.exceptions
                    );
                    assert_eq!(
                        got.result, reference.result,
                        "access path observable via {mode:?} batch={batch} t={threads} on {pql}"
                    );
                    // Strategy-invariant stats: what matched and what the
                    // aggregation read never depends on the access path.
                    assert_eq!(
                        got.stats.num_docs_scanned, reference.stats.num_docs_scanned,
                        "docs-scanned drift {mode:?} batch={batch} on {pql}"
                    );
                    assert_eq!(
                        got.stats.num_entries_scanned_post_filter,
                        reference.stats.num_entries_scanned_post_filter,
                        "post-filter drift {mode:?} batch={batch} on {pql}"
                    );
                    assert_eq!(
                        got.stats.total_docs, reference.stats.total_docs,
                        "total-docs drift {mode:?} batch={batch} on {pql}"
                    );
                    assert_eq!(
                        got.stats.num_segments_queried,
                        got.stats.num_segments_processed + got.stats.num_segments_pruned,
                        "segment accounting unbalanced {mode:?} on {pql}"
                    );
                }
                // Each cell really planned what it was told to: forced scan
                // never touches an index; auto uses all three paths on this
                // corpus (equality on inverted columns, ranges on the
                // sorted time column, metric predicates that only scan).
                let snap = cell.metrics_snapshot();
                let inverted = snap.counter("exec.plan_inverted");
                let sorted = snap.counter("exec.plan_sorted");
                let scan = snap.counter("exec.plan_scan");
                match mode {
                    PlannerMode::Scan => {
                        assert_eq!(inverted + sorted, 0, "forced scan used an index");
                        assert!(scan > 0);
                    }
                    PlannerMode::Auto => {
                        assert!(
                            inverted > 0 && sorted > 0 && scan > 0,
                            "auto should exercise every path: inv={inverted} sort={sorted} scan={scan}"
                        );
                        assert!(
                            snap.counter("exec.plan_index_and")
                                + snap.counter("exec.plan_index_or")
                                > 0,
                            "auto never took a bulk index operator"
                        );
                    }
                    PlannerMode::Inverted => assert!(inverted > 0),
                    PlannerMode::Sorted => assert!(sorted > 0),
                }
            }
        }
    }
}

// ---- survival layer (ISSUE 7): all knobs on vs all knobs off ----

/// Hedging, admission control, and the result cache are pure availability
/// mechanisms: with every knob on, the answer to any query must be
/// byte-identical to a cluster with every knob off. Cache hits replay the
/// exact payload the leader computed; hedge winners carry the same segment
/// slice as the primary they replace; generous untuned admission limits
/// admit everything. 4 seeds × 60 queries = 240 cases.
#[test]
fn survival_knobs_are_byte_invisible() {
    const SEEDS: &[u64] = &[11, 23, 57, 91];
    const QUERIES_PER_SEED: usize = 60;

    for &seed in SEEDS {
        let rows = gen_rows(seed);
        // One server for the same reason as the prune suite: multi-server
        // selection gather is completion-ordered, which would make
        // byte-identity timing-dependent rather than knob-dependent.
        let build = |on: bool| {
            let mut config = ClusterConfig::default()
                .with_servers(1)
                .with_taskpool_threads(2)
                .with_exec_hedge(on)
                .with_admission(on)
                .with_result_cache(on);
            config.num_controllers = 1;
            let c = PinotCluster::start(config).unwrap();
            c.create_table(TableConfig::offline(TABLE), schema())
                .unwrap();
            for chunk in rows.chunks(ROWS_PER_SEGMENT) {
                c.upload_rows(TABLE, chunk.to_vec()).unwrap();
            }
            c
        };
        let armored = build(true);
        let bare = build(false);

        let mut rng = StdRng::seed_from_u64(seed ^ 0x51f7);
        for case in 0..QUERIES_PER_SEED {
            let pql = gen_query(&mut rng);
            let req = QueryRequest::new(&pql);
            let a = armored.execute(&req);
            let b = bare.execute(&req);
            assert!(
                !a.partial && a.exceptions.is_empty(),
                "armored partial/failed seed {seed} case {case} {pql}: {:?}",
                a.exceptions
            );
            assert!(
                !b.partial && b.exceptions.is_empty(),
                "bare partial/failed seed {seed} case {case} {pql}: {:?}",
                b.exceptions
            );
            assert_eq!(
                a.result, b.result,
                "survival knobs observable via seed {seed} case {case} {pql}"
            );
        }

        // The bare cluster ran with everything off — nothing cached,
        // nothing hedged, nothing queued or shed.
        let bsnap = bare.metrics_snapshot();
        for metric in [
            "broker.cache_hit",
            "broker.cache_miss",
            "broker.cache_coalesced",
            "broker.hedge_issued",
            "broker.admission_queued",
            "broker.admission_shed",
        ] {
            assert_eq!(bsnap.counter(metric), 0, "{metric} fired with knobs off");
        }
        // The armored cluster's cache really engaged: every query at
        // least consulted it (the generator repeats some shapes, so both
        // hits and misses occur across a seed).
        let asnap = armored.metrics_snapshot();
        assert_eq!(
            asnap.counter("broker.cache_hit") + asnap.counter("broker.cache_miss"),
            QUERIES_PER_SEED as u64,
            "every query should consult the result cache"
        );
        assert_eq!(asnap.counter("broker.admission_shed"), 0);
    }
}

// ---- merge algebra: pooled pairwise merges vs a sequential fold ----

mod merge_algebra {
    use pinot_core::exec::AggState;
    use pinot_pql::AggFunction;
    use proptest::prelude::*;

    const FUNCTIONS: &[AggFunction] = &[
        AggFunction::Count,
        AggFunction::Sum,
        AggFunction::Min,
        AggFunction::Max,
        AggFunction::Avg,
    ];

    fn state_of(f: AggFunction, values: &[i64]) -> AggState {
        let mut s = AggState::new(f);
        for &v in values {
            s.accept_numeric(v as f64);
        }
        s
    }

    fn merged(f: AggFunction, parts: &[&[i64]]) -> f64 {
        let mut acc = AggState::new(f);
        for p in parts {
            acc.merge(state_of(f, p)).unwrap();
        }
        acc.finalize_f64()
    }

    proptest! {
        /// merge(fold(a), fold(b)) == fold(a ++ b): any split of the rows
        /// into partials gives the fold oracle's answer.
        #[test]
        fn merge_agrees_with_fold_oracle(
            a in prop::collection::vec(0i64..1000, 0..30),
            b in prop::collection::vec(0i64..1000, 0..30),
            c in prop::collection::vec(0i64..1000, 0..30),
        ) {
            for &f in FUNCTIONS {
                let mut all = a.clone();
                all.extend_from_slice(&b);
                all.extend_from_slice(&c);
                // Skip empty MIN/MAX/AVG: finalize of "no rows" is a
                // sentinel the oracle can't fold to.
                if all.is_empty() {
                    continue;
                }
                let oracle = state_of(f, &all).finalize_f64();
                prop_assert_eq!(merged(f, &[&a, &b, &c]), oracle);
            }
        }

        /// Commutativity and associativity of the pairwise merge, which is
        /// what lets the pool combine partials in slot order rather than
        /// completion order without changing the answer.
        #[test]
        fn merge_is_commutative_and_associative(
            a in prop::collection::vec(0i64..1000, 1..30),
            b in prop::collection::vec(1i64..1000, 1..30),
            c in prop::collection::vec(0i64..1000, 1..30),
        ) {
            for &f in FUNCTIONS {
                let ab_c = merged(f, &[&a, &b, &c]);
                let c_ba = merged(f, &[&c, &b, &a]);
                let b_ac = merged(f, &[&b, &a, &c]);
                prop_assert_eq!(ab_c, c_ba);
                prop_assert_eq!(ab_c, b_ac);
            }
        }

        /// Worker-slot permutation invariance (ISSUE 8): morsel execution
        /// accumulates partials into per-worker slots, and which worker
        /// ends up holding which partial is a scheduling accident. Merging
        /// the slots under *any* seeded permutation must finalize to the
        /// same answer as slot order — the integer-valued inputs make the
        /// f64 accumulation exact, so equality is literal, not approximate.
        #[test]
        fn partial_merge_is_invariant_under_slot_permutation(
            slots in prop::collection::vec(
                prop::collection::vec(0i64..1000, 0..25), 1..9),
            perm_seed in 0u64..1_000_000,
        ) {
            use rand::rngs::StdRng;
            use rand::{SeedableRng, SliceRandom};

            if slots.iter().all(|s| s.is_empty()) {
                // finalize of "no rows" is a sentinel; covered elsewhere.
                return Ok(());
            }
            let mut order: Vec<usize> = (0..slots.len()).collect();
            order.shuffle(&mut StdRng::seed_from_u64(perm_seed));
            for &f in FUNCTIONS {
                let in_slot_order: Vec<&[i64]> =
                    slots.iter().map(|s| s.as_slice()).collect();
                let permuted: Vec<&[i64]> =
                    order.iter().map(|&i| slots[i].as_slice()).collect();
                prop_assert_eq!(
                    merged(f, &in_slot_order),
                    merged(f, &permuted),
                    "slot permutation observable for {:?}", f
                );
            }
        }
    }
}
