//! Broker survival layer scenarios (ISSUE 7): hedged scatter, tiered
//! admission control, and the single-flight result cache.
//!
//! Every scenario is deterministic: straggler servers are made by `Delay`
//! faults at the `server.execute` chaos site, hedge targets are the first
//! sorted surviving replica, and cache keys are normalized-AST plus
//! view-generation, so no test depends on thread scheduling for its
//! result payload — only (generously bounded) wall-clock assertions do.

use pinot_common::config::TableConfig;
use pinot_common::query::{QueryRequest, QueryResult};
use pinot_common::{DataType, FieldSpec, PinotError, Record, Schema, TimeUnit, Value};
use pinot_core::broker::AdmissionLimits;
use pinot_core::chaos::{sites, Fault, FaultScope};
use pinot_core::{ClusterConfig, PinotCluster};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn schema() -> Schema {
    Schema::new(
        "views",
        vec![
            FieldSpec::dimension("viewer", DataType::Long),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn rows(base: i64, n: i64) -> Vec<Record> {
    (0..n)
        .map(|i| {
            Record::new(vec![
                Value::Long(base + i),
                Value::Long(1 + (base + i) % 7),
                Value::Long(10),
            ])
        })
        .collect()
}

fn count_of(resp: &pinot_common::query::QueryResponse) -> i64 {
    match &resp.result {
        QueryResult::Aggregation(rows) => rows
            .iter()
            .find(|r| r.function.starts_with("count"))
            .and_then(|r| r.value.as_i64())
            .unwrap_or(-1),
        _ => -1,
    }
}

/// A replicated 3-server cluster with enough uploaded segments that every
/// scatter fans out to all three servers, plus enough identical warmup
/// queries that every server crosses the latency digest's sample floor.
fn hedging_cluster() -> PinotCluster {
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(3)
            .with_taskpool_threads(8),
    )
    .unwrap();
    cluster
        .create_table(TableConfig::offline("views").with_replication(3), schema())
        .unwrap();
    for base in [0i64, 100, 200, 300, 400, 500] {
        cluster.upload_rows("views", rows(base, 50)).unwrap();
    }
    // Warm the per-server latency digest past its sample floor (8) so the
    // broker has a healthy-p99 estimate to derive hedge delays from.
    for _ in 0..10 {
        let resp = cluster.query("SELECT COUNT(*) FROM views");
        assert!(!resp.partial, "{:?}", resp.exceptions);
    }
    cluster
}

const MASK_QUERY: &str = "SELECT COUNT(*), SUM(clicks) FROM views";

/// Tentpole acceptance: a Delay-faulted server is masked by a hedged
/// request — first answer wins, the result is byte-identical to the
/// un-faulted run, and latency stays far below the injected delay.
#[test]
fn hedging_masks_a_delay_faulted_server() {
    let cluster = hedging_cluster();
    let baseline = cluster.query(MASK_QUERY);
    assert!(!baseline.partial);

    // Server_1 straggles 300ms on every call; the hedge delay (floor 5ms,
    // healthy p99 well under it) fires two orders of magnitude earlier.
    let fault = cluster.chaos().arm(
        sites::SERVER_EXECUTE,
        Fault::delay_ms(300).with_scope(FaultScope::any().instance("Server_1")),
    );
    let started = Instant::now();
    let resp = cluster.query(MASK_QUERY);
    let elapsed = started.elapsed();
    cluster.chaos().disarm(fault);

    assert!(
        !resp.partial,
        "hedging must mask, not fail: {:?}",
        resp.exceptions
    );
    assert_eq!(
        resp.result, baseline.result,
        "masked result must be byte-identical"
    );
    assert!(
        elapsed < Duration::from_millis(200),
        "hedge should beat the 300ms straggler, took {elapsed:?}"
    );
    assert!(
        resp.stats.hedges_issued >= 1,
        "stats: {:?}",
        resp.stats.hedges_issued
    );
    assert!(resp.stats.hedges_won >= 1);
    assert!(!resp.stats.served_from_cache);
    // The straggler's slice shows up as covered by its hedge target.
    let straggler = resp
        .stats
        .per_server
        .iter()
        .find(|s| s.server == "Server_1")
        .expect("straggler accounted for");
    assert!(!straggler.responded);
    assert!(!straggler.covered_by.is_empty());
    let snap = cluster.metrics_snapshot();
    assert!(snap.counter("broker.hedge_issued") >= 1);
    assert!(snap.counter("broker.hedge_won") >= 1);
}

/// Satellite: the hedge loser must not double-count into ExecutionStats.
/// Server_1 is mildly slow (its primary reply lands *after* its slice was
/// already won by a hedge, while another slice is still pending — the
/// classic loser) and Server_3 is very slow. Docs scanned and per-server
/// accounting must match the un-faulted baseline exactly.
#[test]
fn hedge_loser_is_discarded_not_double_counted() {
    let cluster = hedging_cluster();
    let baseline = cluster.query(MASK_QUERY);

    let f1 = cluster.chaos().arm(
        sites::SERVER_EXECUTE,
        Fault::delay_ms(50).with_scope(FaultScope::any().instance("Server_1")),
    );
    let f3 = cluster.chaos().arm(
        sites::SERVER_EXECUTE,
        Fault::delay_ms(200).with_scope(FaultScope::any().instance("Server_3")),
    );
    let resp = cluster.query(MASK_QUERY);
    cluster.chaos().disarm(f1);
    cluster.chaos().disarm(f3);

    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(resp.result, baseline.result);
    assert_eq!(
        resp.stats.num_docs_scanned, baseline.stats.num_docs_scanned,
        "a discarded loser must not inflate docs_scanned"
    );
    assert_eq!(
        resp.stats.num_segments_processed,
        baseline.stats.num_segments_processed
    );
    // No server may appear twice in the per-server accounting.
    let mut servers: Vec<&str> = resp
        .stats
        .per_server
        .iter()
        .map(|s| s.server.as_str())
        .collect();
    servers.sort_unstable();
    let before = servers.len();
    servers.dedup();
    assert_eq!(
        servers.len(),
        before,
        "duplicate per-server entries: {:?}",
        resp.stats.per_server
    );
    // The responding servers' docs sum to the broker total — nothing
    // counted twice, nothing dropped.
    let per_server_docs: u64 = resp.stats.per_server.iter().map(|s| s.docs_scanned).sum();
    assert_eq!(per_server_docs, resp.stats.num_docs_scanned);
    assert!(resp.stats.hedges_won >= 1);
    // Server_1's primary answered after its hedge won: a wasted hedge-race
    // reply, observed and discarded.
    assert!(
        cluster.metrics_snapshot().counter("broker.hedge_wasted") >= 1,
        "the loser reply should be counted as wasted"
    );
}

/// Satellite: when every replica of a slice is faulted, hedging cannot
/// help and the response degrades to the established partial semantics —
/// typed exceptions naming the unrecoverable loss, not a hang or a panic.
#[test]
fn all_replicas_faulted_degrades_to_partial() {
    let cluster = hedging_cluster();
    let fault = cluster.chaos().arm(
        sites::SERVER_EXECUTE,
        Fault::fail(PinotError::Io("every nic is down".into())),
    );
    let started = Instant::now();
    let resp = cluster.execute(&QueryRequest::new(MASK_QUERY).with_timeout_ms(2_000));
    cluster.chaos().disarm(fault);

    assert!(resp.partial, "total outage must be partial");
    assert!(!resp.exceptions.is_empty());
    assert!(
        started.elapsed() < Duration::from_millis(2_000),
        "failover must give up before the deadline, not hang"
    );
}

/// Satellite: cache invalidation on segment commit. A cached result is
/// served until new data commits; the commit bumps the table's view
/// generation and the next query recomputes against fresh data.
#[test]
fn cache_invalidates_on_segment_commit() {
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(1)
            .with_result_cache(true),
    )
    .unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    cluster.upload_rows("views", rows(0, 40)).unwrap();

    let q = "SELECT COUNT(*) FROM views";
    let first = cluster.query(q);
    assert_eq!(count_of(&first), 40);
    assert!(!first.stats.served_from_cache);

    let second = cluster.query(q);
    assert_eq!(count_of(&second), 40);
    assert!(
        second.stats.served_from_cache,
        "repeat query must hit the cache"
    );
    assert_eq!(second.result, first.result);
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.counter("broker.cache_hit"), 1);

    // Commit new data: the view change invalidates every cached entry for
    // the table, so no stale read crosses the commit.
    cluster.upload_rows("views", rows(100, 10)).unwrap();
    let third = cluster.query(q);
    assert_eq!(count_of(&third), 50, "post-commit data must be visible");
    assert!(!third.stats.served_from_cache);
    let snap = cluster.metrics_snapshot();
    assert_eq!(
        snap.counter("broker.cache_hit"),
        1,
        "the stale entry must not be served after the commit"
    );
}

/// Satellite regression: partial/exception responses must never be
/// admitted to the result cache — a degraded answer served once is a
/// transient; served forever from cache it is data loss.
#[test]
fn partial_responses_are_never_cached() {
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(2)
            .with_result_cache(true),
    )
    .unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    for base in [0i64, 100] {
        cluster.upload_rows("views", rows(base, 30)).unwrap();
    }

    let q = "SELECT COUNT(*) FROM views";
    // Replication is 1, so a failed server is unrecoverable → partial.
    let fault = cluster.chaos().arm(
        sites::SERVER_EXECUTE,
        Fault::fail(PinotError::Io("nic down".into()))
            .with_scope(FaultScope::any().instance("Server_1")),
    );
    let degraded = cluster.query(q);
    assert!(degraded.partial, "fault should degrade the query");
    cluster.chaos().disarm(fault);

    let healed = cluster.query(q);
    assert!(!healed.partial, "{:?}", healed.exceptions);
    assert!(
        !healed.stats.served_from_cache,
        "the partial response must not have been cached"
    );
    assert_eq!(count_of(&healed), 60);
    assert_eq!(cluster.metrics_snapshot().counter("broker.cache_hit"), 0);
}

/// Single-flight: concurrent identical queries coalesce onto one
/// execution — one miss leads, everyone else rides its answer.
#[test]
fn concurrent_identical_queries_coalesce() {
    let cluster = Arc::new(
        PinotCluster::start(
            ClusterConfig::default()
                .with_servers(1)
                .with_result_cache(true),
        )
        .unwrap(),
    );
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    cluster.upload_rows("views", rows(0, 80)).unwrap();

    // Slow the one real execution down so the other threads arrive while
    // it is still in flight.
    cluster
        .chaos()
        .arm(sites::SERVER_EXECUTE, Fault::delay_ms(40).first_n(1));

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || cluster.query("SELECT SUM(clicks) FROM views"))
        })
        .collect();
    let responses: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    for resp in &responses {
        assert!(!resp.partial, "{:?}", resp.exceptions);
        assert_eq!(
            resp.result, responses[0].result,
            "coalesced answers must agree"
        );
    }
    let snap = cluster.metrics_snapshot();
    assert_eq!(
        snap.counter("broker.cache_miss"),
        1,
        "exactly one leader executes"
    );
    assert_eq!(
        snap.counter("broker.cache_hit") + snap.counter("broker.cache_coalesced"),
        7,
        "everyone else is served without touching the cluster"
    );
}

/// Admission control sheds with the typed `Overloaded` error — distinct
/// from the server-side `QuotaExceeded` — once the tenant's slots and the
/// wait queue are both exhausted.
#[test]
fn admission_sheds_with_typed_overloaded_error() {
    let cluster = Arc::new(PinotCluster::start(ClusterConfig::default().with_servers(1)).unwrap());
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    cluster.upload_rows("views", rows(0, 40)).unwrap();
    cluster.brokers()[0].set_admission_limits(AdmissionLimits {
        per_tenant: 1,
        queue: 0,
    });

    // One slow in-flight query holds the tenant's only slot.
    cluster
        .chaos()
        .arm(sites::SERVER_EXECUTE, Fault::delay_ms(150).first_n(1));
    let holder = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || cluster.query("SELECT COUNT(*) FROM views"))
    };
    std::thread::sleep(Duration::from_millis(40));

    let shed = cluster.query("SELECT SUM(clicks) FROM views");
    assert!(shed.partial);
    assert!(
        shed.exceptions.iter().any(|e| e.starts_with("overloaded")),
        "expected a typed overloaded exception, got {:?}",
        shed.exceptions
    );
    assert!(
        !shed.exceptions.iter().any(|e| e.contains("quota")),
        "broker shedding must not masquerade as a server quota rejection"
    );
    assert!(cluster.metrics_snapshot().counter("broker.admission_shed") >= 1);

    let held = holder.join().unwrap();
    assert!(!held.partial, "{:?}", held.exceptions);
    // Slot released: the next query is admitted immediately.
    let after = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!after.partial, "{:?}", after.exceptions);
}

/// The bounded wait queue: a query arriving while the slot is held parks,
/// then runs when the slot frees — queued, not shed.
#[test]
fn admission_queues_within_bounds_instead_of_shedding() {
    let cluster = Arc::new(PinotCluster::start(ClusterConfig::default().with_servers(1)).unwrap());
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    cluster.upload_rows("views", rows(0, 40)).unwrap();
    cluster.brokers()[0].set_admission_limits(AdmissionLimits {
        per_tenant: 1,
        queue: 2,
    });

    cluster
        .chaos()
        .arm(sites::SERVER_EXECUTE, Fault::delay_ms(80).first_n(1));
    let holder = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || cluster.query("SELECT COUNT(*) FROM views"))
    };
    std::thread::sleep(Duration::from_millis(25));

    let queued = cluster.query("SELECT COUNT(*) FROM views");
    assert!(
        !queued.partial,
        "queued query must succeed: {:?}",
        queued.exceptions
    );
    assert_eq!(count_of(&queued), 40);
    assert!(!holder.join().unwrap().partial);

    let snap = cluster.metrics_snapshot();
    assert!(snap.counter("broker.admission_queued") >= 1);
    assert_eq!(snap.counter("broker.admission_shed"), 0);
}

/// Graceful degradation: while the scatter path sheds everything, queries
/// answerable from the result cache are still admitted and served.
#[test]
fn cached_queries_are_served_while_shedding() {
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(1)
            .with_result_cache(true),
    )
    .unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    cluster.upload_rows("views", rows(0, 40)).unwrap();

    let q = "SELECT COUNT(*) FROM views";
    let primed = cluster.query(q);
    assert!(!primed.partial);

    // Shed everything: zero slots, zero queue.
    cluster.brokers()[0].set_admission_limits(AdmissionLimits {
        per_tenant: 0,
        queue: 0,
    });
    let cached = cluster.query(q);
    assert!(
        !cached.partial,
        "cached-servable query must bypass shedding"
    );
    assert!(cached.stats.served_from_cache);
    assert_eq!(cached.result, primed.result);

    let fresh = cluster.query("SELECT SUM(clicks) FROM views");
    assert!(fresh.partial, "uncached query must shed while overloaded");
    assert!(fresh.exceptions.iter().any(|e| e.starts_with("overloaded")));
}

/// EXPLAIN ANALYZE surfaces the survival layer: a cache-served run is
/// annotated `cache=hit` and its profile tree names the result cache.
#[test]
fn explain_analyze_shows_cache_hit() {
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(1)
            .with_result_cache(true),
    )
    .unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    cluster.upload_rows("views", rows(0, 40)).unwrap();

    let q = "SELECT COUNT(*) FROM views";
    let _prime = cluster.query(q);
    let report = cluster.explain(&format!("EXPLAIN ANALYZE {q}")).unwrap();
    assert!(report.contains("cache=hit"), "report:\n{report}");
    assert!(report.contains("result_cache"), "report:\n{report}");
}
