//! End-to-end cluster tests: the full architecture of §3 exercised through
//! the public API — offline pushes, realtime ingestion with the segment
//! completion protocol, hybrid queries, failures, maintenance tasks.

use pinot_common::config::{RoutingStrategy, StarTreeConfig, StreamConfig, TableConfig};
use pinot_common::ids::TableType;
use pinot_common::query::{QueryRequest, QueryResult};
use pinot_common::time::Clock;
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_core::{ClusterConfig, PinotCluster};
use pinot_minion::PurgeSpec;

fn schema() -> Schema {
    Schema::new(
        "views",
        vec![
            FieldSpec::dimension("viewer", DataType::Long),
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn row(viewer: i64, country: &str, clicks: i64, day: i64) -> Record {
    Record::new(vec![
        Value::Long(viewer),
        Value::String(country.into()),
        Value::Long(clicks),
        Value::Long(day),
    ])
}

fn count_of(resp: &pinot_common::query::QueryResponse) -> i64 {
    match &resp.result {
        QueryResult::Aggregation(rows) => rows
            .iter()
            .find(|r| r.function.starts_with("count"))
            .and_then(|r| r.value.as_i64())
            .unwrap_or(-1),
        _ => -1,
    }
}

fn sum_of(resp: &pinot_common::query::QueryResponse) -> f64 {
    match &resp.result {
        QueryResult::Aggregation(rows) => rows
            .iter()
            .find(|r| r.function.starts_with("sum"))
            .and_then(|r| r.value.as_f64())
            .unwrap_or(f64::NAN),
        _ => f64::NAN,
    }
}

#[test]
fn offline_table_end_to_end() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(3)).unwrap();
    cluster
        .create_table(
            TableConfig::offline("views")
                .with_replication(2)
                .with_inverted_indexes(&["country"]),
            schema(),
        )
        .unwrap();

    // Three segment uploads.
    for base in [0i64, 100, 200] {
        let rows: Vec<Record> = (0..100)
            .map(|i| {
                row(
                    base + i,
                    ["us", "de", "jp"][(i % 3) as usize],
                    1,
                    10 + i % 5,
                )
            })
            .collect();
        cluster.upload_rows("views", rows).unwrap();
    }

    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 300);

    let resp = cluster.query("SELECT COUNT(*), SUM(clicks) FROM views WHERE country = 'us'");
    assert!(!resp.partial);
    assert_eq!(count_of(&resp), 102); // i%3==0 → 34 per segment
    assert_eq!(sum_of(&resp), 102.0);

    // Group by with top-n.
    let resp = cluster.query("SELECT COUNT(*) FROM views GROUP BY country TOP 2");
    match &resp.result {
        QueryResult::GroupBy(tables) => {
            assert_eq!(tables[0].rows.len(), 2);
            assert_eq!(tables[0].rows[0].1, Value::Long(102));
        }
        other => panic!("{other:?}"),
    }

    // Selection.
    let resp = cluster.query("SELECT viewer, country FROM views WHERE viewer = 5 LIMIT 10");
    match &resp.result {
        QueryResult::Selection { rows, .. } => {
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0][0], Value::Long(5));
        }
        other => panic!("{other:?}"),
    }

    // Every server hosts some replicas (replication 2 over 3 servers).
    let hosted: usize = cluster
        .servers()
        .iter()
        .map(|s| s.hosted_segments("views_OFFLINE").len())
        .sum();
    assert_eq!(hosted, 6); // 3 segments × 2 replicas
}

#[test]
fn realtime_ingestion_with_completion_protocol() {
    let clock = Clock::manual(1_700_000_000_000);
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(2)
            .with_clock(clock.clone()),
    )
    .unwrap();
    cluster.streams().create_topic("view-events", 2).unwrap();
    cluster
        .create_table(
            TableConfig::realtime(
                "views",
                StreamConfig {
                    topic: "view-events".into(),
                    flush_threshold_rows: 50,
                    flush_threshold_millis: 3_600_000,
                },
            )
            .with_replication(2),
            schema(),
        )
        .unwrap();

    // 130 events per partition → two committed segments per partition plus
    // an open consuming one.
    for i in 0..260i64 {
        cluster
            .produce("view-events", &Value::Long(i), row(i, "us", 1, 20_000))
            .unwrap();
    }
    cluster.consume_until_idle().unwrap();

    // All data is queryable: committed + consuming.
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 260);

    // Committed segments exist in the object store with identical replicas.
    let leader = cluster.leader_controller().unwrap();
    let segments = leader.list_segments("views_REALTIME");
    assert!(
        segments.len() >= 4,
        "expected several segments, got {segments:?}"
    );
    let committed: Vec<_> = segments
        .iter()
        .filter(|s| leader.download_segment("views_REALTIME", s).is_ok())
        .collect();
    assert!(!committed.is_empty());

    // Freshness: a new event is visible after one tick (seconds-level
    // freshness in the paper; immediate here).
    cluster
        .produce(
            "view-events",
            &Value::Long(9999),
            row(9999, "jp", 1, 20_000),
        )
        .unwrap();
    cluster.consume_tick().unwrap();
    let resp = cluster.query("SELECT COUNT(*) FROM views WHERE viewer = 9999");
    assert_eq!(count_of(&resp), 1);
}

#[test]
fn hybrid_table_time_boundary() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(2)).unwrap();
    cluster.streams().create_topic("view-events", 1).unwrap();

    // Offline table with days 100..=101; realtime with days 101..=102.
    // Overlapping day 101 must not double count (Figure 6).
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    cluster
        .create_table(
            TableConfig::realtime(
                "views",
                StreamConfig {
                    topic: "view-events".into(),
                    flush_threshold_rows: 1_000,
                    flush_threshold_millis: i64::MAX / 4,
                },
            ),
            schema(),
        )
        .unwrap();

    let offline_rows: Vec<Record> = (0..60)
        .map(|i| row(i, "us", 1, if i < 30 { 100 } else { 101 }))
        .collect();
    cluster.upload_rows("views", offline_rows).unwrap();

    for i in 0..40i64 {
        let day = if i < 20 { 101 } else { 102 };
        cluster
            .produce("view-events", &Value::Long(i), row(1000 + i, "us", 1, day))
            .unwrap();
    }
    cluster.consume_until_idle().unwrap();

    // Offline alone has 60 rows; realtime alone has 40; the overlap day 101
    // exists on both sides (30 offline + 20 realtime rows).
    // Boundary = max offline day = 101: offline answers day < 101 (30 rows),
    // realtime answers day >= 101 (40 rows) → 70 total, no double counting
    // of the 20 realtime day-101 rows vs offline day-101 rows... the
    // offline day-101 rows represent the *same business events* as the
    // realtime ones in a production lambda setup; here they are distinct
    // synthetic rows, so the correct hybrid answer is 30 + 40 = 70.
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 70);

    // A filter wholly below the boundary only touches offline data.
    let resp = cluster.query("SELECT COUNT(*) FROM views WHERE day = 100");
    assert_eq!(count_of(&resp), 30);
    // A filter wholly at/after the boundary only touches realtime data.
    let resp = cluster.query("SELECT COUNT(*) FROM views WHERE day = 102");
    assert_eq!(count_of(&resp), 20);
}

#[test]
fn server_failure_degrades_then_recovers() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(3)).unwrap();
    cluster
        .create_table(TableConfig::offline("views").with_replication(2), schema())
        .unwrap();
    for base in [0i64, 100] {
        let rows: Vec<Record> = (0..50).map(|i| row(base + i, "us", 1, 10)).collect();
        cluster.upload_rows("views", rows).unwrap();
    }
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 100);

    // Kill one server: with replication 2 over 3 servers, remaining
    // replicas still cover all segments → full answers continue.
    cluster.kill_server(1).unwrap();
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 100);

    // Kill a second server: some segments may lose all replicas; the
    // response either stays complete (if segments colocated) or is partial
    // — never an error.
    cluster.kill_server(2).unwrap();
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(count_of(&resp) <= 100);

    // Restart both: full coverage returns (blank-node restart, §3.4).
    cluster.restart_server(1).unwrap();
    cluster.restart_server(2).unwrap();
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 100);
}

#[test]
fn controller_failover_is_transparent() {
    let cluster = PinotCluster::start(ClusterConfig::default()).unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    let old = cluster.crash_leader_controller().unwrap();
    // Admin operations keep working through the new leader.
    let rows: Vec<Record> = (0..10).map(|i| row(i, "us", 1, 10)).collect();
    cluster.upload_rows("views", rows).unwrap();
    let new_leader = cluster.leader_controller().unwrap();
    assert_ne!(new_leader.id(), &old);
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 10);
}

#[test]
fn purge_task_rewrites_segments() {
    let cluster = PinotCluster::start(ClusterConfig::default()).unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    let rows: Vec<Record> = (0..100).map(|i| row(i % 10, "us", 1, 10)).collect();
    cluster.upload_rows("views", rows).unwrap();
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 100);

    // GDPR-style purge of members 3 and 7.
    let report = cluster
        .run_purge(&PurgeSpec {
            table: "views_OFFLINE".into(),
            column: "viewer".into(),
            values: vec![Value::Long(3), Value::Long(7)],
        })
        .unwrap();
    assert_eq!(report.records_removed, 20);
    assert_eq!(report.segments_rewritten, 1);

    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 80);
    assert_eq!(
        count_of(&cluster.query("SELECT COUNT(*) FROM views WHERE viewer = 3")),
        0
    );
}

#[test]
fn retention_gc_through_cluster() {
    let clock = Clock::manual(1_700_000_000_000);
    let cluster = PinotCluster::start(ClusterConfig::default().with_clock(clock.clone())).unwrap();
    cluster
        .create_table(
            TableConfig::offline("views").with_retention(TimeUnit::Days, 7),
            schema(),
        )
        .unwrap();
    let today = clock.now_millis() / TimeUnit::Days.millis();
    cluster
        .upload_rows("views", (0..10).map(|i| row(i, "us", 1, today)).collect())
        .unwrap();
    cluster
        .upload_rows(
            "views",
            (0..10).map(|i| row(i, "us", 1, today - 30)).collect(),
        )
        .unwrap();
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 20);

    let removed = cluster.run_retention().unwrap();
    assert_eq!(removed.len(), 1);
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 10);
}

#[test]
fn star_tree_answers_through_cluster() {
    let cluster = PinotCluster::start(ClusterConfig::default()).unwrap();
    cluster
        .create_table(
            TableConfig::offline("views").with_star_tree(StarTreeConfig {
                dimensions: vec!["country".into()],
                metrics: vec!["clicks".into()],
                max_leaf_records: 10,
                skip_star_dimensions: vec![],
            }),
            schema(),
        )
        .unwrap();
    let rows: Vec<Record> = (0..1000)
        .map(|i| row(i, ["us", "de"][(i % 2) as usize], i, 10))
        .collect();
    cluster.upload_rows("views", rows).unwrap();

    let resp = cluster.query("SELECT SUM(clicks) FROM views WHERE country = 'us'");
    assert!(!resp.partial);
    let expect: f64 = (0..1000).filter(|i| i % 2 == 0).map(|i| i as f64).sum();
    assert_eq!(sum_of(&resp), expect);
    // The star-tree path scanned far fewer docs than the 500 matching rows.
    assert!(
        resp.stats.num_docs_scanned < 50,
        "scanned {}",
        resp.stats.num_docs_scanned
    );
    assert_eq!(resp.stats.raw_docs_equivalent, 500);
}

#[test]
fn partitioned_routing_through_cluster() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(4)).unwrap();
    cluster
        .create_table(
            TableConfig::offline("views").with_routing(RoutingStrategy::Partitioned {
                column: "viewer".into(),
                num_partitions: 4,
            }),
            schema(),
        )
        .unwrap();
    let rows: Vec<Record> = (0..400).map(|i| row(i, "us", 1, 10)).collect();
    let names = cluster.upload_rows_partitioned("views", rows).unwrap();
    assert_eq!(names.len(), 4);

    // Point query on the partition column touches a single partition's
    // segments — and returns the right answer. The three partitions the
    // broker skipped are visible in the stats as pruned, so
    // queried == processed + pruned holds end to end.
    let resp = cluster.query("SELECT COUNT(*) FROM views WHERE viewer = 42");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 1);
    assert_eq!(resp.stats.num_segments_queried, 4);
    assert_eq!(resp.stats.num_segments_processed, 1);
    assert_eq!(resp.stats.num_segments_pruned, 3);
    assert_eq!(
        resp.stats.num_segments_queried,
        resp.stats.num_segments_processed + resp.stats.num_segments_pruned
    );
    assert_eq!(resp.stats.total_docs, 400);
    assert_eq!(resp.stats.num_servers_queried, 1);

    // Unpartitionable query fans out to everything and still answers.
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert_eq!(count_of(&resp), 400);
    assert_eq!(resp.stats.num_segments_queried, 4);
    assert_eq!(resp.stats.num_segments_processed, 4);
    assert_eq!(resp.stats.num_segments_pruned, 0);
}

#[test]
fn schema_evolution_on_live_table() {
    let cluster = PinotCluster::start(ClusterConfig::default()).unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    cluster
        .upload_rows("views", (0..10).map(|i| row(i, "us", 1, 10)).collect())
        .unwrap();

    // Add a column on the fly.
    cluster
        .leader_controller()
        .unwrap()
        .add_column("views", FieldSpec::dimension("region", DataType::String))
        .unwrap();

    // New uploads carry the new column; old segments still answer queries
    // that don't reference it.
    let wide_schema = cluster
        .leader_controller()
        .unwrap()
        .table_schema("views")
        .unwrap();
    let wide_row = Record::from_pairs(
        &wide_schema,
        &[
            ("viewer", Value::Long(100)),
            ("country", Value::from("fr")),
            ("clicks", Value::Long(1)),
            ("day", Value::Long(10)),
            ("region", Value::from("emea")),
        ],
    )
    .unwrap();
    cluster.upload_rows("views", vec![wide_row]).unwrap();
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 11);
}

#[test]
fn delete_table_through_cluster() {
    let cluster = PinotCluster::start(ClusterConfig::default()).unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    cluster
        .upload_rows("views", (0..5).map(|i| row(i, "us", 1, 10)).collect())
        .unwrap();
    cluster.delete_table("views", TableType::Offline).unwrap();
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(resp.partial); // unknown table surfaces as an exception
    assert!(!resp.exceptions.is_empty());
}

#[test]
fn tenant_throttling_isolates_noisy_tenant() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(1)).unwrap();
    cluster
        .create_table(
            TableConfig::offline("views").with_tenant("shared"),
            schema(),
        )
        .unwrap();
    cluster
        .upload_rows("views", (0..100).map(|i| row(i, "us", 1, 10)).collect())
        .unwrap();

    // Give the noisy tenant a tiny budget on the (single) server.
    cluster.servers()[0].throttle().configure_tenant(
        "noisy",
        pinot_server::tenancy::TokenBucketConfig {
            capacity: 1.0,
            refill_per_ms: 0.0,
        },
    );

    let q = QueryRequest::new("SELECT COUNT(*) FROM views").with_tenant("noisy");
    let first = cluster.execute(&q);
    assert!(!first.partial); // first query spends the budget
    let second = cluster.execute(&q);
    assert!(second.partial, "noisy tenant should be throttled");
    assert!(second.exceptions.iter().any(|e| e.contains("quota")));

    // Another tenant on the same hardware is unaffected.
    let other = QueryRequest::new("SELECT COUNT(*) FROM views").with_tenant("quiet");
    let resp = cluster.execute(&other);
    assert!(!resp.partial);
    assert_eq!(count_of(&resp), 100);
}
