//! Checked metric-name registry (ISSUE 6 satellite): every metric an
//! exercised cluster actually emits must appear in DESIGN.md's metric
//! catalogue, and the Prometheus exposition must carry every one of
//! them. This keeps the catalogue honest — adding a metric without
//! documenting it fails CI.

use pinot_common::config::{StreamConfig, TableConfig};
use pinot_common::query::QueryRequest;
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_core::{ClusterConfig, PinotCluster};

const DESIGN: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"));

/// Wildcard sentinel inside an expanded pattern: matches one or more
/// characters (a tenant, a site, a table/partition suffix, ...).
const WILD: char = '\u{1}';

/// Expand one catalogue name into concrete patterns: `{a,b,c}` is an
/// alternation of literals, `{placeholder}` (no comma, or containing `…`)
/// is a wildcard, `[...]` is optional.
fn expand(pattern: &str) -> Vec<String> {
    if let Some(i) = pattern.find(['{', '[']) {
        let head = &pattern[..i];
        if pattern.as_bytes()[i] == b'{' {
            let j = i + pattern[i..].find('}').expect("unterminated { in catalogue");
            let inner = &pattern[i + 1..j];
            let options: Vec<String> = if inner.contains(',') && !inner.contains('…') {
                inner.split(',').map(|s| s.trim().to_string()).collect()
            } else {
                vec![WILD.to_string()]
            };
            expand(&pattern[j + 1..])
                .iter()
                .flat_map(|tail| {
                    options
                        .iter()
                        .map(move |o| format!("{head}{o}{tail}"))
                        .collect::<Vec<_>>()
                })
                .collect()
        } else {
            let j = i + pattern[i..].find(']').expect("unterminated [ in catalogue");
            let mut out = expand(&format!(
                "{head}{}{}",
                &pattern[i + 1..j],
                &pattern[j + 1..]
            ));
            out.extend(expand(&format!("{head}{}", &pattern[j + 1..])));
            out
        }
    } else {
        vec![pattern.to_string()]
    }
}

/// `pat` with WILD sentinels vs a concrete metric name; a wildcard eats
/// one or more characters.
fn glob_match(pat: &str, name: &str) -> bool {
    match pat.find(WILD) {
        None => pat == name,
        Some(i) => {
            name.len() > i
                && name.starts_with(&pat[..i])
                && (i + 1..=name.len())
                    .any(|cut| glob_match(&pat[i + WILD.len_utf8()..], &name[cut..]))
        }
    }
}

/// Every backtick-quoted name in the first column of DESIGN.md's metric
/// catalogue table, expanded.
fn catalogue_patterns() -> Vec<String> {
    let section = DESIGN
        .split("Metric catalogue:")
        .nth(1)
        .expect("DESIGN.md has a metric catalogue");
    let mut patterns = Vec::new();
    for line in section.lines() {
        let line = line.trim();
        if !line.starts_with("| `") {
            if patterns.is_empty() || line.starts_with('|') || line.is_empty() {
                continue;
            }
            break; // past the table
        }
        let first_cell = line.trim_start_matches('|').split('|').next().unwrap();
        let mut rest = first_cell;
        while let Some(start) = rest.find('`') {
            let tail = &rest[start + 1..];
            let end = tail.find('`').expect("unterminated backtick in catalogue");
            patterns.extend(expand(&tail[..end]));
            rest = &tail[end + 1..];
        }
    }
    assert!(
        patterns.len() > 30,
        "catalogue parse looks broken: {patterns:?}"
    );
    patterns
}

fn schema() -> Schema {
    Schema::new(
        "regevents",
        vec![
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn rows(n: i64) -> Vec<Record> {
    (0..n)
        .map(|i| {
            Record::new(vec![
                Value::from(["us", "de", "jp"][(i % 3) as usize]),
                Value::Long(i),
                Value::Long(100 + i % 10),
            ])
        })
        .collect()
}

/// Exercise broker, servers, taskpool, pruning, batch kernels, and the
/// profiling plane, then demand every emitted metric is catalogued and
/// exported.
#[test]
fn every_emitted_metric_is_in_the_design_catalogue() {
    let patterns = catalogue_patterns();

    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(2)).unwrap();
    cluster
        .create_table(
            TableConfig::offline("regevents")
                .with_replication(2)
                .with_bloom_filters(&["country"]),
            schema(),
        )
        .unwrap();
    for chunk in rows(300).chunks(60) {
        cluster.upload_rows("regevents", chunk.to_vec()).unwrap();
    }
    cluster.query("SELECT COUNT(*), SUM(clicks) FROM regevents WHERE country = 'us'");
    cluster.query("SELECT COUNT(*) FROM regevents GROUP BY country TOP 5");
    cluster.query("SELECT country, clicks FROM regevents WHERE day > 104 LIMIT 20");
    cluster.query("SELECT COUNT(*) FROM regevents WHERE country = 'zz'"); // prunable
    cluster.execute_profiled(&QueryRequest::new("SELECT SUM(clicks) FROM regevents"));
    cluster.query("SELECT COUNT(*) FROM no_such_table"); // failed-query counters

    // Realtime ingestion: columnar consuming segments, a sealed segment,
    // and consuming-segment cuts taken by queries — so the ingest/realtime
    // metric families are emitted and checked too.
    cluster.streams().create_topic("regstream", 1).unwrap();
    let rt_schema = Schema::new("regstream_events", schema().fields().to_vec()).unwrap();
    cluster
        .create_table(
            TableConfig::realtime(
                "regstream_events",
                StreamConfig {
                    topic: "regstream".into(),
                    flush_threshold_rows: 40,
                    flush_threshold_millis: i64::MAX / 4,
                },
            ),
            rt_schema,
        )
        .unwrap();
    for r in rows(90) {
        cluster.produce("regstream", &Value::Long(0), r).unwrap();
    }
    cluster.consume_until_idle().unwrap();
    cluster.query("SELECT COUNT(*), SUM(clicks) FROM regstream_events");

    let snap = cluster.metrics_snapshot();
    let emitted: Vec<&String> = snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys())
        .collect();
    assert!(emitted.len() > 15, "cluster barely emitted: {emitted:?}");

    let undocumented: Vec<&&String> = emitted
        .iter()
        .filter(|name| !patterns.iter().any(|p| glob_match(p, name)))
        .collect();
    assert!(
        undocumented.is_empty(),
        "metrics missing from DESIGN.md catalogue: {undocumented:?}"
    );

    // The catalogue families this PR leans on really are present.
    for required in [
        "exec.batch_segments",
        "exec.blocks_decoded",
        "server.exec.queue_ms",
        "broker.phase.scatter_ms",
        "prune.zonemap_segments",
        "ingest.rows_per_sec",
        "ingest.backpressure_stalls",
        "realtime.chunks_sealed",
        "realtime.query_cut_rows",
    ] {
        assert!(
            patterns.iter().any(|p| glob_match(p, required)),
            "catalogue lost {required}"
        );
    }

    // Prometheus exposition covers every snapshot metric.
    let prom = cluster.obs().render_prometheus();
    let sanitize = |name: &String| {
        let mut s = String::from("pinot_");
        s.extend(
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }),
        );
        s
    };
    for name in &emitted {
        assert!(
            prom.contains(&sanitize(name)),
            "{name} missing from Prometheus exposition"
        );
    }
}

#[test]
fn pattern_expansion_and_matching() {
    assert_eq!(
        expand("broker.phase.{parse,route}_ms"),
        vec!["broker.phase.parse_ms", "broker.phase.route_ms"]
    );
    let opt = expand("server.throttle.rejected[.{tenant}]");
    assert_eq!(opt.len(), 2);
    assert!(opt.iter().any(|p| p == "server.throttle.rejected"));
    assert!(glob_match(&opt[0], "server.throttle.rejected.adsTenant"));
    assert!(!glob_match(&opt[0], "server.throttle.rejected."));
    let wild = expand("server.consume.lag.{table}.p{partition}");
    assert!(glob_match(&wild[0], "server.consume.lag.events.p0"));
    assert!(!glob_match(&wild[0], "server.consume.lag.events"));
}
