//! Cost-gate regression tests (ISSUE 8 satellite): the fan-out gate must
//! keep cheap interactive queries — the fig7 WVMP shape: one aggregate
//! over one column with a selective filter — on the inline path with
//! *zero* task-spawn overhead, while a genuinely large scan still fans
//! out across the pool. Both directions are asserted against the
//! server's own task pool counter, so a regression in either the
//! estimate or the threshold plumbing shows up as spawned (or missing)
//! tasks, not just as noise in a benchmark.

use pinot_common::config::TableConfig;
use pinot_common::query::{QueryRequest, QueryResult};
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_core::{ClusterConfig, PinotCluster};

const TABLE: &str = "gateviews";

fn schema() -> Schema {
    Schema::new(
        TABLE,
        vec![
            FieldSpec::dimension("viewer", DataType::Long),
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn rows(n: usize) -> Vec<Record> {
    (0..n as i64)
        .map(|i| {
            Record::new(vec![
                Value::Long(i % 1000),
                Value::from(["us", "de", "in", "jp"][(i % 4) as usize]),
                Value::Long(i % 50),
                Value::Long(100 + i % 30),
            ])
        })
        .collect()
}

fn sum_of(resp: &pinot_common::query::QueryResponse) -> i64 {
    match &resp.result {
        QueryResult::Aggregation(rows) => rows
            .iter()
            .find(|r| r.function.starts_with("sum"))
            .and_then(|r| r.value.as_f64())
            .map(|v| v as i64)
            .unwrap_or(-1),
        _ => -1,
    }
}

/// fig7-shape workload at the *default* gate: 16 small segments, one
/// column touched per query. The estimated work sits far below the
/// 2ms threshold, so every query must run inline — the inline counter
/// ticks, no morsel ever splits, and the server pool spawns nothing.
#[test]
fn fig7_shape_workload_stays_inline_at_default_gate() {
    let mut config = ClusterConfig::default()
        .with_servers(1)
        .with_taskpool_threads(4);
    config.num_controllers = 1;
    let cluster = PinotCluster::start(config).unwrap();
    cluster
        .create_table(TableConfig::offline(TABLE), schema())
        .unwrap();
    // 16 segments × 800 docs ≈ the per-query work of a WVMP point lookup.
    for chunk in rows(12_800).chunks(800) {
        cluster.upload_rows(TABLE, chunk.to_vec()).unwrap();
    }

    let server = &cluster.servers()[0];
    let tasks_before = server.task_pool().tasks_run();
    for viewer in [3i64, 250, 999] {
        let pql = format!("SELECT SUM(clicks) FROM {TABLE} WHERE viewer = {viewer}");
        let resp = cluster.execute(&QueryRequest::new(&pql));
        assert!(!resp.partial && resp.exceptions.is_empty(), "{pql} failed");
    }

    let snap = cluster.metrics_snapshot();
    assert!(
        snap.counter("exec.morsels_inline") > 0,
        "small scans must take the inline path"
    );
    assert_eq!(
        snap.counter("exec.morsels_split"),
        0,
        "no morsel may split below the gate"
    );
    assert_eq!(
        server.task_pool().tasks_run(),
        tasks_before,
        "inline execution must spawn zero server pool tasks"
    );
}

/// The opposite direction: with the gate forced open and 1024-doc
/// morsels, a 6000-row full-column scan must fan out — morsels split,
/// server pool tasks run — and still produce the exact answer.
#[test]
fn large_workload_fans_out_and_stays_exact() {
    const ROWS: usize = 6000;
    let mut config = ClusterConfig::default()
        .with_servers(1)
        .with_taskpool_threads(4)
        .with_fanout_threshold_ns(1)
        .with_morsel_docs(1024);
    config.num_controllers = 1;
    let cluster = PinotCluster::start(config).unwrap();
    cluster
        .create_table(TableConfig::offline(TABLE), schema())
        .unwrap();
    cluster.upload_rows(TABLE, rows(ROWS)).unwrap();

    let server = &cluster.servers()[0];
    let tasks_before = server.task_pool().tasks_run();
    let pql = format!("SELECT SUM(clicks) FROM {TABLE}");
    let resp = cluster.execute(&QueryRequest::new(&pql));
    assert!(
        !resp.partial && resp.exceptions.is_empty(),
        "{:?}",
        resp.exceptions
    );
    let expected: i64 = (0..ROWS as i64).map(|i| i % 50).sum();
    assert_eq!(sum_of(&resp), expected, "fan-out changed the answer");

    let snap = cluster.metrics_snapshot();
    assert!(
        snap.counter("exec.morsels_split") >= (ROWS / 1024) as u64,
        "the segment should split into ⌈{ROWS}/1024⌉ morsels, split counter = {}",
        snap.counter("exec.morsels_split")
    );
    assert!(
        server.task_pool().tasks_run() > tasks_before,
        "fan-out must run tasks on the server pool"
    );
}
