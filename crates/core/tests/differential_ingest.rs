//! Ingest-while-query differential suite (ISSUE 10 satellite).
//!
//! A hybrid table — offline segments plus a realtime stream consumed
//! through columnar consuming segments — must answer every query exactly
//! as an offline-only oracle cluster holding the rows the time-boundary
//! rewrite makes visible: offline rows strictly below the boundary (the
//! max offline day) plus every realtime row at or above it. The corpus
//! runs *during* ingestion (queries interleaved with produce/tick) and
//! again after the stream drains, across {1, 4} threads × {row, batch}
//! kernels × {columnar, legacy snapshot-rebuild} realtime paths, and the
//! answers must agree in every cell. Aggregations and group-bys are
//! compared verbatim (the shared finalize is deterministic); selection
//! rows as unordered multisets, since hybrid gather appends the offline
//! and realtime sides in completion order.

use pinot_common::config::{StreamConfig, TableConfig};
use pinot_common::query::{QueryRequest, QueryResponse, QueryResult};
use pinot_common::time::Clock;
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_core::{ClusterConfig, PinotCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TABLE: &str = "ingestevents";
const TOPIC: &str = "ingest-events";
const PARTITIONS: usize = 2;
/// Large enough that no generated selection is truncated.
const SELECTION_LIMIT: usize = 5000;

const COUNTRIES: &[&str] = &["us", "de", "in", "br", "jp", "fr", "cn", "gb"];
const DEVICES: &[&str] = &["ios", "android", "web", "tv"];
const TAGS: &[&str] = &["a", "b", "c", "d", "e", "f"];
/// Offline rows span days 100..=BOUNDARY; realtime rows span
/// BOUNDARY..=DAY_HI. The boundary day exists on *both* sides so the
/// suite exercises the exclusion: offline rows at day == BOUNDARY are
/// invisible to hybrid queries (realtime answers day >= boundary).
const DAY_LO: i64 = 100;
const BOUNDARY: i64 = 115;
const DAY_HI: i64 = 129;

fn schema() -> Schema {
    Schema::new(
        TABLE,
        vec![
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::dimension("device", DataType::String),
            FieldSpec::multi_value_dimension("tags", DataType::String),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::metric("cost", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn gen_rows(seed: u64, n: usize, day_lo: i64, day_hi: i64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let ntags = rng.gen_range(1..=3usize);
            let mut tags: Vec<String> = Vec::with_capacity(ntags);
            while tags.len() < ntags {
                let t = TAGS[rng.gen_range(0..TAGS.len())].to_string();
                if !tags.contains(&t) {
                    tags.push(t);
                }
            }
            Record::new(vec![
                Value::from(COUNTRIES[rng.gen_range(0..COUNTRIES.len())]),
                Value::from(DEVICES[rng.gen_range(0..DEVICES.len())]),
                Value::StringArray(tags),
                Value::Long(rng.gen_range(0..50i64)),
                Value::Long(rng.gen_range(1..1000i64)),
                Value::Long(rng.gen_range(day_lo..=day_hi)),
            ])
        })
        .collect()
}

// ---- seeded PQL generator (same shapes as the offline differential suite) ----

fn str_list(rng: &mut StdRng, pool: &[&str], max: usize) -> String {
    let n = rng.gen_range(1..=max.min(pool.len()));
    let mut picked: Vec<&str> = Vec::new();
    while picked.len() < n {
        let c = pool[rng.gen_range(0..pool.len())];
        if !picked.contains(&c) {
            picked.push(c);
        }
    }
    picked
        .iter()
        .map(|c| format!("'{c}'"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_predicate(rng: &mut StdRng, depth: usize) -> String {
    if depth > 0 && rng.gen_range(0..100) < 40 {
        let a = gen_predicate(rng, depth - 1);
        let b = gen_predicate(rng, depth - 1);
        let op = if rng.gen_range(0..2) == 0 {
            "AND"
        } else {
            "OR"
        };
        return format!("({a} {op} {b})");
    }
    match rng.gen_range(0..8) {
        0 => {
            let op = ["=", "!="][rng.gen_range(0..2usize)];
            format!(
                "country {op} '{}'",
                COUNTRIES[rng.gen_range(0..COUNTRIES.len())]
            )
        }
        1 => format!("country IN ({})", str_list(rng, COUNTRIES, 4)),
        2 => format!("device NOT IN ({})", str_list(rng, DEVICES, 2)),
        3 => format!("tags = '{}'", TAGS[rng.gen_range(0..TAGS.len())]),
        4 => {
            let op = ["<", "<=", ">", ">="][rng.gen_range(0..4usize)];
            format!("clicks {op} {}", rng.gen_range(0..50i64))
        }
        5 => {
            // Ranges straddling the time boundary: the rewrite must split
            // them between the offline and realtime sides exactly.
            let lo = rng.gen_range(DAY_LO..=DAY_HI);
            let hi = rng.gen_range(lo..=DAY_HI);
            format!("day BETWEEN {lo} AND {hi}")
        }
        6 => format!("day = {BOUNDARY}"),
        _ => {
            let op = ["<", ">=", "="][rng.gen_range(0..3usize)];
            format!("day {op} {}", rng.gen_range(DAY_LO..=DAY_HI + 1))
        }
    }
}

fn gen_aggs(rng: &mut StdRng) -> String {
    // AVG and DISTINCTCOUNT are deliberately absent: hybrid execution
    // merges the two sides' *finalized* values, which is documented to be
    // approximate for those two across the time boundary (see
    // `combine_by_function` in pinot-broker). The oracle runs one table
    // and would be exact, so they cannot be differentially compared here.
    const AGGS: &[&str] = &[
        "COUNT(*)",
        "SUM(clicks)",
        "SUM(cost)",
        "MIN(cost)",
        "MAX(clicks)",
    ];
    let n = rng.gen_range(1..=3usize);
    let mut picked: Vec<&str> = Vec::new();
    while picked.len() < n {
        let a = AGGS[rng.gen_range(0..AGGS.len())];
        if !picked.contains(&a) {
            picked.push(a);
        }
    }
    picked.join(", ")
}

fn gen_query(rng: &mut StdRng) -> String {
    let where_clause = if rng.gen_range(0..100) < 75 {
        format!(" WHERE {}", gen_predicate(rng, 2))
    } else {
        String::new()
    };
    match rng.gen_range(0..10) {
        0 | 1 => {
            const COLS: &[&str] = &["country", "device", "tags", "clicks", "cost", "day"];
            let n = rng.gen_range(1..=3usize);
            let mut cols: Vec<&str> = Vec::new();
            while cols.len() < n {
                let c = COLS[rng.gen_range(0..COLS.len())];
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            format!(
                "SELECT {} FROM {TABLE}{where_clause} LIMIT {SELECTION_LIMIT}",
                cols.join(", ")
            )
        }
        2..=5 => {
            const GROUPS: &[&str] = &["country", "device", "tags", "day"];
            let n = rng.gen_range(1..=2usize);
            let mut cols: Vec<&str> = Vec::new();
            while cols.len() < n {
                let c = GROUPS[rng.gen_range(0..GROUPS.len())];
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            // TOP above every group-space cardinality (country×day is the
            // largest at 16×30): the hybrid merge combines the two sides'
            // *finalized* top lists, so a TOP that truncates either side
            // drops tail mass the oracle would keep. Untruncated, the
            // merge is exact.
            format!(
                "SELECT {} FROM {TABLE}{where_clause} GROUP BY {} TOP 1000",
                gen_aggs(rng),
                cols.join(", ")
            )
        }
        _ => format!("SELECT {} FROM {TABLE}{where_clause}", gen_aggs(rng)),
    }
}

// ---- comparison ----

fn normalize(result: &QueryResult) -> QueryResult {
    match result {
        QueryResult::Selection { columns, rows } => {
            let mut rows = rows.clone();
            rows.sort_by_key(|r| format!("{r:?}"));
            QueryResult::Selection {
                columns: columns.clone(),
                rows,
            }
        }
        // Untruncated group-bys (TOP above cardinality) are compared as
        // maps: equal-valued groups have no defined relative order.
        QueryResult::GroupBy(tables) => QueryResult::GroupBy(
            tables
                .iter()
                .map(|t| {
                    let mut t = t.clone();
                    t.rows.sort_by_key(|(k, _)| format!("{k:?}"));
                    t
                })
                .collect(),
        ),
        other => other.clone(),
    }
}

fn assert_same(label: &str, pql: &str, hybrid: &QueryResponse, oracle: &QueryResponse) {
    assert!(
        !hybrid.partial && hybrid.exceptions.is_empty(),
        "{label}: hybrid partial/failed for {pql}: {:?}",
        hybrid.exceptions
    );
    assert!(
        !oracle.partial && oracle.exceptions.is_empty(),
        "{label}: oracle partial/failed for {pql}: {:?}",
        oracle.exceptions
    );
    assert_eq!(
        normalize(&hybrid.result),
        normalize(&oracle.result),
        "{label}: engines disagree on {pql}"
    );
}

/// The rows the time-boundary rewrite makes visible on the hybrid table.
fn visible_rows(offline: &[Record], realtime: &[Record]) -> Vec<Record> {
    let day_of = |r: &Record| r.values()[5].as_i64().unwrap();
    offline
        .iter()
        .filter(|r| day_of(r) < BOUNDARY)
        .chain(realtime.iter())
        .cloned()
        .collect()
}

fn start_oracle(rows: &[Record]) -> PinotCluster {
    let mut config = ClusterConfig::default().with_servers(1);
    config.num_controllers = 1;
    let cluster = PinotCluster::start(config).unwrap();
    cluster
        .create_table(TableConfig::offline(TABLE), schema())
        .unwrap();
    for chunk in rows.chunks(250) {
        cluster.upload_rows(TABLE, chunk.to_vec()).unwrap();
    }
    cluster
}

struct Cell {
    threads: usize,
    batch: bool,
    columnar: bool,
}

fn start_hybrid(cell: &Cell, offline: &[Record], flush_rows: usize) -> PinotCluster {
    let mut config = ClusterConfig::default()
        .with_servers(1)
        .with_taskpool_threads(cell.threads)
        .with_exec_batch(cell.batch)
        .with_realtime_columnar(cell.columnar)
        .with_clock(Clock::manual(1_700_000_000_000));
    config.num_controllers = 1;
    let cluster = PinotCluster::start(config).unwrap();
    cluster
        .streams()
        .create_topic(TOPIC, PARTITIONS as u32)
        .unwrap();
    cluster
        .create_table(TableConfig::offline(TABLE), schema())
        .unwrap();
    cluster
        .create_table(
            TableConfig::realtime(
                TABLE,
                StreamConfig {
                    topic: TOPIC.into(),
                    flush_threshold_rows: flush_rows,
                    flush_threshold_millis: i64::MAX / 4,
                },
            )
            // Sorted + inverted + bloom so sealing from the columnar store
            // exercises every index build, not just the forward path.
            .with_sorted_column("day")
            .with_inverted_indexes(&["country"])
            .with_bloom_filters(&["device"]),
            schema(),
        )
        .unwrap();
    for chunk in offline.chunks(250) {
        cluster.upload_rows(TABLE, chunk.to_vec()).unwrap();
    }
    cluster
}

/// Produce `rows` into the stream round-robin over partitions, consuming
/// and (optionally) querying along the way.
fn ingest_interleaved(
    cluster: &PinotCluster,
    rows: &[Record],
    mut probe: impl FnMut(&PinotCluster, usize),
) {
    for (i, batch) in rows.chunks(120).enumerate() {
        for (j, r) in batch.iter().enumerate() {
            let key = Value::Long(((i * 120 + j) % PARTITIONS) as i64);
            cluster.produce(TOPIC, &key, r.clone()).unwrap();
        }
        cluster.consume_tick().unwrap();
        probe(cluster, (i + 1) * 120);
    }
    cluster.consume_until_idle().unwrap();
}

/// The main matrix: hybrid (ingesting) vs offline oracle across
/// {1, 4} threads × {row, batch} kernels, plus a legacy snapshot-rebuild
/// cell — every cell must agree with the oracle on every generated query,
/// both mid-ingest and after the stream drains.
#[test]
fn hybrid_ingest_matches_offline_oracle() {
    const SEED: u64 = 77;
    const CASES: usize = 45;
    const OFFLINE_ROWS: usize = 700;
    const REALTIME_ROWS: usize = 1200;
    // Small enough that each partition seals several segments from the
    // columnar store mid-run, large enough that a consuming tail remains.
    const FLUSH_ROWS: usize = 170;

    let offline = gen_rows(SEED, OFFLINE_ROWS, DAY_LO, BOUNDARY);
    let realtime = gen_rows(SEED ^ 0xabcd, REALTIME_ROWS, BOUNDARY, DAY_HI);
    let oracle = start_oracle(&visible_rows(&offline, &realtime));

    let queries: Vec<String> = {
        let mut rng = StdRng::seed_from_u64(SEED ^ 0x1297);
        (0..CASES).map(|_| gen_query(&mut rng)).collect()
    };
    // Answers must not depend on the cell: aggregation/group-by results
    // are compared verbatim against the first cell's responses.
    let mut reference: Option<Vec<QueryResponse>> = None;

    let cells = [
        Cell {
            threads: 1,
            batch: false,
            columnar: true,
        },
        Cell {
            threads: 4,
            batch: false,
            columnar: true,
        },
        Cell {
            threads: 1,
            batch: true,
            columnar: true,
        },
        Cell {
            threads: 4,
            batch: true,
            columnar: true,
        },
        Cell {
            threads: 4,
            batch: true,
            columnar: false,
        },
    ];
    for cell in &cells {
        let label = format!(
            "t={} batch={} columnar={}",
            cell.threads, cell.batch, cell.columnar
        );
        let cluster = start_hybrid(cell, &offline, FLUSH_ROWS);

        // Queries issued *during* ingestion: results must be complete
        // (never partial) and counts exactly track what was consumed.
        let below_boundary = visible_rows(&offline, &[]).len();
        ingest_interleaved(&cluster, &realtime, |c, _| {
            let resp = c.query(&format!("SELECT COUNT(*) FROM {TABLE}"));
            assert!(
                !resp.partial && resp.exceptions.is_empty(),
                "{label}: mid-ingest query failed: {:?}",
                resp.exceptions
            );
            let count = match &resp.result {
                QueryResult::Aggregation(rows) => rows[0].value.as_i64().unwrap(),
                other => panic!("{other:?}"),
            };
            assert!(
                count >= below_boundary as i64 && count <= (below_boundary + REALTIME_ROWS) as i64,
                "{label}: mid-ingest count {count} outside [{below_boundary}, {}]",
                below_boundary + REALTIME_ROWS
            );
        });

        let responses: Vec<QueryResponse> = queries
            .iter()
            .map(|pql| {
                let req = QueryRequest::new(pql);
                let hybrid = cluster.execute(&req);
                let expected = oracle.execute(&req);
                assert_same(&label, pql, &hybrid, &expected);
                hybrid
            })
            .collect();
        match &reference {
            None => reference = Some(responses),
            Some(reference) => {
                for ((pql, got), want) in queries.iter().zip(&responses).zip(reference) {
                    assert_eq!(
                        normalize(&got.result),
                        normalize(&want.result),
                        "{label}: cell observable via {pql}"
                    );
                    if !matches!(got.result, QueryResult::Selection { .. }) {
                        // Aggregations and group-bys: verbatim, float
                        // accumulation order included.
                        assert_eq!(got.result, want.result, "{label}: bytes differ on {pql}");
                    }
                }
            }
        }

        // The realtime path really served queries from consistent cuts
        // (or legacy rebuilds — the counter covers both).
        let snap = cluster.metrics_snapshot();
        assert!(
            snap.counter("realtime.query_cut_rows") > 0,
            "{label}: no consuming-segment view was ever taken"
        );
        assert!(
            snap.gauge("ingest.rows_per_sec").is_some(),
            "{label}: ingest throughput gauge never set"
        );
    }
}

/// A consuming segment that grows past the 4096-row chunk size must seal
/// full chunks behind the readers, keep answering exactly, and report the
/// realtime plan in EXPLAIN with the cut's row count.
#[test]
fn large_consuming_segment_seals_chunks_and_explains_realtime() {
    const SEED: u64 = 5;
    // Rows are spread round-robin over 2 partitions; each partition's
    // consuming segment must clear the 4096-row chunk size on its own.
    const REALTIME_ROWS: usize = 12_000;

    let realtime = gen_rows(SEED, REALTIME_ROWS, BOUNDARY, DAY_HI);
    let oracle = start_oracle(&realtime);

    let cell = Cell {
        threads: 4,
        batch: true,
        columnar: true,
    };
    // Flush threshold far above the row count: everything stays in one
    // consuming segment per partition, spanning multiple sealed chunks.
    let cluster = start_hybrid(&cell, &[], 1_000_000);
    ingest_interleaved(&cluster, &realtime, |_, _| {});

    for pql in [
        format!("SELECT COUNT(*), SUM(clicks), SUM(cost) FROM {TABLE}"),
        format!("SELECT COUNT(*) FROM {TABLE} WHERE country = 'us'"),
        format!("SELECT SUM(cost) FROM {TABLE} WHERE day >= {BOUNDARY} GROUP BY device"),
        format!("SELECT country, clicks FROM {TABLE} WHERE clicks < 3 LIMIT {SELECTION_LIMIT}"),
    ] {
        let req = QueryRequest::new(&pql);
        assert_same(
            "chunked",
            &pql,
            &cluster.execute(&req),
            &oracle.execute(&req),
        );
    }

    let snap = cluster.metrics_snapshot();
    assert!(
        snap.counter("realtime.chunks_sealed") > 0,
        "a {REALTIME_ROWS}-row consuming segment never sealed a chunk"
    );

    let plan = cluster
        .explain(&format!(
            "EXPLAIN PLAN FOR SELECT SUM(clicks) FROM {TABLE} WHERE country = 'us'"
        ))
        .unwrap();
    assert!(
        plan.contains("plan=realtime("),
        "EXPLAIN does not mark consuming segments realtime:\n{plan}"
    );
    assert!(
        plan.contains("cut_rows="),
        "EXPLAIN does not report the cut row count:\n{plan}"
    );
}

/// Backpressure: with a buffered-row limit below what the stream holds,
/// consumption pauses (the stall counter fires) and resumes as sealing
/// drains the backlog — no rows lost, queries exact throughout.
#[test]
fn backpressure_pauses_and_drains_without_losing_rows() {
    const SEED: u64 = 31;
    const REALTIME_ROWS: usize = 2400;

    let realtime = gen_rows(SEED, REALTIME_ROWS, BOUNDARY, DAY_HI);
    let oracle = start_oracle(&realtime);

    let clock = Clock::manual(1_700_000_000_000);
    let mut config = ClusterConfig::default()
        .with_servers(1)
        .with_taskpool_threads(4)
        .with_ingest_max_buffered_rows(400)
        .with_clock(clock.clone());
    config.num_controllers = 1;
    let cluster = PinotCluster::start(config).unwrap();
    cluster
        .streams()
        .create_topic(TOPIC, PARTITIONS as u32)
        .unwrap();
    // Size-based flush effectively off: only the age criterion seals, so
    // buffered rows genuinely pile up against the 400-row limit instead
    // of sealing away within the same tick they arrive.
    cluster
        .create_table(
            TableConfig::realtime(
                TABLE,
                StreamConfig {
                    topic: TOPIC.into(),
                    flush_threshold_rows: 1_000_000,
                    flush_threshold_millis: 60_000,
                },
            ),
            schema(),
        )
        .unwrap();

    // Produce everything up front, then drain: the first tick buffers
    // 1024 rows per partition — past the limit — so the next tick must
    // pause fetching, and only the age-based seal lets ingestion resume.
    for (i, r) in realtime.iter().enumerate() {
        let key = Value::Long((i % PARTITIONS) as i64);
        cluster.produce(TOPIC, &key, r.clone()).unwrap();
    }
    for _ in 0..10 {
        cluster.consume_tick().unwrap();
        clock.advance(61_000);
        cluster.consume_tick().unwrap();
    }
    cluster.consume_until_idle().unwrap();

    let req = QueryRequest::new(format!("SELECT COUNT(*), SUM(cost) FROM {TABLE}"));
    assert_same(
        "backpressure",
        "count+sum",
        &cluster.execute(&req),
        &oracle.execute(&req),
    );

    let snap = cluster.metrics_snapshot();
    assert!(
        snap.counter("ingest.backpressure_stalls") > 0,
        "the buffered-row limit never paused consumption"
    );
}
