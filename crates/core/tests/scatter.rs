//! Regression tests for the broker's scatter workers (ISSUE 3 satellite).
//!
//! Before the taskpool, each scatter target got a raw `std::thread::spawn`
//! that was never joined: a panicking server adapter silently killed the
//! thread before it could report anything (the broker then waited out the
//! full deadline and went partial), and a reply arriving after a scatter
//! timeout ran on an orphan thread. Scatter now runs as detached pool
//! tasks with panic capture: a panic surfaces as a retriable error that
//! the normal replica failover covers, and a late reply is a no-op send
//! into a disconnected channel on a pooled worker.

use pinot_common::config::TableConfig;
use pinot_common::query::{QueryRequest, QueryResult};
use pinot_common::{DataType, FieldSpec, Record, Result, Schema, TimeUnit, Value};
use pinot_core::broker::{RoutedRequest, SegmentQueryService};
use pinot_core::exec::IntermediateResult;
use pinot_core::server::{Server, ServerRequest};
use pinot_core::{ClusterConfig, PinotCluster};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn schema() -> Schema {
    Schema::new(
        "views",
        vec![
            FieldSpec::dimension("viewer", DataType::Long),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn rows(base: i64, n: i64) -> Vec<Record> {
    (0..n)
        .map(|i| Record::new(vec![Value::Long(base + i), Value::Long(1), Value::Long(10)]))
        .collect()
}

fn count_of(resp: &pinot_common::query::QueryResponse) -> i64 {
    match &resp.result {
        QueryResult::Aggregation(rows) => rows
            .iter()
            .find(|r| r.function.starts_with("count"))
            .and_then(|r| r.value.as_i64())
            .unwrap_or(-1),
        _ => -1,
    }
}

/// A broker-side adapter that panics instead of answering — the worst-case
/// stand-in for a bug in the server-facing RPC glue.
struct PanickingService;

impl SegmentQueryService for PanickingService {
    fn execute(&self, _req: &RoutedRequest) -> Result<IntermediateResult> {
        panic!("server adapter bug");
    }
}

/// Forwards to a real server, but the first `slow_calls` requests sleep
/// past any reasonable deadline first.
struct SlowOnceService {
    server: Arc<Server>,
    slow_calls: AtomicU32,
    delay: Duration,
}

impl SegmentQueryService for SlowOnceService {
    fn execute(&self, req: &RoutedRequest) -> Result<IntermediateResult> {
        if self
            .slow_calls
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            std::thread::sleep(self.delay);
        }
        self.server.execute(&ServerRequest {
            table: req.table.clone(),
            query: Arc::clone(&req.query),
            segments: req.segments.clone(),
            tenant: req.tenant.clone(),
            deadline: req.deadline,
            query_id: req.query_id,
            profile: req.profile,
            analyze: req.analyze,
        })
    }
}

/// A panicking scatter target no longer loses the query: the panic is
/// captured, mapped to a retriable error, and replica failover covers the
/// segments. Pre-pool, the spawned thread died before sending anything and
/// the broker burned the whole deadline waiting, answering partial.
#[test]
fn panicking_server_adapter_is_recovered_by_failover() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(2)).unwrap();
    cluster
        .create_table(TableConfig::offline("views").with_replication(2), schema())
        .unwrap();
    for base in [0i64, 100] {
        cluster.upload_rows("views", rows(base, 50)).unwrap();
    }
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 100);

    // Break Server_1's endpoint on every broker.
    let server_1 = cluster.servers()[0].id().clone();
    for broker in cluster.brokers() {
        broker.register_server(server_1.clone(), Arc::new(PanickingService));
    }

    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(
        !resp.partial,
        "panic must be retriable, not fatal: {:?}",
        resp.exceptions
    );
    assert_eq!(count_of(&resp), 100);
    let snap = cluster.metrics_snapshot();
    assert!(snap.counter("broker.scatter.failover_success") >= 1);
}

/// A reply that arrives after the scatter deadline is dropped harmlessly:
/// the query answers partial at the deadline, the late worker's send hits
/// a disconnected channel, and the broker keeps serving queries.
#[test]
fn late_server_reply_after_scatter_timeout_is_harmless() {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(2)).unwrap();
    cluster
        .create_table(TableConfig::offline("views"), schema())
        .unwrap();
    for base in [0i64, 100, 200, 300] {
        cluster.upload_rows("views", rows(base, 25)).unwrap();
    }
    assert_eq!(count_of(&cluster.query("SELECT COUNT(*) FROM views")), 100);

    let slow = cluster.servers()[0].clone();
    let server_1 = slow.id().clone();
    let delay = Duration::from_millis(80);
    for broker in cluster.brokers() {
        broker.register_server(
            server_1.clone(),
            Arc::new(SlowOnceService {
                server: Arc::clone(&slow),
                slow_calls: AtomicU32::new(1),
                delay,
            }),
        );
    }

    let req = QueryRequest::new("SELECT COUNT(*) FROM views").with_timeout_ms(15);
    let resp = cluster.execute(&req);
    assert!(resp.partial, "slow server should time the query out");
    assert!(cluster.metrics_snapshot().counter("broker.scatter.timeout") >= 1);

    // Let the orphaned reply land on its pool worker, then verify the
    // broker is fully healthy — the late send touched nothing live.
    std::thread::sleep(delay + Duration::from_millis(40));
    let resp = cluster.query("SELECT COUNT(*) FROM views");
    assert!(!resp.partial, "{:?}", resp.exceptions);
    assert_eq!(count_of(&resp), 100);
}
