//! The query profiling plane (ISSUE 6): `execute_profiled` must be
//! observationally identical to `execute` (same bytes, same stats), and
//! the merged broker → server → segment profile tree must reconcile
//! *exactly* with `ExecutionStats` on the same seeded differential corpus
//! the engine-vs-baseline tests use. Also covers EXPLAIN rendering, the
//! slow-query-log profile attachment, deterministic query ids, and trace
//! span nesting for scattered segment work.

use pinot_common::config::TableConfig;
use pinot_common::profile::ProfileNode;
use pinot_common::query::{QueryRequest, QueryResponse};
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_core::chaos::{sites, Fault, FaultInjector};
use pinot_core::{ClusterConfig, PinotCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const TABLE: &str = "diffevents";
const NUM_ROWS: usize = 600;
const ROWS_PER_SEGMENT: usize = 97;
const SELECTION_LIMIT: usize = 5000;

const COUNTRIES: &[&str] = &["us", "de", "in", "br", "jp", "fr", "cn", "gb"];
const DEVICES: &[&str] = &["ios", "android", "web", "tv"];
const TAGS: &[&str] = &["a", "b", "c", "d", "e", "f"];
const DAY_LO: i64 = 100;
const DAY_HI: i64 = 129;

fn schema() -> Schema {
    Schema::new(
        TABLE,
        vec![
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::dimension("device", DataType::String),
            FieldSpec::multi_value_dimension("tags", DataType::String),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::metric("cost", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn gen_rows(seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..NUM_ROWS)
        .map(|_| {
            let ntags = rng.gen_range(1..=3usize);
            let mut tags: Vec<String> = Vec::with_capacity(ntags);
            while tags.len() < ntags {
                let t = TAGS[rng.gen_range(0..TAGS.len())].to_string();
                if !tags.contains(&t) {
                    tags.push(t);
                }
            }
            Record::new(vec![
                Value::from(COUNTRIES[rng.gen_range(0..COUNTRIES.len())]),
                Value::from(DEVICES[rng.gen_range(0..DEVICES.len())]),
                Value::StringArray(tags),
                Value::Long(rng.gen_range(0..50i64)),
                Value::Long(rng.gen_range(1..1000i64)),
                Value::Long(rng.gen_range(DAY_LO..=DAY_HI)),
            ])
        })
        .collect()
}

fn str_list(rng: &mut StdRng, pool: &[&str], max: usize) -> String {
    let n = rng.gen_range(1..=max.min(pool.len()));
    let mut picked: Vec<&str> = Vec::new();
    while picked.len() < n {
        let c = pool[rng.gen_range(0..pool.len())];
        if !picked.contains(&c) {
            picked.push(c);
        }
    }
    picked
        .iter()
        .map(|c| format!("'{c}'"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_predicate(rng: &mut StdRng, depth: usize) -> String {
    if depth > 0 && rng.gen_range(0..100) < 40 {
        let a = gen_predicate(rng, depth - 1);
        let b = gen_predicate(rng, depth - 1);
        let op = if rng.gen_range(0..2) == 0 {
            "AND"
        } else {
            "OR"
        };
        return format!("({a} {op} {b})");
    }
    if depth > 0 && rng.gen_range(0..100) < 10 {
        return format!("NOT {}", gen_predicate(rng, depth - 1));
    }
    match rng.gen_range(0..9) {
        0 => {
            let op = ["=", "!="][rng.gen_range(0..2usize)];
            format!(
                "country {op} '{}'",
                COUNTRIES[rng.gen_range(0..COUNTRIES.len())]
            )
        }
        7 => {
            let day = [DAY_LO - 1, DAY_HI + 1][rng.gen_range(0..2usize)];
            let op = ["=", "<", ">"][rng.gen_range(0..3usize)];
            format!("day {op} {day}")
        }
        8 => format!(
            "country = '{}'",
            ["aa", "ca", "zz"][rng.gen_range(0..3usize)]
        ),
        1 => format!("country IN ({})", str_list(rng, COUNTRIES, 4)),
        2 => format!("device NOT IN ({})", str_list(rng, DEVICES, 2)),
        3 => format!("tags = '{}'", TAGS[rng.gen_range(0..TAGS.len())]),
        4 => {
            let op = ["<", "<=", ">", ">="][rng.gen_range(0..4usize)];
            format!("clicks {op} {}", rng.gen_range(0..50i64))
        }
        5 => {
            let lo = rng.gen_range(DAY_LO..=DAY_HI);
            let hi = rng.gen_range(lo..=DAY_HI);
            format!("day BETWEEN {lo} AND {hi}")
        }
        _ => {
            let op = ["<", ">=", "="][rng.gen_range(0..3usize)];
            format!("day {op} {}", rng.gen_range(DAY_LO..=DAY_HI + 1))
        }
    }
}

fn gen_aggs(rng: &mut StdRng) -> String {
    const AGGS: &[&str] = &[
        "COUNT(*)",
        "SUM(clicks)",
        "SUM(cost)",
        "MIN(cost)",
        "MAX(clicks)",
        "AVG(cost)",
        "DISTINCTCOUNT(country)",
        "DISTINCTCOUNT(device)",
    ];
    let n = rng.gen_range(1..=3usize);
    let mut picked: Vec<&str> = Vec::new();
    while picked.len() < n {
        let a = AGGS[rng.gen_range(0..AGGS.len())];
        if !picked.contains(&a) {
            picked.push(a);
        }
    }
    picked.join(", ")
}

fn gen_query(rng: &mut StdRng) -> String {
    let where_clause = if rng.gen_range(0..100) < 75 {
        format!(" WHERE {}", gen_predicate(rng, 2))
    } else {
        String::new()
    };
    match rng.gen_range(0..10) {
        0 | 1 => {
            const COLS: &[&str] = &["country", "device", "tags", "clicks", "cost", "day"];
            let n = rng.gen_range(1..=3usize);
            let mut cols: Vec<&str> = Vec::new();
            while cols.len() < n {
                let c = COLS[rng.gen_range(0..COLS.len())];
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            format!(
                "SELECT {} FROM {TABLE}{where_clause} LIMIT {SELECTION_LIMIT}",
                cols.join(", ")
            )
        }
        2..=5 => {
            const GROUPS: &[&str] = &["country", "device", "tags", "day"];
            let n = rng.gen_range(1..=2usize);
            let mut cols: Vec<&str> = Vec::new();
            while cols.len() < n {
                let c = GROUPS[rng.gen_range(0..GROUPS.len())];
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            let top = match rng.gen_range(0..3) {
                0 => format!(" TOP {}", rng.gen_range(1..=5)),
                1 => " TOP 1000".to_string(),
                _ => String::new(),
            };
            format!(
                "SELECT {} FROM {TABLE}{where_clause} GROUP BY {}{top}",
                gen_aggs(rng),
                cols.join(", ")
            )
        }
        _ => format!("SELECT {} FROM {TABLE}{where_clause}", gen_aggs(rng)),
    }
}

fn start_cluster(rows: &[Record]) -> PinotCluster {
    let cluster = PinotCluster::start(ClusterConfig::default().with_servers(3)).unwrap();
    cluster
        .create_table(TableConfig::offline(TABLE).with_replication(2), schema())
        .unwrap();
    for chunk in rows.chunks(ROWS_PER_SEGMENT) {
        cluster.upload_rows(TABLE, chunk.to_vec()).unwrap();
    }
    cluster
}

/// Documents scanned, summed over exact segment nodes *and* the summary
/// nodes the server folded colder segments into.
fn profile_docs_scanned(root: &ProfileNode) -> u64 {
    root.sum_docs_out("segment") + root.sum_docs_out("segments_summary")
}

/// Segment executions accounted anywhere in the tree: exact segment nodes
/// count once, summary nodes carry their fold count. Does not descend
/// into segment/summary nodes (their children are operators, not
/// segments).
fn profile_segments(node: &ProfileNode) -> u64 {
    match node.operator {
        "segment" => node.segments.max(1),
        "segments_summary" => node.segments,
        _ => node.children.iter().map(profile_segments).sum(),
    }
}

/// The stat counters that must be identical whether or not profiling is
/// on (everything except wall-clock times and the query id).
fn key_stats(resp: &QueryResponse) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    let s = &resp.stats;
    (
        s.num_docs_scanned,
        s.num_segments_queried,
        s.num_segments_processed,
        s.num_segments_pruned,
        s.total_docs,
        s.num_entries_scanned_in_filter,
        s.num_entries_scanned_post_filter,
        s.num_servers_queried,
    )
}

/// 240 seeded corpus queries: profiling must be unobservable in the
/// result and stats, and every returned profile must reconcile exactly
/// with the stats — docs scanned, segment accounting, and the
/// queried = processed + pruned identity.
#[test]
fn profiled_execution_is_byte_identical_and_reconciles_with_stats() {
    const SEEDS: &[u64] = &[11, 23, 57, 91];
    const QUERIES_PER_SEED: usize = 60;

    for &seed in SEEDS {
        let rows = gen_rows(seed);
        let cluster = start_cluster(&rows);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd1f);
        for case in 0..QUERIES_PER_SEED {
            let pql = gen_query(&mut rng);
            let req = QueryRequest::new(&pql);
            let plain = cluster.execute(&req);
            let profiled = cluster.execute_profiled(&req);
            assert!(
                !plain.partial && !profiled.partial,
                "partial response seed {seed} case {case}: {pql}"
            );

            // Profiling is unobservable: same bytes, same counters.
            assert_eq!(
                plain.result, profiled.result,
                "profiling changed the result of {pql}"
            );
            assert_eq!(
                key_stats(&plain),
                key_stats(&profiled),
                "profiling changed stats of {pql}"
            );
            assert!(plain.profile.is_none());

            // The profile reconciles exactly with ExecutionStats.
            let stats = &profiled.stats;
            let profile = profiled
                .profile
                .as_ref()
                .unwrap_or_else(|| panic!("no profile for {pql}"));
            assert_ne!(profile.query_id, 0, "{pql}");
            assert_eq!(profile.query_id, stats.query_id, "{pql}");
            assert_eq!(
                profile_docs_scanned(&profile.root),
                stats.num_docs_scanned,
                "segment docs_out disagree with num_docs_scanned for {pql}\n{}",
                profile.render_text()
            );
            assert_eq!(
                profile_segments(&profile.root),
                stats.num_segments_queried,
                "segment accounting disagrees for {pql}\n{}",
                profile.render_text()
            );
            assert_eq!(
                stats.num_segments_queried,
                stats.num_segments_processed + stats.num_segments_pruned,
                "{pql}"
            );
            assert_eq!(profile.root.operator, "broker");
            assert_eq!(profile.root.docs_out, stats.num_docs_scanned);
            assert_eq!(profile.root.docs_in, stats.total_docs);
        }
    }
}

/// EXPLAIN PLAN renders every segment's plan decision without executing;
/// EXPLAIN ANALYZE executes and renders the measured profile plus stats.
#[test]
fn explain_plan_and_analyze_render() {
    let rows = gen_rows(7);
    let cluster = start_cluster(&rows);

    let plan = cluster
        .explain(&format!(
            "EXPLAIN PLAN FOR SELECT COUNT(*) FROM {TABLE} WHERE country = 'us'"
        ))
        .unwrap();
    assert!(plan.contains("EXPLAIN PLAN FOR"), "{plan}");
    assert!(plan.contains("segments of diffevents"), "{plan}");
    // Plans without execution: nothing scanned yet.
    assert!(plan.contains("plan=") || plan.contains("prune="), "{plan}");

    // A probe the zone maps can prove empty shows prune attribution.
    let pruned = cluster
        .explain(&format!(
            "EXPLAIN PLAN FOR SELECT COUNT(*) FROM {TABLE} WHERE day = {}",
            DAY_HI + 1
        ))
        .unwrap();
    assert!(pruned.contains("cannot_match"), "{pruned}");

    let analyze = cluster
        .explain(&format!(
            "EXPLAIN ANALYZE SELECT SUM(clicks) FROM {TABLE} WHERE device = 'ios'"
        ))
        .unwrap();
    assert!(analyze.contains("EXPLAIN ANALYZE"), "{analyze}");
    assert!(analyze.contains("query_id:"), "{analyze}");
    assert!(analyze.contains("broker"), "{analyze}");
    assert!(analyze.contains("segment"), "{analyze}");
    assert!(analyze.contains("stats: docs_scanned="), "{analyze}");
    // Per-conjunct access-path attribution (ISSUE 9): the filter node
    // carries one child per conjunct naming the chosen path, with
    // docs=estimated→actual from the cost model's estimate.
    assert!(
        analyze.contains("conjunct device = ios (scan)"),
        "{analyze}"
    );

    // Non-EXPLAIN statements are rejected with a helpful error.
    assert!(cluster
        .explain(&format!("SELECT COUNT(*) FROM {TABLE}"))
        .is_err());
}

/// A slow query's log entry carries the merged profile tree, joined to
/// the response by query id, and names the dominant operator.
#[test]
fn slow_query_log_entry_carries_profile_naming_dominant_operator() {
    let chaos = Arc::new(FaultInjector::new());
    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(2)
            .with_chaos(Arc::clone(&chaos)),
    )
    .unwrap();
    cluster
        .create_table(TableConfig::offline(TABLE).with_replication(2), schema())
        .unwrap();
    for chunk in gen_rows(3).chunks(ROWS_PER_SEGMENT) {
        cluster.upload_rows(TABLE, chunk.to_vec()).unwrap();
    }

    // Push the query past the slow threshold inside server execution.
    chaos.arm(sites::SERVER_EXECUTE, Fault::delay_ms(120));
    let resp = cluster.execute_profiled(&QueryRequest::new(format!(
        "SELECT COUNT(*), SUM(cost) FROM {TABLE} WHERE clicks >= 10"
    )));
    assert!(!resp.partial, "{:?}", resp.exceptions);
    let profile = resp.profile.as_ref().expect("profiled response");

    let entry = cluster
        .recent_queries()
        .into_iter()
        .find(|e| e.query_id == resp.stats.query_id)
        .expect("slow query must be logged with its query id");
    let logged = entry.profile.expect("log entry carries the profile");
    assert_eq!(logged.query_id, profile.query_id);

    // The tree reaches from broker through server to segment level and
    // names where the time went.
    assert_eq!(logged.root.operator, "broker");
    assert!(logged.root.children.iter().any(|c| c.operator == "server"));
    assert!(
        logged
            .root
            .count_nodes(&|n| n.operator == "segment" || n.operator == "segments_summary")
            > 0
    );
    let (op, ns) = logged.dominant_operator();
    assert!(!op.is_empty());
    assert!(ns > 0, "dominant operator {op} has no time");
}

/// Query ids are seeded and deterministic: two identically-configured
/// clusters assign the same id sequence, ids are nonzero, and distinct
/// within a sequence — so spans, profiles, and log entries can be joined
/// across reruns.
#[test]
fn query_ids_are_deterministic_nonzero_and_distinct() {
    let build = || {
        let cluster = PinotCluster::start(ClusterConfig::default().with_servers(2)).unwrap();
        cluster
            .create_table(TableConfig::offline(TABLE), schema())
            .unwrap();
        cluster
            .upload_rows(TABLE, gen_rows(5)[..ROWS_PER_SEGMENT].to_vec())
            .unwrap();
        cluster
    };
    let a = build();
    let b = build();
    let pql = format!("SELECT COUNT(*) FROM {TABLE}");
    let ids_a: Vec<u64> = (0..4)
        .map(|_| a.execute(&QueryRequest::new(&pql)).stats.query_id)
        .collect();
    let ids_b: Vec<u64> = (0..4)
        .map(|_| b.execute(&QueryRequest::new(&pql)).stats.query_id)
        .collect();
    assert_eq!(ids_a, ids_b, "id sequence must be deterministic");
    assert!(ids_a.iter().all(|&id| id != 0));
    let mut dedup = ids_a.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), ids_a.len(), "ids must be distinct: {ids_a:?}");
}

/// Under a profiled scattered query, per-segment spans nest under their
/// server's span in the trace (the taskpool handoff preserves parents).
#[test]
fn traced_profile_nests_segment_spans_under_server_spans() {
    let cluster = start_cluster(&gen_rows(9));
    let req = QueryRequest::new(format!("SELECT SUM(clicks) FROM {TABLE}")).with_profile();
    let (resp, trace) = cluster.execute_traced(&req);
    assert!(!resp.partial, "{:?}", resp.exceptions);

    let segment_spans: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.name.starts_with("segment:"))
        .collect();
    assert!(
        !segment_spans.is_empty(),
        "profiled scatter must record per-segment spans: {:?}",
        trace.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    for span in segment_spans {
        let parent = span.parent.expect("segment span has a parent");
        assert!(
            trace.spans[parent].name.starts_with("server:"),
            "segment span {:?} nests under {:?}",
            span.name,
            trace.spans[parent].name
        );
    }
}
