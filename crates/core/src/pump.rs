//! Background realtime pump.
//!
//! Production servers consume their streams continuously on dedicated
//! threads. [`RealtimePump`] reproduces that for live deployments and the
//! examples: a background thread drives `consume_tick` on every server at a
//! fixed cadence until the pump is stopped or dropped. Tests that need
//! determinism call [`crate::PinotCluster::consume_tick`] directly instead.

use crate::PinotCluster;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to the background consumption thread; stops on drop.
pub struct RealtimePump {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RealtimePump {
    /// Start pumping `cluster` every `interval`.
    pub fn start(cluster: &Arc<PinotCluster>, interval: Duration) -> RealtimePump {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let cluster = Arc::clone(cluster);
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                // Consumption errors are retried on the next tick; a dead
                // stream shouldn't kill the pump.
                let _ = cluster.consume_tick();
                std::thread::sleep(interval);
            }
        });
        RealtimePump {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the pump and wait for the thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RealtimePump {
    fn drop(&mut self) {
        self.shutdown();
    }
}
