//! The integrated Pinot system.
//!
//! [`PinotCluster`] assembles the full architecture of §3 in one process:
//! the metadata store, the event stream, the object store, a group of
//! controllers (one elected leader), query brokers, data servers, and
//! minions. Components interact only through the same narrow interfaces
//! they would use over the network (state transitions, completion polls,
//! scatter/gather requests), so the topology, failure modes, and data flows
//! of the paper are preserved; only the wire encoding is elided.
//!
//! ```no_run
//! use pinot_core::{ClusterConfig, PinotCluster};
//! use pinot_common::config::TableConfig;
//! use pinot_common::{DataType, FieldSpec, Schema};
//! use pinot_common::query::QueryRequest;
//!
//! let cluster = PinotCluster::start(ClusterConfig::default()).unwrap();
//! let schema = Schema::new("hits", vec![
//!     FieldSpec::dimension("country", DataType::String),
//!     FieldSpec::metric("clicks", DataType::Long),
//! ]).unwrap();
//! cluster.create_table(TableConfig::offline("hits"), schema).unwrap();
//! let resp = cluster.execute(&QueryRequest::new("SELECT COUNT(*) FROM hits"));
//! assert!(!resp.partial);
//! ```

pub mod pump;

use bytes::Bytes;
use pinot_broker::{Broker, RoutedRequest, SegmentQueryService};
use pinot_chaos::FaultInjector;
use pinot_cluster::ClusterManager;
use pinot_common::config::TableConfig;
use pinot_common::ids::{InstanceId, SegmentName, TableType};
use pinot_common::query::{QueryRequest, QueryResponse};
use pinot_common::time::Clock;
use pinot_common::{PinotError, Record, Result, Schema, Value};
use pinot_controller::{Controller, ControllerGroup};
use pinot_exec::segment_exec::IntermediateResult;
use pinot_metastore::MetaStore;
use pinot_minion::{Minion, PurgeSpec, TaskReport};
use pinot_objstore::{MemoryObjectStore, ObjectStoreRef};
use pinot_obs::{MetricsSnapshot, Obs, QueryLogEntry, QueryTrace};
use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
use pinot_segment::metadata::PartitionInfo;
use pinot_server::{Server, ServerRequest};
use pinot_stream::StreamRegistry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// Re-exports so downstream users need only this crate for common flows.
pub use pinot_broker as broker;
pub use pinot_chaos as chaos;
pub use pinot_cluster as cluster;
pub use pinot_common as common;
pub use pinot_controller as controller;
pub use pinot_exec as exec;
pub use pinot_minion as minion;
pub use pinot_obs as obs;
pub use pinot_pql as pql;
pub use pinot_segment as segment;
pub use pinot_server as server;
pub use pinot_startree as startree;
pub use pinot_stream as stream;
pub use pinot_taskpool as taskpool;

/// Topology and environment for a cluster.
#[derive(Clone)]
pub struct ClusterConfig {
    pub num_controllers: usize,
    pub num_brokers: usize,
    pub num_servers: usize,
    pub num_minions: usize,
    /// Manual clocks make tests and simulations deterministic.
    pub clock: Clock,
    /// Object store; defaults to in-memory.
    pub objstore: Option<ObjectStoreRef>,
    /// Fault injector shared by every component (chaos tests). `None`
    /// installs a fresh, empty injector — still reachable via
    /// [`PinotCluster::chaos`] so tests can arm faults after boot.
    pub chaos: Option<Arc<FaultInjector>>,
    /// Pin every server and broker task pool to this many worker threads.
    /// `None` keeps the `PINOT_TASKPOOL_THREADS` / `available_parallelism`
    /// default. `Some(1)` gives deterministic sequential execution.
    pub taskpool_threads: Option<usize>,
    /// Force the batched (`Some(true)`) or row-at-a-time (`Some(false)`)
    /// execution kernels on every server; `None` keeps the
    /// `PINOT_EXEC_BATCH` env default (batched unless set to `0`).
    pub exec_batch: Option<bool>,
    /// Force zone-map/bloom pruning on (`Some(true)`) or off
    /// (`Some(false)`) on every broker and server; `None` keeps the
    /// `PINOT_EXEC_PRUNE` env default (on unless set to `0`).
    pub exec_prune: Option<bool>,
    /// Force hedged scatter on/off on every broker; `None` keeps the
    /// `PINOT_EXEC_HEDGE` env default (on unless set to `0`).
    pub exec_hedge: Option<bool>,
    /// Force broker admission control on/off; `None` keeps the
    /// `PINOT_EXEC_ADMISSION` env default (on unless set to `0`).
    pub exec_admission: Option<bool>,
    /// Force the broker result cache on/off; `None` keeps the
    /// `PINOT_EXEC_RESULT_CACHE` env default (off unless set to `1`).
    pub result_cache: Option<bool>,
    /// Morsel size (docs) for every server's intra-segment splitting;
    /// rounded to the 1024-doc decode-block grid. `None` keeps the
    /// `PINOT_EXEC_MORSEL_DOCS` env default (64 blocks). The split is a
    /// pure function of data + this knob, so it changes result bytes
    /// only through the deterministic partition — tests shrink it to
    /// exercise multi-morsel merging on small corpora.
    pub morsel_docs: Option<usize>,
    /// Fan-out threshold (estimated ns of scan work) for every server;
    /// `None` keeps the `PINOT_EXEC_FANOUT_NS` env default (~2ms).
    /// `Some(0)` forces every request onto the pool; a huge value forces
    /// everything inline. Scheduling-only: never changes result bytes.
    pub fanout_threshold_ns: Option<u64>,
    /// Access-path strategy for filter leaves on every server: `auto`
    /// chooses per leaf from segment statistics, the forced modes pin
    /// one path where its structure exists. `None` keeps the
    /// `PINOT_EXEC_PLANNER` env default (auto). Every mode yields
    /// byte-identical results — the strategy-matrix differential suite
    /// asserts exactly that.
    pub exec_planner: Option<pinot_exec::PlannerMode>,
    /// Force the columnar realtime path on (`Some(true)`) or fall back to
    /// the legacy snapshot-rebuild path (`Some(false)`) on every server;
    /// `None` keeps the `PINOT_REALTIME_COLUMNAR` env default (on unless
    /// set to `0`). Both paths return byte-identical results — the
    /// fallback exists as the bench baseline and an escape hatch.
    pub realtime_columnar: Option<bool>,
    /// Advance all consuming partitions concurrently as taskpool tasks
    /// (`Some(true)`) or one at a time (`Some(false)`); `None` keeps the
    /// `PINOT_INGEST_PARALLEL` env default (on unless set to `0`).
    /// Per-partition ordering is preserved either way.
    pub ingest_parallel: Option<bool>,
    /// Backpressure limit: when the rows buffered across a server's
    /// consuming segments reach this bound, fetching pauses (sealing
    /// still runs, so the backlog drains). `None` keeps the
    /// `PINOT_INGEST_MAX_BUFFERED_ROWS` env default (4,000,000).
    pub ingest_max_buffered_rows: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_controllers: 3,
            num_brokers: 1,
            num_servers: 3,
            num_minions: 1,
            clock: Clock::system(),
            objstore: None,
            chaos: None,
            taskpool_threads: None,
            exec_batch: None,
            exec_prune: None,
            exec_hedge: None,
            exec_admission: None,
            result_cache: None,
            morsel_docs: None,
            fanout_threshold_ns: None,
            exec_planner: None,
            realtime_columnar: None,
            ingest_parallel: None,
            ingest_max_buffered_rows: None,
        }
    }
}

impl ClusterConfig {
    pub fn with_servers(mut self, n: usize) -> ClusterConfig {
        self.num_servers = n;
        self
    }

    pub fn with_brokers(mut self, n: usize) -> ClusterConfig {
        self.num_brokers = n;
        self
    }

    pub fn with_clock(mut self, clock: Clock) -> ClusterConfig {
        self.clock = clock;
        self
    }

    pub fn with_chaos(mut self, chaos: Arc<FaultInjector>) -> ClusterConfig {
        self.chaos = Some(chaos);
        self
    }

    pub fn with_taskpool_threads(mut self, n: usize) -> ClusterConfig {
        self.taskpool_threads = Some(n);
        self
    }

    pub fn with_exec_batch(mut self, batch: bool) -> ClusterConfig {
        self.exec_batch = Some(batch);
        self
    }

    pub fn with_exec_prune(mut self, prune: bool) -> ClusterConfig {
        self.exec_prune = Some(prune);
        self
    }

    pub fn with_exec_hedge(mut self, hedge: bool) -> ClusterConfig {
        self.exec_hedge = Some(hedge);
        self
    }

    pub fn with_admission(mut self, admission: bool) -> ClusterConfig {
        self.exec_admission = Some(admission);
        self
    }

    pub fn with_result_cache(mut self, cache: bool) -> ClusterConfig {
        self.result_cache = Some(cache);
        self
    }

    pub fn with_morsel_docs(mut self, docs: usize) -> ClusterConfig {
        self.morsel_docs = Some(docs);
        self
    }

    pub fn with_fanout_threshold_ns(mut self, ns: u64) -> ClusterConfig {
        self.fanout_threshold_ns = Some(ns);
        self
    }

    pub fn with_exec_planner(mut self, mode: pinot_exec::PlannerMode) -> ClusterConfig {
        self.exec_planner = Some(mode);
        self
    }

    pub fn with_realtime_columnar(mut self, columnar: bool) -> ClusterConfig {
        self.realtime_columnar = Some(columnar);
        self
    }

    pub fn with_ingest_parallel(mut self, parallel: bool) -> ClusterConfig {
        self.ingest_parallel = Some(parallel);
        self
    }

    pub fn with_ingest_max_buffered_rows(mut self, rows: usize) -> ClusterConfig {
        self.ingest_max_buffered_rows = Some(rows);
        self
    }
}

/// The query text behind an `EXPLAIN` prefix (already validated by
/// `parse_statement`), so the inner query can be handed to the broker.
fn strip_explain_prefix(pql: &str) -> &str {
    fn eat<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
        let t = s.trim_start();
        (t.len() >= kw.len() && t[..kw.len()].eq_ignore_ascii_case(kw)).then(|| &t[kw.len()..])
    }
    let Some(rest) = eat(pql, "EXPLAIN") else {
        return pql;
    };
    if let Some(r) = eat(rest, "ANALYZE") {
        return r.trim_start();
    }
    if let Some(r) = eat(rest, "PLAN").and_then(|r| eat(r, "FOR")) {
        return r.trim_start();
    }
    rest.trim_start()
}

/// Adapter exposing a [`Server`] as the broker-facing query service (the
/// in-process stand-in for the broker→server RPC).
struct ServerAdapter(Arc<Server>);

impl SegmentQueryService for ServerAdapter {
    fn execute(&self, req: &RoutedRequest) -> Result<IntermediateResult> {
        self.0.execute(&ServerRequest {
            table: req.table.clone(),
            query: Arc::clone(&req.query),
            segments: req.segments.clone(),
            tenant: req.tenant.clone(),
            deadline: req.deadline,
            query_id: req.query_id,
            profile: req.profile,
            analyze: req.analyze,
        })
    }
}

/// A fully wired in-process Pinot deployment.
pub struct PinotCluster {
    metastore: MetaStore,
    streams: StreamRegistry,
    objstore: ObjectStoreRef,
    cluster: ClusterManager,
    controllers: ControllerGroup,
    brokers: Vec<Arc<Broker>>,
    servers: Vec<Arc<Server>>,
    minions: Vec<Arc<Minion>>,
    clock: Clock,
    next_broker: AtomicUsize,
    upload_sequence: AtomicUsize,
    obs: Arc<Obs>,
    chaos: Arc<FaultInjector>,
}

impl PinotCluster {
    /// Boot a cluster: substrates, controllers (leader elected), servers
    /// (registered as participants), brokers (wired to every server).
    pub fn start(config: ClusterConfig) -> Result<PinotCluster> {
        if config.num_controllers == 0 || config.num_brokers == 0 || config.num_servers == 0 {
            return Err(PinotError::Cluster(
                "cluster needs at least one controller, broker and server".into(),
            ));
        }
        let metastore = MetaStore::new();
        let streams = StreamRegistry::new();
        let objstore = config.objstore.unwrap_or_else(MemoryObjectStore::shared);
        let cluster = ClusterManager::new(metastore.clone());
        // One observability sink shared by every component, so
        // `metrics_snapshot()` sees broker, server, and controller metrics
        // side by side.
        let obs = Obs::shared();
        // One fault injector shared by every component; empty (and thus
        // inert) unless a chaos test arms faults on it.
        let chaos = config
            .chaos
            .unwrap_or_else(|| Arc::new(FaultInjector::new()));
        chaos.set_obs(Arc::clone(&obs));

        let controllers = ControllerGroup::with_obs(metastore.clone(), Arc::clone(&obs));
        for n in 1..=config.num_controllers {
            let controller = Controller::with_obs(
                n,
                metastore.clone(),
                cluster.clone(),
                objstore.clone(),
                streams.clone(),
                config.clock.clone(),
                Arc::clone(&obs),
            );
            controller.set_fault_injector(Arc::clone(&chaos));
            controllers.add(controller);
        }
        controllers
            .leader()
            .ok_or_else(|| PinotError::Cluster("failed to elect a controller".into()))?;

        let mut servers = Vec::with_capacity(config.num_servers);
        for n in 1..=config.num_servers {
            let server = Server::with_obs(
                n,
                controllers.clone(),
                cluster.clone(),
                streams.clone(),
                config.clock.clone(),
                Arc::clone(&obs),
            );
            server.set_fault_injector(Arc::clone(&chaos));
            server.set_exec_batch(config.exec_batch);
            server.set_exec_prune(config.exec_prune);
            server.set_morsel_docs(config.morsel_docs);
            server.set_fanout_threshold_ns(config.fanout_threshold_ns);
            server.set_exec_planner(config.exec_planner);
            server.set_realtime_columnar(config.realtime_columnar);
            server.set_ingest_parallel(config.ingest_parallel);
            server.set_ingest_max_buffered_rows(config.ingest_max_buffered_rows);
            if let Some(threads) = config.taskpool_threads {
                server.set_task_pool(Arc::new(pinot_taskpool::TaskPool::with_threads(
                    threads,
                    Some(Arc::clone(&obs)),
                )));
            }
            cluster.register_participant(server.clone());
            servers.push(server);
        }

        let mut brokers = Vec::with_capacity(config.num_brokers);
        for n in 1..=config.num_brokers {
            let broker = Broker::with_obs(n, cluster.clone(), Arc::clone(&obs));
            broker.set_exec_prune(config.exec_prune);
            broker.set_exec_hedge(config.exec_hedge);
            broker.set_admission(config.exec_admission);
            broker.set_result_cache(config.result_cache);
            if let Some(threads) = config.taskpool_threads {
                broker.set_task_pool(Arc::new(pinot_taskpool::TaskPool::with_threads(
                    threads,
                    Some(Arc::clone(&obs)),
                )));
            }
            for server in &servers {
                broker.register_server(
                    server.id().clone(),
                    Arc::new(ServerAdapter(Arc::clone(server))),
                );
            }
            brokers.push(broker);
        }

        let minions = (1..=config.num_minions)
            .map(|n| Minion::new(n, controllers.clone()))
            .collect();

        Ok(PinotCluster {
            metastore,
            streams,
            objstore,
            cluster,
            controllers,
            brokers,
            servers,
            minions,
            clock: config.clock,
            next_broker: AtomicUsize::new(0),
            upload_sequence: AtomicUsize::new(0),
            obs,
            chaos,
        })
    }

    // ---- component access ----

    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    pub fn metastore(&self) -> &MetaStore {
        &self.metastore
    }

    pub fn streams(&self) -> &StreamRegistry {
        &self.streams
    }

    pub fn objstore(&self) -> &ObjectStoreRef {
        &self.objstore
    }

    pub fn cluster_manager(&self) -> &ClusterManager {
        &self.cluster
    }

    pub fn leader_controller(&self) -> Result<Arc<Controller>> {
        self.controllers
            .leader()
            .ok_or_else(|| PinotError::Cluster("no lead controller".into()))
    }

    pub fn controllers(&self) -> &ControllerGroup {
        &self.controllers
    }

    pub fn servers(&self) -> &[Arc<Server>] {
        &self.servers
    }

    pub fn brokers(&self) -> &[Arc<Broker>] {
        &self.brokers
    }

    pub fn minions(&self) -> &[Arc<Minion>] {
        &self.minions
    }

    /// A broker, round-robin (stands in for the client-side load balancer
    /// the paper places in front of the broker pool).
    pub fn broker(&self) -> Arc<Broker> {
        let i = self.next_broker.fetch_add(1, Ordering::Relaxed) % self.brokers.len();
        Arc::clone(&self.brokers[i])
    }

    // ---- table lifecycle ----

    /// Create a table (offline or realtime, per the config).
    pub fn create_table(&self, config: TableConfig, schema: Schema) -> Result<()> {
        self.leader_controller()?.create_table(config, schema)
    }

    pub fn delete_table(&self, name: &str, table_type: TableType) -> Result<()> {
        self.leader_controller()?.delete_table(name, table_type)
    }

    /// Build a segment from records using the table's index configuration
    /// (what the offline Hadoop push job does) and upload it.
    pub fn upload_rows(&self, logical_table: &str, rows: Vec<Record>) -> Result<SegmentName> {
        let leader = self.leader_controller()?;
        let qualified = format!("{logical_table}_OFFLINE");
        let config = leader.table_config(&qualified)?;
        let schema = leader.table_schema(logical_table)?;
        let seq = self.upload_sequence.fetch_add(1, Ordering::Relaxed);
        let name = SegmentName::offline(&qualified, seq as u64);

        let mut builder_cfg = BuilderConfig::new(name.as_str(), qualified.clone());
        if let Some(sorted) = &config.indexing.sorted_column {
            builder_cfg.sort_columns = vec![sorted.clone()];
        }
        builder_cfg.inverted_columns = config.indexing.inverted_index_columns.clone();
        builder_cfg.bloom_columns = config.indexing.bloom_filter_columns.clone();
        builder_cfg.created_at_millis = self.clock.now_millis();
        // Offline pushes of partitioned tables must partition the same way
        // as the realtime side (§4.4); single-partition-pure segments only
        // happen when the caller pre-partitions rows, so record partition
        // info only when all rows agree.
        if let pinot_common::config::RoutingStrategy::Partitioned {
            column,
            num_partitions,
        } = &config.routing
        {
            if let Some(idx) = schema.column_index(column) {
                let mut partition: Option<u32> = None;
                let mut uniform = true;
                for r in &rows {
                    let p = pinot_common::partition::partition_for_value(
                        &r.values()[idx],
                        *num_partitions,
                    );
                    match partition {
                        None => partition = Some(p),
                        Some(existing) if existing == p => {}
                        _ => {
                            uniform = false;
                            break;
                        }
                    }
                }
                if uniform {
                    if let Some(p) = partition {
                        builder_cfg.partition = Some(PartitionInfo {
                            column: column.clone(),
                            partition_id: p,
                            num_partitions: *num_partitions,
                        });
                    }
                }
            }
        }

        let mut builder = SegmentBuilder::new(schema, builder_cfg)?;
        for r in rows {
            builder.add(r)?;
        }
        let segment = builder.build()?;
        let blob = Bytes::from(pinot_segment::persist::serialize(&segment));
        leader.upload_segment(&qualified, blob)
    }

    /// Upload rows pre-partitioned by the table's partition column, one
    /// segment per partition (the paper's partitioned offline push).
    pub fn upload_rows_partitioned(
        &self,
        logical_table: &str,
        rows: Vec<Record>,
    ) -> Result<Vec<SegmentName>> {
        let leader = self.leader_controller()?;
        let qualified = format!("{logical_table}_OFFLINE");
        let config = leader.table_config(&qualified)?;
        let schema = leader.table_schema(logical_table)?;
        let pinot_common::config::RoutingStrategy::Partitioned {
            column,
            num_partitions,
        } = &config.routing
        else {
            return Err(PinotError::Metadata(format!(
                "table {qualified} is not partitioned"
            )));
        };
        let idx = schema.column_index(column).ok_or_else(|| {
            PinotError::Schema(format!("partition column {column:?} not in schema"))
        })?;
        let mut buckets: Vec<Vec<Record>> = vec![Vec::new(); *num_partitions as usize];
        for r in rows {
            let p = pinot_common::partition::partition_for_value(&r.values()[idx], *num_partitions);
            buckets[p as usize].push(r);
        }
        let mut names = Vec::new();
        for bucket in buckets {
            if bucket.is_empty() {
                continue;
            }
            names.push(self.upload_rows(logical_table, bucket)?);
        }
        Ok(names)
    }

    // ---- realtime ingestion ----

    /// Publish one event to a stream topic, routed by partition key.
    pub fn produce(&self, topic: &str, key: &Value, record: Record) -> Result<(u32, u64)> {
        self.streams
            .topic(topic)?
            .produce(key, record, self.clock.now_millis())
    }

    /// Drive realtime consumption one step on every server. Returns the
    /// number of records ingested.
    pub fn consume_tick(&self) -> Result<usize> {
        let mut total = 0;
        for s in &self.servers {
            total += s.consume_tick()?;
        }
        Ok(total)
    }

    /// Pump consumption until no server makes progress (all stream data
    /// ingested and all due segment commits settled).
    pub fn consume_until_idle(&self) -> Result<usize> {
        let mut total = 0;
        loop {
            let before = self.total_consuming_rows();
            let n = self.consume_tick()?;
            total += n;
            let after = self.total_consuming_rows();
            if n == 0 && before == after {
                // One extra tick lets in-flight completion polls settle.
                self.consume_tick()?;
                if self.total_consuming_rows() == after && self.consume_tick()? == 0 {
                    break;
                }
            }
        }
        Ok(total)
    }

    fn total_consuming_rows(&self) -> usize {
        self.servers
            .iter()
            .map(|s| s.num_consuming_segments())
            .sum()
    }

    // ---- querying ----

    /// Execute a query through a broker.
    pub fn execute(&self, request: &QueryRequest) -> QueryResponse {
        self.broker().execute(request)
    }

    /// Execute a query through a broker, returning its [`QueryTrace`]
    /// (phase spans, per-server times, per-segment plan kinds) alongside
    /// the response.
    pub fn execute_traced(&self, request: &QueryRequest) -> (QueryResponse, QueryTrace) {
        self.broker().execute_traced(request)
    }

    /// Convenience: run a PQL string with default settings.
    pub fn query(&self, pql: &str) -> QueryResponse {
        self.execute(&QueryRequest::new(pql))
    }

    /// Execute a query with profiling enabled: the response carries the
    /// merged broker → server → segment operator tree in
    /// [`QueryResponse::profile`](pinot_common::query::QueryResponse). The
    /// result payload and stats are identical to an unprofiled run.
    pub fn execute_profiled(&self, request: &QueryRequest) -> QueryResponse {
        let mut req = request.clone();
        req.profile = true;
        self.broker().execute(&req)
    }

    /// Run an `EXPLAIN` statement and render its report.
    ///
    /// `EXPLAIN PLAN FOR <query>` renders every hosted segment's plan
    /// decisions — prune verdict with level attribution, chosen plan kind,
    /// predicate evaluation order, batch-vs-row kernel — without executing
    /// anything. `EXPLAIN ANALYZE <query>` executes with profiling and
    /// renders the measured per-operator tree plus the execution stats.
    /// Hybrid tables produce one section per physical table, each on the
    /// unrewritten query (the time-boundary rewrite happens only when the
    /// query actually executes).
    pub fn explain(&self, pql: &str) -> Result<String> {
        match pinot_pql::parse_statement(pql)? {
            pinot_pql::Statement::Select(_) => Err(PinotError::InvalidQuery(
                "not an EXPLAIN statement; use query() to execute".into(),
            )),
            pinot_pql::Statement::ExplainPlan(query) => self.explain_plan(&query),
            pinot_pql::Statement::ExplainAnalyze(_) => {
                // ANALYZE turns on the per-conjunct access-path report on
                // top of profiling; `execute_profiled` alone leaves it off.
                let mut req = QueryRequest::new(strip_explain_prefix(pql));
                req.profile = true;
                req.analyze = true;
                let resp = self.broker().execute(&req);
                let mut out = String::from("EXPLAIN ANALYZE\n");
                if let Some(profile) = &resp.profile {
                    out.push_str(&profile.render_text());
                }
                out.push_str(&format!(
                    "stats: docs_scanned={} segments_processed={} segments_pruned={} time_ms={}",
                    resp.stats.num_docs_scanned,
                    resp.stats.num_segments_processed,
                    resp.stats.num_segments_pruned,
                    resp.stats.time_used_ms,
                ));
                // Survival-layer annotations, only when they fired: a
                // cache-served answer or hedged servers are visible right
                // in the ANALYZE output.
                if resp.stats.served_from_cache {
                    out.push_str(" cache=hit");
                }
                if resp.stats.hedges_issued > 0 {
                    out.push_str(&format!(
                        " hedges={}/{}",
                        resp.stats.hedges_won, resp.stats.hedges_issued
                    ));
                }
                out.push('\n');
                for e in &resp.exceptions {
                    out.push_str(&format!("exception: {e}\n"));
                }
                Ok(out)
            }
        }
    }

    fn explain_plan(&self, query: &pinot_pql::Query) -> Result<String> {
        let tables = self.cluster.tables();
        let offline = format!("{}_OFFLINE", query.table);
        let realtime = format!("{}_REALTIME", query.table);
        let mut physical = Vec::new();
        if tables.contains(&query.table) {
            physical.push(query.table.clone());
        } else {
            if tables.contains(&offline) {
                physical.push(offline);
            }
            if tables.contains(&realtime) {
                physical.push(realtime);
            }
        }
        if physical.is_empty() {
            return Err(PinotError::Metadata(format!(
                "unknown table {:?}",
                query.table
            )));
        }
        let sections = physical.len();
        let mut out = String::new();
        for table in physical {
            // Replication hosts the same segment on several servers with
            // identical physical layout; keep the first explanation per
            // segment name for a deterministic, deduplicated plan.
            let mut by_name = std::collections::BTreeMap::new();
            for server in &self.servers {
                if server.hosted_segments(&table).is_empty() {
                    continue;
                }
                for e in server.explain_segments(&table, query)? {
                    by_name.entry(e.segment.clone()).or_insert(e);
                }
            }
            if sections > 1 {
                out.push_str(&format!("-- {table}\n"));
            }
            out.push_str(&pinot_exec::render_plan(
                query,
                by_name.into_values().collect(),
            ));
        }
        Ok(out)
    }

    // ---- observability ----

    /// The observability sink shared by every component of this cluster.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The fault injector shared by every component of this cluster; arm
    /// faults on it to exercise failure paths deterministically.
    pub fn chaos(&self) -> &Arc<FaultInjector> {
        &self.chaos
    }

    /// Point-in-time snapshot of all metrics recorded by the cluster's
    /// brokers, servers, and controllers.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.metrics.snapshot()
    }

    /// Recent slow, partial, or errored queries (with their traces).
    pub fn recent_queries(&self) -> Vec<QueryLogEntry> {
        self.obs.query_log.recent()
    }

    /// Plain-text rendering of the current metrics, for dashboards/debug.
    pub fn render_metrics(&self) -> String {
        self.metrics_snapshot().render_text()
    }

    // ---- maintenance ----

    /// Run retention GC on the lead controller.
    pub fn run_retention(&self) -> Result<Vec<(String, String)>> {
        self.leader_controller()?.run_retention()
    }

    /// Run a purge task on the first minion.
    pub fn run_purge(&self, spec: &PurgeSpec) -> Result<TaskReport> {
        self.minions
            .first()
            .ok_or_else(|| PinotError::Cluster("no minions".into()))?
            .run_purge(spec)
    }

    /// Run a reindex task on the first minion.
    pub fn run_reindex(&self, table: &str) -> Result<TaskReport> {
        self.minions
            .first()
            .ok_or_else(|| PinotError::Cluster("no minions".into()))?
            .run_reindex(table)
    }

    // ---- failure injection (tests, fault-tolerance benchmarks) ----

    /// Kill a server: it leaves the cluster and its replicas leave the
    /// external view (brokers reroute on the next query).
    pub fn kill_server(&self, n: usize) -> Result<()> {
        let id = InstanceId::server(n);
        if !self.servers.iter().any(|s| *s.id() == id) {
            return Err(PinotError::Cluster(format!("no server {id}")));
        }
        self.cluster.unregister_participant(&id);
        Ok(())
    }

    /// Restart a killed server as a blank node (§3.4: any node can be
    /// replaced by a blank one) and reload its replicas.
    pub fn restart_server(&self, n: usize) -> Result<()> {
        let id = InstanceId::server(n);
        let server = self
            .servers
            .iter()
            .find(|s| *s.id() == id)
            .ok_or_else(|| PinotError::Cluster(format!("no server {id}")))?;
        self.cluster
            .register_participant(Arc::clone(server) as Arc<dyn pinot_cluster::Participant>);
        for table in self.cluster.tables() {
            self.cluster.rebalance(&table)?;
        }
        Ok(())
    }

    /// Crash the current lead controller; the group elects a new leader on
    /// the next call that needs one.
    pub fn crash_leader_controller(&self) -> Result<InstanceId> {
        let leader = self.leader_controller()?;
        let id = leader.id().clone();
        leader.crash();
        Ok(id)
    }
}
