//! Helix-like cluster management (§3.2–3.3, Figures 2–4).
//!
//! Apache Helix models cluster state with per-resource state machines: an
//! operator-owned **ideal state** (which instance should hold which segment
//! in which state) and an observed **external view** (what instances
//! actually report). When the ideal state changes, the manager computes the
//! per-replica state transitions and dispatches them to *participants*
//! (servers); successful transitions update the external view, failures
//! park the replica in `Error`. Brokers subscribe to external-view changes
//! to refresh their routing tables (§3.3.2).
//!
//! The segment state machine is the paper's Figure 3:
//!
//! ```text
//! OFFLINE → ONLINE      (load an immutable segment)
//! OFFLINE → CONSUMING   (start a realtime consuming segment)
//! CONSUMING → ONLINE    (completion protocol committed the segment)
//! CONSUMING → OFFLINE   (abort consumption)
//! ONLINE → OFFLINE      (unload)
//! OFFLINE → DROPPED     (delete local data)
//! ```

use parking_lot::RwLock;
use pinot_common::ids::InstanceId;
use pinot_common::{PinotError, Result};
use pinot_metastore::MetaStore;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Replica state in the segment state machine (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentState {
    Offline,
    Consuming,
    Online,
    Error,
    Dropped,
}

impl SegmentState {
    pub fn name(&self) -> &'static str {
        match self {
            SegmentState::Offline => "OFFLINE",
            SegmentState::Consuming => "CONSUMING",
            SegmentState::Online => "ONLINE",
            SegmentState::Error => "ERROR",
            SegmentState::Dropped => "DROPPED",
        }
    }
}

/// The legal single-step transitions of the state machine.
pub fn legal_transition(from: SegmentState, to: SegmentState) -> bool {
    use SegmentState::*;
    matches!(
        (from, to),
        (Offline, Online)
            | (Offline, Consuming)
            | (Consuming, Online)
            | (Consuming, Offline)
            | (Online, Offline)
            | (Offline, Dropped)
            | (Error, Offline)
    )
}

/// The shortest legal path from `from` to `to`, excluding `from` itself.
/// `None` when unreachable.
pub fn transition_path(from: SegmentState, to: SegmentState) -> Option<Vec<SegmentState>> {
    use SegmentState::*;
    if from == to {
        return Some(Vec::new());
    }
    // The machine is tiny; enumerate breadth-first.
    let mut frontier = vec![(from, Vec::new())];
    let mut seen = vec![from];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for (state, path) in frontier {
            for cand in [Offline, Consuming, Online, Error, Dropped] {
                if !legal_transition(state, cand) || seen.contains(&cand) {
                    continue;
                }
                let mut p: Vec<SegmentState> = path.clone();
                p.push(cand);
                if cand == to {
                    return Some(p);
                }
                seen.push(cand);
                next.push((cand, p));
            }
        }
        frontier = next;
    }
    None
}

/// Desired placement of one table's segments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IdealState {
    /// segment name → instance → desired state.
    pub segments: BTreeMap<String, BTreeMap<InstanceId, SegmentState>>,
}

impl IdealState {
    pub fn assign(&mut self, segment: &str, instance: InstanceId, state: SegmentState) {
        self.segments
            .entry(segment.to_string())
            .or_default()
            .insert(instance, state);
    }

    /// Instances assigned (in any state) to a segment.
    pub fn instances_for(&self, segment: &str) -> Vec<InstanceId> {
        self.segments
            .get(segment)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default()
    }
}

/// Observed placement: segment → instance → current state.
pub type ExternalView = BTreeMap<String, BTreeMap<InstanceId, SegmentState>>;

/// A node that executes state transitions (servers).
pub trait Participant: Send + Sync {
    fn instance_id(&self) -> InstanceId;

    /// Execute one state transition; an error parks the replica in ERROR.
    fn handle_transition(
        &self,
        table: &str,
        segment: &str,
        from: SegmentState,
        to: SegmentState,
    ) -> Result<()>;
}

/// Change notification delivered to external-view subscribers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChange {
    pub table: String,
    pub segment: String,
    pub instance: InstanceId,
    pub state: SegmentState,
}

type ViewSubscriber = Box<dyn Fn(&ViewChange) + Send + Sync>;

struct Inner {
    participants: HashMap<InstanceId, Arc<dyn Participant>>,
    ideal: HashMap<String, IdealState>,
    view: HashMap<String, ExternalView>,
    subscribers: Vec<ViewSubscriber>,
}

/// The cluster manager (one logical instance per cluster, like the Helix
/// controller embedded in each Pinot controller).
#[derive(Clone)]
pub struct ClusterManager {
    metastore: MetaStore,
    inner: Arc<RwLock<Inner>>,
}

impl ClusterManager {
    pub fn new(metastore: MetaStore) -> ClusterManager {
        ClusterManager {
            metastore,
            inner: Arc::new(RwLock::new(Inner {
                participants: HashMap::new(),
                ideal: HashMap::new(),
                view: HashMap::new(),
                subscribers: Vec::new(),
            })),
        }
    }

    pub fn metastore(&self) -> &MetaStore {
        &self.metastore
    }

    /// Register a live participant (server joining the cluster).
    pub fn register_participant(&self, p: Arc<dyn Participant>) {
        let id = p.instance_id();
        self.inner.write().participants.insert(id.clone(), p);
        let _ = self
            .metastore
            .set(&format!("/instances/{id}"), "live", None);
    }

    /// Remove a participant (node death). Its replicas leave the external
    /// view so brokers stop routing to it; ideal state is untouched, and a
    /// later `rebalance` will re-dispatch transitions when it returns.
    pub fn unregister_participant(&self, id: &InstanceId) {
        let mut inner = self.inner.write();
        inner.participants.remove(id);
        let mut changes = Vec::new();
        for (table, view) in inner.view.iter_mut() {
            for (segment, replicas) in view.iter_mut() {
                if replicas.remove(id).is_some() {
                    changes.push(ViewChange {
                        table: table.clone(),
                        segment: segment.clone(),
                        instance: id.clone(),
                        state: SegmentState::Offline,
                    });
                }
            }
        }
        for c in &changes {
            for s in &inner.subscribers {
                s(c);
            }
        }
        drop(inner);
        let _ = self.metastore.delete(&format!("/instances/{id}"));
    }

    pub fn live_instances(&self) -> Vec<InstanceId> {
        let mut v: Vec<InstanceId> = self.inner.read().participants.keys().cloned().collect();
        v.sort();
        v
    }

    /// Subscribe to external-view changes (broker routing refresh).
    pub fn subscribe_view(&self, f: impl Fn(&ViewChange) + Send + Sync + 'static) {
        self.inner.write().subscribers.push(Box::new(f));
    }

    /// Replace a table's ideal state and reconcile.
    pub fn set_ideal_state(&self, table: &str, ideal: IdealState) -> Result<()> {
        {
            let mut inner = self.inner.write();
            inner.ideal.insert(table.to_string(), ideal.clone());
        }
        // Persist for observability and controller failover.
        let rendered: Vec<String> = ideal
            .segments
            .iter()
            .flat_map(|(seg, m)| {
                m.iter()
                    .map(move |(inst, st)| format!("{seg}:{inst}:{}", st.name()))
            })
            .collect();
        self.metastore
            .set(&format!("/idealstates/{table}"), rendered.join(","), None)?;
        self.rebalance(table)
    }

    pub fn ideal_state(&self, table: &str) -> Option<IdealState> {
        self.inner.read().ideal.get(table).cloned()
    }

    /// Remove a table entirely (ideal state + external view after drops).
    pub fn remove_table(&self, table: &str) -> Result<()> {
        self.set_ideal_state(table, IdealState::default())?;
        let mut inner = self.inner.write();
        inner.ideal.remove(table);
        inner.view.remove(table);
        drop(inner);
        let _ = self.metastore.delete(&format!("/idealstates/{table}"));
        Ok(())
    }

    /// Current external view snapshot for a table.
    pub fn external_view(&self, table: &str) -> ExternalView {
        self.inner
            .read()
            .view
            .get(table)
            .cloned()
            .unwrap_or_default()
    }

    /// All tables with an ideal state.
    pub fn tables(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().ideal.keys().cloned().collect();
        v.sort();
        v
    }

    /// Reconcile one table: walk every (segment, replica) whose external
    /// state differs from the ideal state and dispatch the transition path.
    pub fn rebalance(&self, table: &str) -> Result<()> {
        let mut work = Vec::new();
        {
            let inner = self.inner.read();
            let Some(ideal) = inner.ideal.get(table) else {
                return Err(PinotError::Cluster(format!("no ideal state for {table}")));
            };
            let view = inner.view.get(table).cloned().unwrap_or_default();
            for (segment, replicas) in &ideal.segments {
                for (instance, &target) in replicas {
                    if !inner.participants.contains_key(instance) {
                        continue; // dead node; retried on rejoin
                    }
                    let current = view
                        .get(segment)
                        .and_then(|m| m.get(instance))
                        .copied()
                        .unwrap_or(SegmentState::Offline);
                    if current != target && current != SegmentState::Error {
                        work.push((segment.clone(), instance.clone(), current, target));
                    }
                }
            }
            // Replicas in the view but no longer in the ideal state drop.
            for (segment, replicas) in &view {
                for (instance, &current) in replicas {
                    let still_wanted = ideal
                        .segments
                        .get(segment)
                        .is_some_and(|m| m.contains_key(instance));
                    if !still_wanted
                        && current != SegmentState::Dropped
                        && inner.participants.contains_key(instance)
                    {
                        work.push((
                            segment.clone(),
                            instance.clone(),
                            current,
                            SegmentState::Dropped,
                        ));
                    }
                }
            }
        }

        for (segment, instance, current, target) in work {
            self.run_transitions(table, &segment, &instance, current, target);
        }
        Ok(())
    }

    fn run_transitions(
        &self,
        table: &str,
        segment: &str,
        instance: &InstanceId,
        from: SegmentState,
        to: SegmentState,
    ) {
        let Some(path) = transition_path(from, to) else {
            self.record_state(table, segment, instance, SegmentState::Error);
            return;
        };
        let participant = match self.inner.read().participants.get(instance) {
            Some(p) => Arc::clone(p),
            None => return,
        };
        let mut current = from;
        for next in path {
            match participant.handle_transition(table, segment, current, next) {
                Ok(()) => {
                    current = next;
                    self.record_state(table, segment, instance, next);
                }
                Err(_) => {
                    self.record_state(table, segment, instance, SegmentState::Error);
                    return;
                }
            }
        }
    }

    /// Record an observed state (also used by servers reporting transitions
    /// they initiate themselves, e.g. CONSUMING→ONLINE after a commit).
    pub fn record_state(
        &self,
        table: &str,
        segment: &str,
        instance: &InstanceId,
        state: SegmentState,
    ) {
        let mut inner = self.inner.write();
        let view = inner.view.entry(table.to_string()).or_default();
        if state == SegmentState::Dropped {
            if let Some(m) = view.get_mut(segment) {
                m.remove(instance);
                if m.is_empty() {
                    view.remove(segment);
                }
            }
        } else {
            view.entry(segment.to_string())
                .or_default()
                .insert(instance.clone(), state);
        }
        let change = ViewChange {
            table: table.to_string(),
            segment: segment.to_string(),
            instance: instance.clone(),
            state,
        };
        for s in &inner.subscribers {
            s(&change);
        }
    }

    /// Segments a broker may route to on each instance (ONLINE or
    /// CONSUMING replicas only).
    pub fn routable_view(&self, table: &str) -> BTreeMap<InstanceId, Vec<String>> {
        let mut out: BTreeMap<InstanceId, Vec<String>> = BTreeMap::new();
        for (segment, replicas) in self.external_view(table) {
            for (instance, state) in replicas {
                if matches!(state, SegmentState::Online | SegmentState::Consuming) {
                    out.entry(instance).or_default().push(segment.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// Test participant that records transitions and can be told to fail.
    struct FakeServer {
        id: InstanceId,
        log: Mutex<Vec<(String, String, SegmentState, SegmentState)>>,
        fail_on: Mutex<Option<SegmentState>>,
    }

    impl FakeServer {
        fn new(n: usize) -> Arc<FakeServer> {
            Arc::new(FakeServer {
                id: InstanceId::server(n),
                log: Mutex::new(Vec::new()),
                fail_on: Mutex::new(None),
            })
        }
    }

    impl Participant for FakeServer {
        fn instance_id(&self) -> InstanceId {
            self.id.clone()
        }

        fn handle_transition(
            &self,
            table: &str,
            segment: &str,
            from: SegmentState,
            to: SegmentState,
        ) -> Result<()> {
            if *self.fail_on.lock() == Some(to) {
                return Err(PinotError::Segment("injected failure".into()));
            }
            self.log
                .lock()
                .push((table.to_string(), segment.to_string(), from, to));
            Ok(())
        }
    }

    #[test]
    fn transition_paths() {
        use SegmentState::*;
        assert_eq!(transition_path(Offline, Online), Some(vec![Online]));
        assert_eq!(transition_path(Offline, Consuming), Some(vec![Consuming]));
        assert_eq!(
            transition_path(Online, Dropped),
            Some(vec![Offline, Dropped])
        );
        assert_eq!(
            transition_path(Consuming, Dropped),
            Some(vec![Offline, Dropped])
        );
        assert_eq!(transition_path(Online, Online), Some(vec![]));
        assert_eq!(transition_path(Dropped, Online), None);
    }

    #[test]
    fn ideal_state_drives_transitions() {
        let cm = ClusterManager::new(MetaStore::new());
        let s1 = FakeServer::new(1);
        let s2 = FakeServer::new(2);
        cm.register_participant(s1.clone());
        cm.register_participant(s2.clone());

        let mut ideal = IdealState::default();
        ideal.assign("seg_a", InstanceId::server(1), SegmentState::Online);
        ideal.assign("seg_a", InstanceId::server(2), SegmentState::Online);
        ideal.assign("seg_b", InstanceId::server(1), SegmentState::Online);
        cm.set_ideal_state("t_OFFLINE", ideal).unwrap();

        let view = cm.external_view("t_OFFLINE");
        assert_eq!(view["seg_a"].len(), 2);
        assert_eq!(view["seg_a"][&InstanceId::server(1)], SegmentState::Online);
        assert_eq!(view["seg_b"][&InstanceId::server(1)], SegmentState::Online);
        assert_eq!(s1.log.lock().len(), 2); // seg_a + seg_b
        assert_eq!(s2.log.lock().len(), 1);
    }

    #[test]
    fn removal_from_ideal_drops_replicas() {
        let cm = ClusterManager::new(MetaStore::new());
        let s1 = FakeServer::new(1);
        cm.register_participant(s1.clone());
        let mut ideal = IdealState::default();
        ideal.assign("seg", InstanceId::server(1), SegmentState::Online);
        cm.set_ideal_state("t", ideal).unwrap();
        assert_eq!(cm.external_view("t").len(), 1);

        cm.set_ideal_state("t", IdealState::default()).unwrap();
        assert!(cm.external_view("t").is_empty());
        // The drop path went Online→Offline→Dropped.
        let log = s1.log.lock();
        assert_eq!(log[1].3, SegmentState::Offline);
        assert_eq!(log[2].3, SegmentState::Dropped);
    }

    #[test]
    fn failed_transition_parks_in_error() {
        let cm = ClusterManager::new(MetaStore::new());
        let s1 = FakeServer::new(1);
        *s1.fail_on.lock() = Some(SegmentState::Online);
        cm.register_participant(s1.clone());
        let mut ideal = IdealState::default();
        ideal.assign("seg", InstanceId::server(1), SegmentState::Online);
        cm.set_ideal_state("t", ideal).unwrap();
        assert_eq!(
            cm.external_view("t")["seg"][&InstanceId::server(1)],
            SegmentState::Error
        );
        // Error replicas are not routable.
        assert!(cm.routable_view("t").is_empty());
        // A later rebalance leaves the error replica alone (operator reset).
        cm.rebalance("t").unwrap();
        assert_eq!(
            cm.external_view("t")["seg"][&InstanceId::server(1)],
            SegmentState::Error
        );
    }

    #[test]
    fn dead_node_leaves_view_and_rejoins() {
        let cm = ClusterManager::new(MetaStore::new());
        let s1 = FakeServer::new(1);
        cm.register_participant(s1.clone());
        let mut ideal = IdealState::default();
        ideal.assign("seg", InstanceId::server(1), SegmentState::Online);
        cm.set_ideal_state("t", ideal).unwrap();

        cm.unregister_participant(&InstanceId::server(1));
        assert!(cm
            .external_view("t")
            .get("seg")
            .is_none_or(|m| m.is_empty()));
        assert!(cm.routable_view("t").is_empty());

        // Node comes back blank (share-nothing: a new empty node, §3.4);
        // rebalance reloads its replicas.
        let s1b = FakeServer::new(1);
        cm.register_participant(s1b.clone());
        cm.rebalance("t").unwrap();
        assert_eq!(
            cm.external_view("t")["seg"][&InstanceId::server(1)],
            SegmentState::Online
        );
    }

    #[test]
    fn consuming_lifecycle() {
        let cm = ClusterManager::new(MetaStore::new());
        let s1 = FakeServer::new(1);
        cm.register_participant(s1.clone());
        let mut ideal = IdealState::default();
        ideal.assign("seg__0__0", InstanceId::server(1), SegmentState::Consuming);
        cm.set_ideal_state("t_REALTIME", ideal).unwrap();
        assert_eq!(
            cm.external_view("t_REALTIME")["seg__0__0"][&InstanceId::server(1)],
            SegmentState::Consuming
        );
        // Consuming replicas are routable (they answer realtime queries).
        assert_eq!(cm.routable_view("t_REALTIME").len(), 1);

        // Server self-reports the commit (CONSUMING→ONLINE).
        cm.record_state(
            "t_REALTIME",
            "seg__0__0",
            &InstanceId::server(1),
            SegmentState::Online,
        );
        assert_eq!(
            cm.external_view("t_REALTIME")["seg__0__0"][&InstanceId::server(1)],
            SegmentState::Online
        );
    }

    #[test]
    fn view_subscribers_get_changes() {
        let cm = ClusterManager::new(MetaStore::new());
        let s1 = FakeServer::new(1);
        cm.register_participant(s1);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        cm.subscribe_view(move |c| seen2.lock().push(c.clone()));
        let mut ideal = IdealState::default();
        ideal.assign("seg", InstanceId::server(1), SegmentState::Online);
        cm.set_ideal_state("t", ideal).unwrap();
        let events = seen.lock();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].state, SegmentState::Online);
        assert_eq!(events[0].segment, "seg");
    }

    #[test]
    fn remove_table_cleans_up() {
        let cm = ClusterManager::new(MetaStore::new());
        let s1 = FakeServer::new(1);
        cm.register_participant(s1);
        let mut ideal = IdealState::default();
        ideal.assign("seg", InstanceId::server(1), SegmentState::Online);
        cm.set_ideal_state("t", ideal).unwrap();
        cm.remove_table("t").unwrap();
        assert!(cm.tables().is_empty());
        assert!(cm.external_view("t").is_empty());
        assert!(cm.rebalance("t").is_err());
    }
}
