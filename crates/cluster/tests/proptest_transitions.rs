//! Properties of the segment state machine (Figure 3): every path that
//! `transition_path` plans is legal step by step, visits no state twice,
//! and is minimal against an independent breadth-first oracle.

use pinot_cluster::{legal_transition, transition_path, SegmentState};
use proptest::prelude::*;

const STATES: [SegmentState; 5] = [
    SegmentState::Offline,
    SegmentState::Consuming,
    SegmentState::Online,
    SegmentState::Error,
    SegmentState::Dropped,
];

fn state_strategy() -> impl Strategy<Value = SegmentState> {
    prop::sample::select(STATES.to_vec())
}

/// Independent shortest-distance oracle over `legal_transition` edges.
fn bfs_distance(from: SegmentState, to: SegmentState) -> Option<usize> {
    if from == to {
        return Some(0);
    }
    let mut dist = vec![(from, 0usize)];
    let mut cursor = 0;
    while cursor < dist.len() {
        let (state, d) = dist[cursor];
        cursor += 1;
        for cand in STATES {
            if legal_transition(state, cand) && !dist.iter().any(|(s, _)| *s == cand) {
                if cand == to {
                    return Some(d + 1);
                }
                dist.push((cand, d + 1));
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn planned_paths_are_legal_step_by_step(
        from in state_strategy(),
        to in state_strategy(),
    ) {
        if let Some(path) = transition_path(from, to) {
            let mut prev = from;
            for step in &path {
                prop_assert!(
                    legal_transition(prev, *step),
                    "illegal hop {} -> {} in path {:?}",
                    prev.name(),
                    step.name(),
                    path
                );
                prev = *step;
            }
            if from != to {
                prop_assert_eq!(*path.last().unwrap(), to);
            } else {
                prop_assert!(path.is_empty());
            }
        }
    }

    #[test]
    fn planned_paths_never_revisit_a_state(
        from in state_strategy(),
        to in state_strategy(),
    ) {
        if let Some(path) = transition_path(from, to) {
            let mut seen = vec![from];
            for step in &path {
                prop_assert!(
                    !seen.contains(step),
                    "path {:?} revisits {}",
                    path,
                    step.name()
                );
                seen.push(*step);
            }
        }
    }

    #[test]
    fn planned_paths_are_minimal_and_complete(
        from in state_strategy(),
        to in state_strategy(),
    ) {
        let oracle = bfs_distance(from, to);
        match transition_path(from, to) {
            Some(path) => prop_assert_eq!(Some(path.len()), oracle),
            None => prop_assert_eq!(oracle, None, "{} -> {} reachable but unplanned", from.name(), to.name()),
        }
    }

    #[test]
    fn direct_edges_plan_single_hops(
        from in state_strategy(),
        to in state_strategy(),
    ) {
        if from != to && legal_transition(from, to) {
            prop_assert_eq!(transition_path(from, to), Some(vec![to]));
        }
    }
}
