//! The Pinot controller (§3.2).
//!
//! Controllers own the authoritative segment→server mapping, handle
//! administrative operations (tables, schemas, uploads, deletion), garbage
//! collect expired segments, enforce storage quotas, and run the realtime
//! segment-completion protocol. Multiple controller instances run per
//! cluster with a single leader elected through the metastore; non-leaders
//! answer completion polls with `NOTLEADER` and administrative calls with a
//! `NotLeader` error, exactly mirroring the paper's three-controller
//! deployment where "non-leader controllers are mostly idle".

pub mod assignment;
pub mod completion;

use bytes::Bytes;
use completion::{CompletionConfig, CompletionFsm};
use parking_lot::Mutex;
use pinot_chaos::{sites, FaultAction, FaultContext, FaultInjector};
use pinot_cluster::{ClusterManager, IdealState, SegmentState};
use pinot_common::config::TableConfig;
use pinot_common::ids::{InstanceId, SegmentName, TableName, TableType};
use pinot_common::json::Json;
use pinot_common::protocol::{CompletionInstruction, CompletionPoll, Offset};
use pinot_common::time::Clock;
use pinot_common::{PinotError, Result, RetryPolicy, Schema};
use pinot_metastore::{MetaStore, SessionId};
use pinot_objstore::ObjectStoreRef;
use pinot_obs::Obs;
use pinot_segment::ImmutableSegment;
use pinot_stream::StreamRegistry;
use std::collections::HashMap;
use std::sync::Arc;

/// Election scope for controller leadership in the metastore.
const LEADER_SCOPE: &str = "controllers";

/// One controller instance.
pub struct Controller {
    id: InstanceId,
    metastore: MetaStore,
    session: SessionId,
    cluster: ClusterManager,
    objstore: ObjectStoreRef,
    streams: StreamRegistry,
    clock: Clock,
    completions: Mutex<HashMap<String, CompletionFsm>>,
    /// Gathering/commit timeouts handed to each new completion FSM.
    completion_config: CompletionConfig,
    obs: Arc<Obs>,
    /// Fault-injection hook; a default (empty) injector in production.
    chaos: Mutex<Arc<FaultInjector>>,
    /// Backoff for transient metastore write failures (CAS contention).
    retry: RetryPolicy,
}

impl Controller {
    pub fn new(
        n: usize,
        metastore: MetaStore,
        cluster: ClusterManager,
        objstore: ObjectStoreRef,
        streams: StreamRegistry,
        clock: Clock,
    ) -> Arc<Controller> {
        Controller::with_obs(
            n,
            metastore,
            cluster,
            objstore,
            streams,
            clock,
            Obs::shared(),
        )
    }

    /// Like [`Controller::new`] but sharing a cluster-wide observability sink.
    pub fn with_obs(
        n: usize,
        metastore: MetaStore,
        cluster: ClusterManager,
        objstore: ObjectStoreRef,
        streams: StreamRegistry,
        clock: Clock,
        obs: Arc<Obs>,
    ) -> Arc<Controller> {
        let session = metastore.create_session();
        Arc::new(Controller {
            id: InstanceId::controller(n),
            metastore,
            session,
            cluster,
            objstore,
            streams,
            clock,
            completions: Mutex::new(HashMap::new()),
            completion_config: CompletionConfig::default(),
            obs,
            chaos: Mutex::new(Arc::new(FaultInjector::new())),
            retry: RetryPolicy::default().with_seed(0x5EED ^ n as u64),
        })
    }

    /// Install a shared fault injector (chaos tests); the default injector
    /// has nothing armed and injects nothing.
    pub fn set_fault_injector(&self, chaos: Arc<FaultInjector>) {
        *self.chaos.lock() = chaos;
    }

    fn chaos(&self) -> Arc<FaultInjector> {
        Arc::clone(&self.chaos.lock())
    }

    /// Write to the metastore with chaos interception and bounded retry:
    /// transient failures (injected CAS contention, I/O blips) back off and
    /// re-issue the same write; genuine version conflicts are `Metadata`
    /// errors, which are *not* retriable — re-sending a stale CAS can only
    /// fail again, so those propagate for the caller to re-read.
    fn meta_set_retried(
        &self,
        path: &str,
        value: String,
        expected_version: Option<u64>,
    ) -> Result<u64> {
        let chaos = self.chaos();
        let ctx = FaultContext::new().instance(self.id.to_string());
        self.retry.run(|attempt| {
            if attempt > 1 {
                self.obs.metrics.counter_add("controller.meta.cas_retry", 1);
            }
            if let Some(action) = chaos.intercept(sites::METASTORE_CAS, &ctx) {
                match action {
                    FaultAction::Fail(e) => return Err(e),
                    FaultAction::Delay(ms) => {
                        std::thread::sleep(std::time::Duration::from_millis(ms))
                    }
                    FaultAction::Crash => {
                        self.crash();
                        return Err(PinotError::Io(format!("{} crashed (injected)", self.id)));
                    }
                }
            }
            self.metastore.set(path, value.clone(), expected_version)
        })
    }

    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    pub fn id(&self) -> &InstanceId {
        &self.id
    }

    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    pub fn cluster(&self) -> &ClusterManager {
        &self.cluster
    }

    pub fn objstore(&self) -> &ObjectStoreRef {
        &self.objstore
    }

    /// Try to acquire (or confirm) leadership.
    pub fn try_become_leader(&self) -> bool {
        self.metastore
            .elect_leader(LEADER_SCOPE, self.session, self.id.as_str())
            .unwrap_or(false)
    }

    pub fn is_leader(&self) -> bool {
        self.metastore.leader(LEADER_SCOPE).as_deref() == Some(self.id.as_str())
    }

    /// Simulate this controller crashing: its session expires (releasing
    /// leadership) and its in-memory completion FSMs are lost.
    pub fn crash(&self) {
        self.metastore.expire_session(self.session);
        self.completions.lock().clear();
    }

    fn require_leader(&self) -> Result<()> {
        if self.is_leader() {
            Ok(())
        } else {
            Err(PinotError::NotLeader(format!(
                "{} is not the lead controller",
                self.id
            )))
        }
    }

    // ---- table administration ----

    /// Create a table (and register its schema). For realtime tables this
    /// also provisions the initial consuming segments on every stream
    /// partition.
    pub fn create_table(&self, config: TableConfig, schema: Schema) -> Result<()> {
        self.require_leader()?;
        config.validate()?;
        let table = TableName::new(config.name.clone(), config.table_type);
        let config_path = format!("/configs/{}", table.qualified());
        if self.metastore.exists(&config_path) {
            return Err(PinotError::Metadata(format!(
                "table {} already exists",
                table.qualified()
            )));
        }
        self.meta_set_retried(
            &format!("/schemas/{}", config.name),
            schema.to_json().emit(),
            None,
        )?;
        self.metastore
            .create(&config_path, config.to_json().emit(), None)?;
        self.cluster
            .set_ideal_state(&table.qualified(), IdealState::default())?;

        if config.table_type == TableType::Realtime {
            self.provision_consuming_segments(&table, &config)?;
        }
        Ok(())
    }

    /// Remove a table: drop replicas, delete blobs and metadata.
    pub fn delete_table(&self, name: &str, table_type: TableType) -> Result<()> {
        self.require_leader()?;
        let table = TableName::new(name, table_type);
        let qualified = table.qualified();
        self.cluster.remove_table(&qualified)?;
        for key in self.objstore.list(&format!("segments/{qualified}/")) {
            let _ = self.objstore.delete(&key);
        }
        for child in self.metastore.children(&format!("/segments/{qualified}")) {
            let _ = self
                .metastore
                .delete(&format!("/segments/{qualified}/{child}"));
        }
        self.metastore.delete(&format!("/configs/{qualified}"))?;
        Ok(())
    }

    pub fn table_config(&self, qualified: &str) -> Result<TableConfig> {
        let (text, _) = self
            .metastore
            .get(&format!("/configs/{qualified}"))
            .ok_or_else(|| PinotError::Metadata(format!("no table {qualified}")))?;
        TableConfig::from_json(&Json::parse(&text)?)
    }

    pub fn table_schema(&self, raw_name: &str) -> Result<Schema> {
        let (text, _) = self
            .metastore
            .get(&format!("/schemas/{raw_name}"))
            .ok_or_else(|| PinotError::Metadata(format!("no schema for {raw_name}")))?;
        Schema::from_json(&Json::parse(&text)?)
    }

    /// All physical tables (qualified names).
    pub fn list_tables(&self) -> Vec<String> {
        self.metastore.children("/configs")
    }

    /// Schema evolution: add a column on the fly (§5.2). Existing segments
    /// keep serving the default value for the new column.
    pub fn add_column(&self, raw_name: &str, field: pinot_common::FieldSpec) -> Result<Schema> {
        self.require_leader()?;
        let schema = self.table_schema(raw_name)?;
        let evolved = schema.with_added_column(field)?;
        self.meta_set_retried(
            &format!("/schemas/{raw_name}"),
            evolved.to_json().emit(),
            None,
        )?;
        Ok(evolved)
    }

    /// Update a table's config (index settings, routing, quotas, ...).
    pub fn update_table_config(&self, config: TableConfig) -> Result<()> {
        self.require_leader()?;
        config.validate()?;
        let table = TableName::new(config.name.clone(), config.table_type);
        let path = format!("/configs/{}", table.qualified());
        if !self.metastore.exists(&path) {
            return Err(PinotError::Metadata(format!(
                "table {} does not exist",
                table.qualified()
            )));
        }
        self.meta_set_retried(&path, config.to_json().emit(), None)?;
        Ok(())
    }

    // ---- segment upload (offline push, §3.3.5 / Figure 8) ----

    /// Upload a serialized segment blob to a table. The controller unpacks
    /// it to verify integrity, checks the storage quota, persists blob +
    /// metadata, and updates the ideal state so servers load it.
    pub fn upload_segment(&self, qualified_table: &str, blob: Bytes) -> Result<SegmentName> {
        self.require_leader()?;
        let config = self.table_config(qualified_table)?;

        // 1. Unpack to verify integrity.
        let segment = pinot_segment::persist::deserialize(&blob)?;
        let segment_name = SegmentName::from_raw(segment.name());

        // 2. Quota check: existing data plus this blob must fit.
        if let Some(quota) = config.quota_bytes {
            let used = self
                .objstore
                .size_under(&format!("segments/{qualified_table}/"));
            if used + blob.len() as u64 > quota {
                return Err(PinotError::StorageQuota(format!(
                    "table {qualified_table} quota {quota}B exceeded ({used}B used, +{}B)",
                    blob.len()
                )));
            }
        }

        // 3. Persist blob, then metadata.
        self.objstore
            .put(&format!("segments/{qualified_table}/{segment_name}"), blob)?;
        self.write_segment_metadata(qualified_table, &segment)?;

        // 4. Assign replicas and update the desired cluster state.
        let servers = self.assign_servers(qualified_table, config.replication)?;
        let mut ideal = self
            .cluster
            .ideal_state(qualified_table)
            .unwrap_or_default();
        // Re-uploading an existing name replaces the segment: drop old
        // replicas first so servers reload the new blob.
        if ideal.segments.remove(segment_name.as_str()).is_some() {
            self.cluster
                .set_ideal_state(qualified_table, ideal.clone())?;
        }
        for s in servers {
            ideal.assign(segment_name.as_str(), s, SegmentState::Online);
        }
        self.cluster.set_ideal_state(qualified_table, ideal)?;
        Ok(segment_name)
    }

    fn write_segment_metadata(&self, qualified: &str, segment: &ImmutableSegment) -> Result<()> {
        let m = segment.metadata();
        let mut pairs: Vec<(&str, Json)> = vec![
            ("numDocs", (m.num_docs as u64).into()),
            ("sizeBytes", m.size_bytes.into()),
            ("createdAtMillis", m.created_at_millis.into()),
        ];
        if let (Some(lo), Some(hi)) = (m.min_time, m.max_time) {
            pairs.push(("minTime", lo.into()));
            pairs.push(("maxTime", hi.into()));
        }
        if let Some((s, e)) = m.offset_range {
            pairs.push(("startOffset", s.into()));
            pairs.push(("endOffset", e.into()));
        }
        if let Some(p) = &m.partition {
            pairs.push(("partitionColumn", p.column.as_str().into()));
            pairs.push(("partitionId", (p.partition_id as u64).into()));
            pairs.push(("numPartitions", (p.num_partitions as u64).into()));
        }
        // Per-column zone maps for broker-side pruning. Bounds are encoded
        // as strings so integer values survive the f64-typed JSON numbers
        // exactly; non-finite float bounds are skipped (the broker then
        // treats the column as statless and never prunes on it).
        let mut columns = std::collections::BTreeMap::new();
        for c in &m.columns {
            let (Some(min), Some(max)) = (&c.min, &c.max) else {
                continue;
            };
            let (Some(min_s), Some(max_s)) = (zone_bound_str(min), zone_bound_str(max)) else {
                continue;
            };
            columns.insert(
                c.name.clone(),
                Json::obj(vec![
                    ("type", c.data_type.name().into()),
                    ("sv", Json::Bool(c.single_value)),
                    ("min", Json::Str(min_s)),
                    ("max", Json::Str(max_s)),
                ]),
            );
        }
        if !columns.is_empty() {
            pairs.push(("columns", Json::Obj(columns)));
        }
        self.meta_set_retried(
            &format!("/segments/{qualified}/{}", m.segment_name),
            Json::obj(pairs).emit(),
            None,
        )?;
        Ok(())
    }

    /// Segment names registered for a table.
    pub fn list_segments(&self, qualified: &str) -> Vec<String> {
        self.metastore.children(&format!("/segments/{qualified}"))
    }

    /// Live server instances (participants whose id says "Server_").
    fn live_servers(&self) -> Vec<InstanceId> {
        self.cluster
            .live_instances()
            .into_iter()
            .filter(|i| i.as_str().starts_with("Server_"))
            .collect()
    }

    fn assign_servers(&self, qualified: &str, replication: usize) -> Result<Vec<InstanceId>> {
        let servers = self.live_servers();
        let ideal = self.cluster.ideal_state(qualified).unwrap_or_default();
        assignment::balanced_assignment(&servers, &ideal, replication)
    }

    // ---- retention (§3.2: segments past retention are GCed) ----

    /// Drop segments wholly older than the table retention window.
    /// Returns `(table, segment)` pairs that were removed.
    pub fn run_retention(&self) -> Result<Vec<(String, String)>> {
        self.require_leader()?;
        let mut removed = Vec::new();
        let now_ms = self.clock.now_millis();
        for qualified in self.list_tables() {
            let config = self.table_config(&qualified)?;
            let Some(retention) = &config.retention else {
                continue;
            };
            let schema = self.table_schema(&config.name)?;
            let Some(tc) = schema.time_column() else {
                continue;
            };
            let unit_ms = tc.time_unit.expect("validated by schema").millis();
            let cutoff_ms = now_ms - retention.duration * retention.unit.millis();

            let mut ideal = self.cluster.ideal_state(&qualified).unwrap_or_default();
            let mut changed = false;
            for seg in self.list_segments(&qualified) {
                let Some((text, _)) = self.metastore.get(&format!("/segments/{qualified}/{seg}"))
                else {
                    continue;
                };
                let meta = Json::parse(&text)?;
                let Some(max_time) = meta.get("maxTime").and_then(Json::as_i64) else {
                    continue;
                };
                if max_time * unit_ms < cutoff_ms {
                    ideal.segments.remove(&seg);
                    changed = true;
                    let _ = self.objstore.delete(&format!("segments/{qualified}/{seg}"));
                    let _ = self
                        .metastore
                        .delete(&format!("/segments/{qualified}/{seg}"));
                    removed.push((qualified.clone(), seg));
                }
            }
            if changed {
                self.cluster.set_ideal_state(&qualified, ideal)?;
            }
        }
        Ok(removed)
    }

    // ---- realtime: consuming segment provisioning and completion ----

    fn provision_consuming_segments(&self, table: &TableName, config: &TableConfig) -> Result<()> {
        let stream = config
            .stream
            .as_ref()
            .expect("validated: realtime tables have stream configs");
        let topic = self.streams.topic(&stream.topic)?;
        let qualified = table.qualified();
        let mut ideal = self.cluster.ideal_state(&qualified).unwrap_or_default();
        for partition in 0..topic.num_partitions() {
            let start = topic.latest_offset(partition)?;
            let segment = SegmentName::realtime(&qualified, partition, 0);
            let servers = self.assign_servers(&qualified, config.replication)?;
            self.meta_set_retried(
                &format!("/segments/{qualified}/{segment}"),
                Json::obj(vec![
                    ("consuming", true.into()),
                    ("partition", (partition as u64).into()),
                    ("sequence", 0u64.into()),
                    ("startOffset", start.into()),
                ])
                .emit(),
                None,
            )?;
            for s in servers {
                ideal.assign(segment.as_str(), s, SegmentState::Consuming);
            }
        }
        self.cluster.set_ideal_state(&qualified, ideal)
    }

    /// Completion-protocol poll endpoint (servers call this repeatedly when
    /// their consuming segment reaches its end criteria).
    pub fn segment_completion_poll(&self, poll: &CompletionPoll) -> CompletionInstruction {
        if !self.is_leader() {
            self.obs
                .metrics
                .counter_add("controller.completion.instruction.NOTLEADER", 1);
            return CompletionInstruction::NotLeader;
        }
        let mut fsms = self.completions.lock();
        let fsm = fsms
            .entry(poll.segment.as_str().to_string())
            .or_insert_with(|| {
                let mut cfg = self.completion_config.clone();
                // Quorum = replicas assigned to this segment in the ideal
                // state (fall back to 1). Realtime segment names embed the
                // qualified table name before the first "__".
                if let Some((table, _)) = poll.segment.as_str().split_once("__") {
                    if let Some(ideal) = self.cluster.ideal_state(table) {
                        let n = ideal.instances_for(poll.segment.as_str()).len();
                        if n > 0 {
                            cfg.replicas = n;
                        }
                    }
                }
                CompletionFsm::new(cfg)
            });
        let before = fsm.phase_name();
        let instruction = fsm.on_poll(&poll.instance, poll.offset, self.clock.now_millis());
        self.record_fsm_transition(before, fsm.phase_name());
        self.obs.metrics.counter_add(
            &format!("controller.completion.instruction.{}", instruction.name()),
            1,
        );
        instruction
    }

    fn record_fsm_transition(&self, before: &str, after: &str) {
        if before != after {
            self.obs
                .metrics
                .counter_add(&format!("controller.fsm.transition.{before}_{after}"), 1);
        }
    }

    /// Commit endpoint: the designated committer uploads its sealed
    /// segment. On success the segment goes ONLINE on all replicas and the
    /// next consuming segment is provisioned from the committed offset.
    pub fn commit_segment(
        &self,
        qualified_table: &str,
        segment: &SegmentName,
        instance: &InstanceId,
        end_offset: Offset,
        blob: Bytes,
    ) -> Result<bool> {
        if !self.is_leader() {
            return Err(PinotError::NotLeader(self.id.to_string()));
        }
        let accepted = {
            let mut fsms = self.completions.lock();
            let Some(fsm) = fsms.get_mut(segment.as_str()) else {
                return Ok(false);
            };
            if fsm.committer() != Some(instance) {
                return Ok(false);
            }
            // Verify integrity before accepting.
            let ok = pinot_segment::persist::deserialize(&blob).is_ok();
            let before = fsm.phase_name();
            let accepted = fsm.on_commit_result(instance, end_offset, ok, self.clock.now_millis());
            self.record_fsm_transition(before, fsm.phase_name());
            accepted
        };
        if !accepted {
            self.obs
                .metrics
                .counter_add("controller.commit.rejected", 1);
            return Ok(false);
        }
        self.obs.metrics.counter_add("controller.commit.ok", 1);

        let parsed = pinot_segment::persist::deserialize(&blob)?;
        self.objstore
            .put(&format!("segments/{qualified_table}/{segment}"), blob)?;
        self.write_segment_metadata(qualified_table, &parsed)?;

        // Flip the committed segment ONLINE and start the next consuming
        // segment on the same replicas.
        let (partition, sequence) = segment
            .realtime_parts()
            .ok_or_else(|| PinotError::Internal("commit of non-realtime segment".into()))?;
        let mut ideal = self
            .cluster
            .ideal_state(qualified_table)
            .unwrap_or_default();
        let replicas = ideal.instances_for(segment.as_str());
        for r in &replicas {
            ideal.assign(segment.as_str(), r.clone(), SegmentState::Online);
        }
        let next = SegmentName::realtime(qualified_table, partition, sequence + 1);
        self.meta_set_retried(
            &format!("/segments/{qualified_table}/{next}"),
            Json::obj(vec![
                ("consuming", true.into()),
                ("partition", (partition as u64).into()),
                ("sequence", (sequence + 1).into()),
                ("startOffset", end_offset.into()),
            ])
            .emit(),
            None,
        )?;
        for r in &replicas {
            ideal.assign(next.as_str(), r.clone(), SegmentState::Consuming);
        }
        self.cluster.set_ideal_state(qualified_table, ideal)?;
        Ok(true)
    }

    /// Start offset recorded for a consuming segment.
    pub fn consuming_start_offset(&self, qualified: &str, segment: &SegmentName) -> Result<Offset> {
        let (text, _) = self
            .metastore
            .get(&format!("/segments/{qualified}/{segment}"))
            .ok_or_else(|| PinotError::Metadata(format!("no metadata for {segment}")))?;
        Json::parse(&text)?
            .get("startOffset")
            .and_then(Json::as_i64)
            .map(|v| v as Offset)
            .ok_or_else(|| PinotError::Metadata(format!("segment {segment} has no startOffset")))
    }

    /// Fetch a committed segment blob (servers executing DISCARD or the
    /// OFFLINE→ONLINE load path).
    pub fn download_segment(&self, qualified: &str, segment: &str) -> Result<Bytes> {
        self.objstore
            .get(&format!("segments/{qualified}/{segment}"))
    }
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller")
            .field("id", &self.id)
            .field("leader", &self.is_leader())
            .finish()
    }
}

/// The set of controller instances in a cluster (the paper runs three per
/// datacenter). Callers address the group; it resolves the current leader
/// and re-elects on failure.
#[derive(Clone)]
pub struct ControllerGroup {
    metastore: MetaStore,
    controllers: Arc<parking_lot::RwLock<Vec<Arc<Controller>>>>,
    obs: Arc<Obs>,
}

impl ControllerGroup {
    pub fn new(metastore: MetaStore) -> ControllerGroup {
        ControllerGroup::with_obs(metastore, Obs::shared())
    }

    /// Like [`ControllerGroup::new`] but sharing a cluster-wide
    /// observability sink (leader election counts land there).
    pub fn with_obs(metastore: MetaStore, obs: Arc<Obs>) -> ControllerGroup {
        ControllerGroup {
            metastore,
            controllers: Arc::new(parking_lot::RwLock::new(Vec::new())),
            obs,
        }
    }

    pub fn add(&self, controller: Arc<Controller>) {
        self.controllers.write().push(controller);
    }

    pub fn all(&self) -> Vec<Arc<Controller>> {
        self.controllers.read().clone()
    }

    /// The current lead controller; if none holds leadership, the first
    /// live candidate is elected.
    pub fn leader(&self) -> Option<Arc<Controller>> {
        let controllers = self.controllers.read();
        if let Some(leader_id) = self.metastore.leader(LEADER_SCOPE) {
            if let Some(c) = controllers.iter().find(|c| c.id().as_str() == leader_id) {
                return Some(Arc::clone(c));
            }
        }
        // Nobody is leader: elect the first that succeeds.
        for c in controllers.iter() {
            if c.try_become_leader() {
                self.obs
                    .metrics
                    .counter_add("controller.leader.elections", 1);
                return Some(Arc::clone(c));
            }
        }
        None
    }
}

/// Exact string encoding of one zone-map bound for segment metadata JSON
/// (the broker's zone-map parser in `pinot-broker` is the inverse).
/// Strings carry integers without the f64 precision loss of JSON numbers;
/// non-finite float bounds yield `None` — JSON cannot carry them.
fn zone_bound_str(v: &pinot_common::Value) -> Option<String> {
    use pinot_common::Value;
    match v {
        Value::Int(x) => Some(x.to_string()),
        Value::Long(x) => Some(x.to_string()),
        Value::Float(x) => x.is_finite().then(|| format!("{x}")),
        Value::Double(x) => x.is_finite().then(|| format!("{x}")),
        Value::String(s) => Some(s.clone()),
        Value::Boolean(b) => Some(b.to_string()),
        _ => None,
    }
}
