//! Realtime segment-completion protocol state machine (§3.3.6).
//!
//! Replicas consume the same stream partition independently; row-count end
//! criteria keep them identical, but *time-based* criteria make their end
//! offsets diverge. When a replica reaches its end criteria it polls the
//! lead controller with its offset; this FSM drives all replicas to a
//! consensus segment:
//!
//! 1. **Gathering** — record poll offsets until every replica has polled or
//!    `max_wait_ms` has passed since the first poll;
//! 2. pick the largest offset as the commit target and one replica at that
//!    offset as the **committer** (others get CATCHUP/HOLD);
//! 3. **Committing** — the committer uploads; everyone else HOLDs. If the
//!    committer goes quiet past `commit_timeout_ms`, any caught-up replica
//!    is promoted;
//! 4. **Committed** — replicas at exactly the final offset KEEP their local
//!    data; behind ones CATCHUP (then KEEP); ahead ones DISCARD and fetch
//!    the authoritative copy.
//!
//! A controller failover starts blank FSMs on the new leader — the paper
//! notes this only delays the commit, and the tests exercise exactly that.

use pinot_common::ids::InstanceId;
use pinot_common::protocol::{CompletionInstruction, Offset};
use std::collections::BTreeMap;

/// Tunables for one segment's completion.
#[derive(Debug, Clone)]
pub struct CompletionConfig {
    /// Number of replicas consuming the segment.
    pub replicas: usize,
    /// How long to gather polls before deciding with partial information.
    pub max_wait_ms: i64,
    /// How long the committer may take before another replica is promoted.
    pub commit_timeout_ms: i64,
}

impl Default for CompletionConfig {
    fn default() -> Self {
        CompletionConfig {
            replicas: 1,
            max_wait_ms: 10_000,
            commit_timeout_ms: 30_000,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Gathering {
        first_poll_ms: i64,
    },
    Committing {
        committer: InstanceId,
        target: Offset,
        started_ms: i64,
    },
    Committed {
        end: Offset,
    },
}

/// The per-segment completion state machine.
#[derive(Debug, Clone)]
pub struct CompletionFsm {
    config: CompletionConfig,
    offsets: BTreeMap<InstanceId, Offset>,
    phase: Phase,
}

impl CompletionFsm {
    pub fn new(config: CompletionConfig) -> CompletionFsm {
        CompletionFsm {
            config,
            offsets: BTreeMap::new(),
            phase: Phase::Gathering { first_poll_ms: -1 },
        }
    }

    /// Name of the current phase: `gathering`, `committing`, or
    /// `committed`. Used for FSM transition metrics.
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Gathering { .. } => "gathering",
            Phase::Committing { .. } => "committing",
            Phase::Committed { .. } => "committed",
        }
    }

    /// Is the segment committed, and at what offset?
    pub fn committed_end(&self) -> Option<Offset> {
        match self.phase {
            Phase::Committed { end } => Some(end),
            _ => None,
        }
    }

    /// The instance currently designated to commit, if any.
    pub fn committer(&self) -> Option<&InstanceId> {
        match &self.phase {
            Phase::Committing { committer, .. } => Some(committer),
            _ => None,
        }
    }

    /// Handle a replica poll. `now_ms` is the controller's clock.
    pub fn on_poll(
        &mut self,
        instance: &InstanceId,
        offset: Offset,
        now_ms: i64,
    ) -> CompletionInstruction {
        // Track the replica's progress (offsets only move forward).
        let entry = self.offsets.entry(instance.clone()).or_insert(offset);
        *entry = (*entry).max(offset);

        match &mut self.phase {
            Phase::Gathering { first_poll_ms } => {
                if *first_poll_ms < 0 {
                    *first_poll_ms = now_ms;
                }
                let have_all = self.offsets.len() >= self.config.replicas;
                let waited_out = now_ms - *first_poll_ms >= self.config.max_wait_ms;
                if !(have_all || waited_out) {
                    return CompletionInstruction::Hold;
                }
                // Decide: target = largest seen offset; committer = the
                // first replica (by id) sitting at the target.
                let target = *self.offsets.values().max().expect("at least one poll");
                if offset < target {
                    return CompletionInstruction::Catchup {
                        target_offset: target,
                    };
                }
                let committer = self
                    .offsets
                    .iter()
                    .filter(|(_, &o)| o == target)
                    .map(|(i, _)| i.clone())
                    .next()
                    .expect("someone is at target");
                self.phase = Phase::Committing {
                    committer: committer.clone(),
                    target,
                    started_ms: now_ms,
                };
                if committer == *instance {
                    CompletionInstruction::Commit
                } else {
                    CompletionInstruction::Hold
                }
            }
            Phase::Committing {
                committer,
                target,
                started_ms,
            } => {
                let target = *target;
                if instance == committer {
                    if offset == target {
                        *started_ms = now_ms;
                        CompletionInstruction::Commit
                    } else {
                        CompletionInstruction::Catchup {
                            target_offset: target,
                        }
                    }
                } else if offset < target {
                    CompletionInstruction::Catchup {
                        target_offset: target,
                    }
                } else if offset == target && now_ms - *started_ms >= self.config.commit_timeout_ms
                {
                    // Committer presumed dead; promote this caught-up one.
                    // Only replicas at *exactly* the target qualify — one
                    // that over-consumed must hold and DISCARD after the
                    // commit lands (it has different data than the target).
                    *committer = instance.clone();
                    *started_ms = now_ms;
                    CompletionInstruction::Commit
                } else {
                    CompletionInstruction::Hold
                }
            }
            Phase::Committed { end } => {
                let end = *end;
                if offset == end {
                    CompletionInstruction::Keep
                } else if offset < end {
                    CompletionInstruction::Catchup { target_offset: end }
                } else {
                    CompletionInstruction::Discard
                }
            }
        }
    }

    /// The committer reports the outcome of its upload attempt.
    /// Returns true when the commit was accepted.
    pub fn on_commit_result(
        &mut self,
        instance: &InstanceId,
        end_offset: Offset,
        success: bool,
        now_ms: i64,
    ) -> bool {
        match &self.phase {
            Phase::Committing {
                committer, target, ..
            } if committer == instance => {
                if success && end_offset == *target {
                    self.phase = Phase::Committed { end: end_offset };
                    true
                } else {
                    // Failed upload: back to gathering with what we know;
                    // the next polls will re-decide a committer quickly.
                    self.phase = Phase::Gathering {
                        first_poll_ms: now_ms,
                    };
                    false
                }
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(replicas: usize) -> CompletionConfig {
        CompletionConfig {
            replicas,
            max_wait_ms: 1_000,
            commit_timeout_ms: 5_000,
        }
    }

    fn s(n: usize) -> InstanceId {
        InstanceId::server(n)
    }

    #[test]
    fn equal_offsets_commit_immediately() {
        let mut fsm = CompletionFsm::new(cfg(3));
        assert_eq!(fsm.on_poll(&s(1), 100, 0), CompletionInstruction::Hold);
        assert_eq!(fsm.on_poll(&s(2), 100, 1), CompletionInstruction::Hold);
        // Third replica completes the quorum; everyone is at 100, and
        // Server_1 (smallest id at max) becomes committer — this poll is
        // from Server_3, so it holds.
        assert_eq!(fsm.on_poll(&s(3), 100, 2), CompletionInstruction::Hold);
        assert_eq!(fsm.committer(), Some(&s(1)));
        assert_eq!(fsm.on_poll(&s(1), 100, 3), CompletionInstruction::Commit);
        assert!(fsm.on_commit_result(&s(1), 100, true, 4));
        // Followers at the right offset keep their local copies.
        assert_eq!(fsm.on_poll(&s(2), 100, 5), CompletionInstruction::Keep);
        assert_eq!(fsm.on_poll(&s(3), 100, 5), CompletionInstruction::Keep);
    }

    #[test]
    fn divergent_offsets_catch_up_to_largest() {
        let mut fsm = CompletionFsm::new(cfg(3));
        fsm.on_poll(&s(1), 90, 0);
        fsm.on_poll(&s(2), 110, 1);
        // Quorum reached on the third poll; max offset is 110.
        let i = fsm.on_poll(&s(3), 95, 2);
        assert_eq!(i, CompletionInstruction::Catchup { target_offset: 110 });
        // Server_2 holds the max; when it polls it becomes committer.
        assert_eq!(fsm.on_poll(&s(2), 110, 3), CompletionInstruction::Commit);
        // Laggard catches up, then holds while the commit is in flight.
        assert_eq!(
            fsm.on_poll(&s(1), 90, 4),
            CompletionInstruction::Catchup { target_offset: 110 }
        );
        assert_eq!(fsm.on_poll(&s(1), 110, 5), CompletionInstruction::Hold);
        assert!(fsm.on_commit_result(&s(2), 110, true, 6));
        assert_eq!(fsm.on_poll(&s(1), 110, 7), CompletionInstruction::Keep);
        assert_eq!(
            fsm.on_poll(&s(3), 95, 8),
            CompletionInstruction::Catchup { target_offset: 110 }
        );
        assert_eq!(fsm.on_poll(&s(3), 110, 9), CompletionInstruction::Keep);
    }

    #[test]
    fn timeout_decides_with_partial_polls() {
        let mut fsm = CompletionFsm::new(cfg(3));
        assert_eq!(fsm.on_poll(&s(1), 50, 0), CompletionInstruction::Hold);
        // Replica 2 and 3 never poll; after max_wait the lone replica wins.
        assert_eq!(fsm.on_poll(&s(1), 50, 1_500), CompletionInstruction::Commit);
        assert!(fsm.on_commit_result(&s(1), 50, true, 1_600));
        // A late replica that consumed beyond the committed end discards.
        assert_eq!(
            fsm.on_poll(&s(2), 60, 2_000),
            CompletionInstruction::Discard
        );
    }

    #[test]
    fn committer_failure_promotes_another_replica() {
        let mut fsm = CompletionFsm::new(cfg(2));
        fsm.on_poll(&s(1), 100, 0);
        assert_eq!(fsm.on_poll(&s(2), 100, 1), CompletionInstruction::Hold);
        assert_eq!(fsm.on_poll(&s(1), 100, 2), CompletionInstruction::Commit);
        // Committer crashes silently. The other replica polls past the
        // commit timeout and gets promoted.
        assert_eq!(fsm.on_poll(&s(2), 100, 3), CompletionInstruction::Hold);
        assert_eq!(
            fsm.on_poll(&s(2), 100, 10_000),
            CompletionInstruction::Commit
        );
        assert!(fsm.on_commit_result(&s(2), 100, true, 10_001));
        // The original committer resurfaces at the same offset: KEEP.
        assert_eq!(fsm.on_poll(&s(1), 100, 10_002), CompletionInstruction::Keep);
    }

    #[test]
    fn failed_commit_retries() {
        let mut fsm = CompletionFsm::new(cfg(1));
        assert_eq!(fsm.on_poll(&s(1), 10, 0), CompletionInstruction::Commit);
        assert!(!fsm.on_commit_result(&s(1), 10, false, 1));
        // Paper: "if the commit fails, resume polling" — and the FSM offers
        // the commit again.
        assert_eq!(fsm.on_poll(&s(1), 10, 2), CompletionInstruction::Commit);
        assert!(fsm.on_commit_result(&s(1), 10, true, 3));
        assert_eq!(fsm.committed_end(), Some(10));
    }

    #[test]
    fn commit_result_from_non_committer_rejected() {
        let mut fsm = CompletionFsm::new(cfg(2));
        fsm.on_poll(&s(1), 5, 0);
        fsm.on_poll(&s(2), 5, 1);
        assert_eq!(fsm.on_poll(&s(1), 5, 2), CompletionInstruction::Commit);
        assert!(!fsm.on_commit_result(&s(2), 5, true, 3));
        assert_eq!(fsm.committed_end(), None);
    }

    #[test]
    fn blank_fsm_after_failover_still_converges() {
        // Replica states: all consumed to 100, commit was in flight when
        // the controller died. New leader starts blank (the paper's
        // failover behaviour): polls re-gather and commit proceeds.
        let mut fsm = CompletionFsm::new(cfg(2));
        assert_eq!(fsm.on_poll(&s(1), 100, 0), CompletionInstruction::Hold);
        assert_eq!(fsm.on_poll(&s(2), 100, 1), CompletionInstruction::Hold);
        assert_eq!(fsm.on_poll(&s(1), 100, 2), CompletionInstruction::Commit);
        assert!(fsm.on_commit_result(&s(1), 100, true, 3));
    }
}
