//! Segment-to-server assignment strategies.
//!
//! The default strategy balances replica counts: each new segment's
//! replicas go to the live servers currently holding the fewest replicas.
//! (Routing-time balancing — which servers a *query* touches — is the
//! broker's job, §4.4; this is storage placement.)

use pinot_cluster::IdealState;
use pinot_common::ids::InstanceId;
use pinot_common::{PinotError, Result};
use std::collections::HashMap;

/// Pick `replication` distinct servers for a new segment, least-loaded
/// first (ties broken by instance id for determinism).
pub fn balanced_assignment(
    servers: &[InstanceId],
    ideal: &IdealState,
    replication: usize,
) -> Result<Vec<InstanceId>> {
    if servers.is_empty() {
        return Err(PinotError::Cluster("no live servers to assign to".into()));
    }
    if replication == 0 {
        return Err(PinotError::Cluster("replication must be >= 1".into()));
    }
    if servers.len() < replication {
        return Err(PinotError::Cluster(format!(
            "need {replication} servers for replication, only {} live",
            servers.len()
        )));
    }
    let mut load: HashMap<&InstanceId, usize> = servers.iter().map(|s| (s, 0)).collect();
    for replicas in ideal.segments.values() {
        for instance in replicas.keys() {
            if let Some(n) = load.get_mut(instance) {
                *n += 1;
            }
        }
    }
    let mut ranked: Vec<&InstanceId> = servers.iter().collect();
    ranked.sort_by_key(|s| (load[*s], (*s).clone()));
    Ok(ranked.into_iter().take(replication).cloned().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_cluster::SegmentState;

    fn servers(n: usize) -> Vec<InstanceId> {
        (1..=n).map(InstanceId::server).collect()
    }

    #[test]
    fn picks_least_loaded() {
        let mut ideal = IdealState::default();
        ideal.assign("s1", InstanceId::server(1), SegmentState::Online);
        ideal.assign("s2", InstanceId::server(1), SegmentState::Online);
        ideal.assign("s1", InstanceId::server(2), SegmentState::Online);
        let picked = balanced_assignment(&servers(3), &ideal, 2).unwrap();
        // Server 3 has 0 replicas, server 2 has 1, server 1 has 2.
        assert_eq!(picked, vec![InstanceId::server(3), InstanceId::server(2)]);
    }

    #[test]
    fn spreads_many_segments_evenly() {
        let servers = servers(4);
        let mut ideal = IdealState::default();
        for i in 0..100 {
            let picked = balanced_assignment(&servers, &ideal, 2).unwrap();
            for p in picked {
                ideal.assign(&format!("seg{i}"), p, SegmentState::Online);
            }
        }
        let mut counts: HashMap<InstanceId, usize> = HashMap::new();
        for replicas in ideal.segments.values() {
            for s in replicas.keys() {
                *counts.entry(s.clone()).or_default() += 1;
            }
        }
        // 200 replicas over 4 servers: perfectly 50 each.
        for s in &servers {
            assert_eq!(counts[s], 50, "{s}");
        }
    }

    #[test]
    fn errors_on_impossible_requests() {
        let ideal = IdealState::default();
        assert!(balanced_assignment(&[], &ideal, 1).is_err());
        assert!(balanced_assignment(&servers(2), &ideal, 0).is_err());
        assert!(balanced_assignment(&servers(2), &ideal, 3).is_err());
    }

    #[test]
    fn deterministic_tie_break() {
        let ideal = IdealState::default();
        let a = balanced_assignment(&servers(5), &ideal, 3).unwrap();
        let b = balanced_assignment(&servers(5), &ideal, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![
                InstanceId::server(1),
                InstanceId::server(2),
                InstanceId::server(3)
            ]
        );
    }
}
