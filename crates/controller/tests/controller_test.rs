//! Controller integration tests: table admin, uploads, quota, retention,
//! leader failover — with fake server participants.

use bytes::Bytes;
use parking_lot::Mutex;
use pinot_cluster::{ClusterManager, Participant, SegmentState};
use pinot_common::config::{StreamConfig, TableConfig};
use pinot_common::ids::{InstanceId, TableType};
use pinot_common::time::Clock;
use pinot_common::{DataType, FieldSpec, Record, Result, Schema, TimeUnit, Value};
use pinot_controller::Controller;
use pinot_metastore::MetaStore;
use pinot_objstore::MemoryObjectStore;
use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
use pinot_stream::StreamRegistry;
use std::sync::Arc;

struct FakeServer {
    id: InstanceId,
    transitions: Mutex<Vec<(String, String, SegmentState)>>,
}

impl FakeServer {
    fn new(n: usize) -> Arc<FakeServer> {
        Arc::new(FakeServer {
            id: InstanceId::server(n),
            transitions: Mutex::new(Vec::new()),
        })
    }
}

impl Participant for FakeServer {
    fn instance_id(&self) -> InstanceId {
        self.id.clone()
    }

    fn handle_transition(
        &self,
        table: &str,
        segment: &str,
        _from: SegmentState,
        to: SegmentState,
    ) -> Result<()> {
        self.transitions
            .lock()
            .push((table.to_string(), segment.to_string(), to));
        Ok(())
    }
}

struct Fixture {
    controller: Arc<Controller>,
    standby: Arc<Controller>,
    clock: Clock,
    servers: Vec<Arc<FakeServer>>,
    streams: StreamRegistry,
}

fn fixture(num_servers: usize) -> Fixture {
    let metastore = MetaStore::new();
    let cluster = ClusterManager::new(metastore.clone());
    let objstore = MemoryObjectStore::shared();
    let streams = StreamRegistry::new();
    let clock = Clock::manual(1_000_000_000);
    let servers: Vec<Arc<FakeServer>> = (1..=num_servers).map(FakeServer::new).collect();
    for s in &servers {
        cluster.register_participant(s.clone());
    }
    let controller = Controller::new(
        1,
        metastore.clone(),
        cluster.clone(),
        objstore.clone(),
        streams.clone(),
        clock.clone(),
    );
    let standby = Controller::new(
        2,
        metastore,
        cluster,
        objstore,
        streams.clone(),
        clock.clone(),
    );
    assert!(controller.try_become_leader());
    assert!(!standby.try_become_leader());
    Fixture {
        controller,
        standby,
        clock,
        servers,
        streams,
    }
}

fn schema() -> Schema {
    Schema::new(
        "events",
        vec![
            FieldSpec::dimension("k", DataType::Long),
            FieldSpec::metric("m", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn segment_blob(name: &str, table: &str, days: &[i64]) -> Bytes {
    let mut b = SegmentBuilder::new(schema(), BuilderConfig::new(name, table)).unwrap();
    for (i, d) in days.iter().enumerate() {
        b.add(Record::new(vec![
            Value::Long(i as i64),
            Value::Long(1),
            Value::Long(*d),
        ]))
        .unwrap();
    }
    Bytes::from(pinot_segment::persist::serialize(&b.build().unwrap()))
}

#[test]
fn create_upload_and_load_offline_table() {
    let fx = fixture(3);
    let cfg = TableConfig::offline("events").with_replication(2);
    fx.controller.create_table(cfg, schema()).unwrap();
    assert_eq!(fx.controller.list_tables(), vec!["events_OFFLINE"]);

    let name = fx
        .controller
        .upload_segment(
            "events_OFFLINE",
            segment_blob("events__0", "events_OFFLINE", &[100]),
        )
        .unwrap();
    assert_eq!(name.as_str(), "events__0");

    // Two replicas went ONLINE somewhere.
    let view = fx.controller.cluster().external_view("events_OFFLINE");
    assert_eq!(view["events__0"].len(), 2);
    assert!(view["events__0"]
        .values()
        .all(|s| *s == SegmentState::Online));
    // Blob is durable and downloadable.
    let blob = fx
        .controller
        .download_segment("events_OFFLINE", "events__0")
        .unwrap();
    assert!(pinot_segment::persist::deserialize(&blob).is_ok());
    // Metadata registered.
    assert_eq!(
        fx.controller.list_segments("events_OFFLINE"),
        vec!["events__0"]
    );
}

#[test]
fn upload_rejects_garbage_and_respects_quota() {
    let fx = fixture(1);
    let cfg = TableConfig::offline("events").with_quota_bytes(400);
    fx.controller.create_table(cfg, schema()).unwrap();

    // Garbage blob is rejected during unpack.
    assert!(fx
        .controller
        .upload_segment("events_OFFLINE", Bytes::from_static(b"not a segment"))
        .is_err());

    // Uploads beyond the quota fail with a quota error.
    let blob = segment_blob("events__0", "events_OFFLINE", &[1]);
    assert!(blob.len() > 200, "blob is {} bytes", blob.len()); // two exceed the quota
    fx.controller
        .upload_segment("events_OFFLINE", blob.clone())
        .unwrap();
    let blob2 = segment_blob("events__1", "events_OFFLINE", &[1]);
    let err = fx
        .controller
        .upload_segment("events_OFFLINE", blob2)
        .unwrap_err();
    assert_eq!(err.kind(), "storage_quota");
}

#[test]
fn non_leader_rejects_admin_ops() {
    let fx = fixture(1);
    let err = fx
        .standby
        .create_table(TableConfig::offline("t"), schema())
        .unwrap_err();
    assert_eq!(err.kind(), "not_leader");
    assert!(err.is_retriable());
}

#[test]
fn leader_failover() {
    let fx = fixture(1);
    fx.controller
        .create_table(TableConfig::offline("events"), schema())
        .unwrap();
    // Leader crashes; standby takes over and can administer.
    fx.controller.crash();
    assert!(fx.standby.try_become_leader());
    fx.standby
        .upload_segment(
            "events_OFFLINE",
            segment_blob("events__0", "events_OFFLINE", &[5]),
        )
        .unwrap();
    assert_eq!(fx.standby.list_segments("events_OFFLINE").len(), 1);
}

#[test]
fn retention_drops_old_segments() {
    let fx = fixture(1);
    let cfg = TableConfig::offline("events").with_retention(TimeUnit::Days, 10);
    fx.controller.create_table(cfg, schema()).unwrap();

    let now_days = fx.clock.now_millis() / TimeUnit::Days.millis();
    // Old segment: max day well before the cutoff. Fresh one: today.
    fx.controller
        .upload_segment(
            "events_OFFLINE",
            segment_blob("events__old", "events_OFFLINE", &[now_days - 100]),
        )
        .unwrap();
    fx.controller
        .upload_segment(
            "events_OFFLINE",
            segment_blob("events__new", "events_OFFLINE", &[now_days]),
        )
        .unwrap();
    let removed = fx.controller.run_retention().unwrap();
    assert_eq!(removed.len(), 1);
    assert_eq!(removed[0].1, "events__old");
    assert_eq!(
        fx.controller.list_segments("events_OFFLINE"),
        vec!["events__new"]
    );
    // Replicas of the expired segment were dropped from the view.
    let view = fx.controller.cluster().external_view("events_OFFLINE");
    assert!(!view.contains_key("events__old"));
    assert!(view.contains_key("events__new"));
}

#[test]
fn realtime_table_provisions_consuming_segments() {
    let fx = fixture(2);
    fx.streams.create_topic("feed-events", 4).unwrap();
    let cfg = TableConfig::realtime(
        "feed",
        StreamConfig {
            topic: "feed-events".into(),
            flush_threshold_rows: 100,
            flush_threshold_millis: 3_600_000,
        },
    )
    .with_replication(2);
    fx.controller.create_table(cfg, schema()).unwrap();

    // One consuming segment per partition, two replicas each.
    let view = fx.controller.cluster().external_view("feed_REALTIME");
    assert_eq!(view.len(), 4);
    for (seg, replicas) in &view {
        assert!(seg.starts_with("feed_REALTIME__"));
        assert_eq!(replicas.len(), 2);
        assert!(replicas.values().all(|s| *s == SegmentState::Consuming));
    }
    // Start offsets recorded.
    let seg = pinot_common::ids::SegmentName::realtime("feed_REALTIME", 0, 0);
    assert_eq!(
        fx.controller
            .consuming_start_offset("feed_REALTIME", &seg)
            .unwrap(),
        0
    );
    // Every fake server saw its transitions.
    let total: usize = fx.servers.iter().map(|s| s.transitions.lock().len()).sum();
    assert_eq!(total, 8);
}

#[test]
fn schema_evolution_adds_column() {
    let fx = fixture(1);
    fx.controller
        .create_table(TableConfig::offline("events"), schema())
        .unwrap();
    let evolved = fx
        .controller
        .add_column("events", FieldSpec::dimension("region", DataType::String))
        .unwrap();
    assert_eq!(evolved.num_columns(), 4);
    assert_eq!(fx.controller.table_schema("events").unwrap(), evolved);
    // Duplicate add fails.
    assert!(fx
        .controller
        .add_column("events", FieldSpec::dimension("region", DataType::String))
        .is_err());
}

#[test]
fn delete_table_removes_everything() {
    let fx = fixture(1);
    fx.controller
        .create_table(TableConfig::offline("events"), schema())
        .unwrap();
    fx.controller
        .upload_segment(
            "events_OFFLINE",
            segment_blob("events__0", "events_OFFLINE", &[1]),
        )
        .unwrap();
    fx.controller
        .delete_table("events", TableType::Offline)
        .unwrap();
    assert!(fx.controller.list_tables().is_empty());
    assert!(fx.controller.list_segments("events_OFFLINE").is_empty());
    assert!(fx
        .controller
        .download_segment("events_OFFLINE", "events__0")
        .is_err());
}
