//! Property test: the segment-completion FSM must converge for any replica
//! offsets and any poll interleaving — one committed offset, and every
//! replica eventually instructed to KEEP (at the committed offset),
//! CATCHUP (below it), or DISCARD (above it). Exercised across random
//! replica counts, offsets, poll orders, and commit failures.

use pinot_common::ids::InstanceId;
use pinot_common::protocol::CompletionInstruction;
use pinot_controller::completion::{CompletionConfig, CompletionFsm};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    offsets: Vec<u64>,
    /// Poll order: indices into the replica set, with repetition.
    polls: Vec<usize>,
    /// Whether the first commit attempt fails.
    first_commit_fails: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1usize..5)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(0u64..200, n..=n),
                prop::collection::vec(0usize..n, 1..40),
                any::<bool>(),
            )
        })
        .prop_map(|(offsets, polls, first_commit_fails)| Scenario {
            offsets,
            polls,
            first_commit_fails,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fsm_always_converges(s in scenario()) {
        let n = s.offsets.len();
        let mut fsm = CompletionFsm::new(CompletionConfig {
            replicas: n,
            max_wait_ms: 50,
            commit_timeout_ms: 100,
        });
        let ids: Vec<InstanceId> = (1..=n).map(InstanceId::server).collect();
        let mut offsets = s.offsets.clone();
        let max_offset = *offsets.iter().max().unwrap();
        let mut now = 0i64;
        let mut committed: Option<u64> = None;
        let mut commit_failures_left = if s.first_commit_fails { 1 } else { 0 };

        // Random poll prefix from the scenario, then a deterministic sweep
        // so every replica keeps polling until the segment commits.
        let mut schedule: Vec<usize> = s.polls.clone();
        for round in 0..50 {
            for r in 0..n {
                schedule.push((r + round) % n);
            }
        }

        for &r in &schedule {
            now += 30; // time always advances between polls
            let inst = &ids[r];
            match fsm.on_poll(inst, offsets[r], now) {
                CompletionInstruction::Hold | CompletionInstruction::NotLeader => {}
                CompletionInstruction::Catchup { target_offset } => {
                    // Catch-up targets never exceed what some replica has.
                    prop_assert!(target_offset <= max_offset);
                    prop_assert!(target_offset >= offsets[r]);
                    offsets[r] = target_offset;
                }
                CompletionInstruction::Commit => {
                    prop_assert!(committed.is_none(), "commit offered after commit");
                    prop_assert_eq!(fsm.committer(), Some(inst));
                    if commit_failures_left > 0 {
                        commit_failures_left -= 1;
                        prop_assert!(!fsm.on_commit_result(inst, offsets[r], false, now));
                    } else {
                        prop_assert!(fsm.on_commit_result(inst, offsets[r], true, now));
                        committed = Some(offsets[r]);
                    }
                }
                CompletionInstruction::Keep => {
                    prop_assert_eq!(Some(offsets[r]), committed, "KEEP at wrong offset");
                }
                CompletionInstruction::Discard => {
                    let c = committed.expect("DISCARD before commit");
                    prop_assert!(offsets[r] > c, "DISCARD for a non-ahead replica");
                    offsets[r] = c; // replica replaces local data with the copy
                }
            }
            if committed.is_some() && offsets.iter().all(|&o| o == committed.unwrap()) {
                break;
            }
        }

        // Convergence: a commit happened and every replica ended at it.
        let end = committed.expect("no commit despite endless polling");
        prop_assert_eq!(fsm.committed_end(), Some(end));
        for (r, &o) in offsets.iter().enumerate() {
            prop_assert_eq!(o, end, "replica {} did not converge", r);
        }
        // The committed offset is one some replica actually reached.
        prop_assert!(end <= max_offset);
    }
}
