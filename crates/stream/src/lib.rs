//! Kafka-like in-process event stream substrate.
//!
//! Pinot's realtime path consumes business events from Kafka (§3). This
//! crate supplies the properties Pinot relies on, without the network:
//!
//! * topics split into a fixed number of **partitions**;
//! * each partition is an append-only log addressed by dense **offsets**;
//! * producers route records by a partition key (the same partition
//!   function offline data pushes use, `pinot_common::partition`);
//! * consumers **seek** to any retained offset and read batches — there is
//!   no consumer-group state on the broker, exactly like Pinot's
//!   independent per-replica consumers (§3.3.6);
//! * **retention** trims old records, which is what forces Pinot to flush
//!   consuming segments before the stream drops their data.

use parking_lot::RwLock;
use pinot_common::partition::partition_for_value;
use pinot_common::{PinotError, Record, Result, Value};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Offset within a partition.
pub type Offset = u64;

/// One produced event: the record plus its produce timestamp (millis).
#[derive(Debug, Clone)]
pub struct StreamEvent {
    pub offset: Offset,
    pub record: Record,
    pub timestamp_millis: i64,
}

struct PartitionLog {
    /// Records currently retained; front has offset `start_offset`.
    records: VecDeque<StreamEvent>,
    /// Offset of the oldest retained record.
    start_offset: Offset,
    /// Offset the next produced record will get.
    end_offset: Offset,
}

impl PartitionLog {
    fn new() -> PartitionLog {
        PartitionLog {
            records: VecDeque::new(),
            start_offset: 0,
            end_offset: 0,
        }
    }
}

/// A named topic with a fixed partition count.
pub struct Topic {
    name: String,
    partitions: Vec<RwLock<PartitionLog>>,
}

impl Topic {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_partitions(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// Append a record to an explicit partition. Returns its offset.
    pub fn produce_to(
        &self,
        partition: u32,
        record: Record,
        timestamp_millis: i64,
    ) -> Result<Offset> {
        let log = self
            .partitions
            .get(partition as usize)
            .ok_or_else(|| PinotError::Io(format!("no partition {partition}")))?;
        let mut log = log.write();
        let offset = log.end_offset;
        log.records.push_back(StreamEvent {
            offset,
            record,
            timestamp_millis,
        });
        log.end_offset += 1;
        Ok(offset)
    }

    /// Append a record routed by a partition key.
    pub fn produce(
        &self,
        key: &Value,
        record: Record,
        timestamp_millis: i64,
    ) -> Result<(u32, Offset)> {
        let partition = partition_for_value(key, self.num_partitions());
        let offset = self.produce_to(partition, record, timestamp_millis)?;
        Ok((partition, offset))
    }

    /// Read up to `max` events starting at `offset`.
    ///
    /// Seeking below the retained range is an error (the data is gone —
    /// the situation Pinot's flush thresholds exist to avoid); seeking at
    /// or past the end returns an empty batch.
    pub fn fetch(&self, partition: u32, offset: Offset, max: usize) -> Result<Vec<StreamEvent>> {
        let log = self
            .partitions
            .get(partition as usize)
            .ok_or_else(|| PinotError::Io(format!("no partition {partition}")))?;
        let log = log.read();
        if offset < log.start_offset {
            return Err(PinotError::Io(format!(
                "offset {offset} below retention start {} on {}/{partition}",
                log.start_offset, self.name
            )));
        }
        if offset >= log.end_offset {
            return Ok(Vec::new());
        }
        let skip = (offset - log.start_offset) as usize;
        Ok(log.records.iter().skip(skip).take(max).cloned().collect())
    }

    /// Offset one past the newest record.
    pub fn latest_offset(&self, partition: u32) -> Result<Offset> {
        Ok(self.part(partition)?.read().end_offset)
    }

    /// Oldest retained offset.
    pub fn earliest_offset(&self, partition: u32) -> Result<Offset> {
        Ok(self.part(partition)?.read().start_offset)
    }

    fn part(&self, partition: u32) -> Result<&RwLock<PartitionLog>> {
        self.partitions
            .get(partition as usize)
            .ok_or_else(|| PinotError::Io(format!("no partition {partition}")))
    }

    /// Trim records older than `min_timestamp_millis` or beyond
    /// `max_records` per partition. Returns total records dropped.
    pub fn enforce_retention(
        &self,
        min_timestamp_millis: Option<i64>,
        max_records: Option<usize>,
    ) -> u64 {
        let mut dropped = 0u64;
        for log in &self.partitions {
            let mut log = log.write();
            if let Some(min_ts) = min_timestamp_millis {
                while log
                    .records
                    .front()
                    .is_some_and(|e| e.timestamp_millis < min_ts)
                {
                    log.records.pop_front();
                    log.start_offset += 1;
                    dropped += 1;
                }
            }
            if let Some(max) = max_records {
                while log.records.len() > max {
                    log.records.pop_front();
                    log.start_offset += 1;
                    dropped += 1;
                }
            }
        }
        dropped
    }
}

/// Registry of topics — the "cluster" handle producers and consumers share.
#[derive(Clone, Default)]
pub struct StreamRegistry {
    topics: Arc<RwLock<HashMap<String, Arc<Topic>>>>,
}

impl StreamRegistry {
    pub fn new() -> StreamRegistry {
        StreamRegistry::default()
    }

    /// Create a topic; idempotent if the partition count matches.
    pub fn create_topic(&self, name: impl Into<String>, partitions: u32) -> Result<Arc<Topic>> {
        if partitions == 0 {
            return Err(PinotError::Io("topic needs at least one partition".into()));
        }
        let name = name.into();
        let mut topics = self.topics.write();
        if let Some(existing) = topics.get(&name) {
            if existing.num_partitions() != partitions {
                return Err(PinotError::Io(format!(
                    "topic {name} exists with {} partitions",
                    existing.num_partitions()
                )));
            }
            return Ok(Arc::clone(existing));
        }
        let topic = Arc::new(Topic {
            name: name.clone(),
            partitions: (0..partitions)
                .map(|_| RwLock::new(PartitionLog::new()))
                .collect(),
        });
        topics.insert(name, Arc::clone(&topic));
        Ok(topic)
    }

    pub fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PinotError::Io(format!("unknown topic {name:?}")))
    }

    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// A simple seeking consumer over one partition.
pub struct PartitionConsumer {
    topic: Arc<Topic>,
    partition: u32,
    position: Offset,
}

impl PartitionConsumer {
    pub fn new(topic: Arc<Topic>, partition: u32, start: Offset) -> PartitionConsumer {
        PartitionConsumer {
            topic,
            partition,
            position: start,
        }
    }

    pub fn position(&self) -> Offset {
        self.position
    }

    pub fn seek(&mut self, offset: Offset) {
        self.position = offset;
    }

    /// Fetch the next batch and advance.
    pub fn poll(&mut self, max: usize) -> Result<Vec<StreamEvent>> {
        let batch = self.topic.fetch(self.partition, self.position, max)?;
        if let Some(last) = batch.last() {
            self.position = last.offset + 1;
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(v: i64) -> Record {
        Record::new(vec![Value::Long(v)])
    }

    #[test]
    fn produce_and_fetch_ordered() {
        let reg = StreamRegistry::new();
        let t = reg.create_topic("events", 1).unwrap();
        for i in 0..10 {
            assert_eq!(t.produce_to(0, rec(i), i).unwrap(), i as u64);
        }
        let batch = t.fetch(0, 3, 4).unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].offset, 3);
        assert_eq!(batch[3].offset, 6);
        assert_eq!(t.latest_offset(0).unwrap(), 10);
        assert_eq!(t.earliest_offset(0).unwrap(), 0);
        assert!(t.fetch(0, 10, 5).unwrap().is_empty());
    }

    #[test]
    fn key_routing_is_stable() {
        let reg = StreamRegistry::new();
        let t = reg.create_topic("events", 8).unwrap();
        let (p1, _) = t.produce(&Value::Long(42), rec(1), 0).unwrap();
        let (p2, _) = t.produce(&Value::Long(42), rec(2), 0).unwrap();
        assert_eq!(p1, p2);
        // Offsets are per-partition.
        let (p3, o3) = t.produce(&Value::Long(42), rec(3), 0).unwrap();
        assert_eq!(p3, p1);
        assert_eq!(o3, 2);
    }

    #[test]
    fn retention_by_count_and_time() {
        let reg = StreamRegistry::new();
        let t = reg.create_topic("events", 1).unwrap();
        for i in 0..100 {
            t.produce_to(0, rec(i), i).unwrap();
        }
        let dropped = t.enforce_retention(None, Some(10));
        assert_eq!(dropped, 90);
        assert_eq!(t.earliest_offset(0).unwrap(), 90);
        // Reading trimmed offsets fails loudly.
        assert!(t.fetch(0, 50, 1).is_err());
        // Time-based: drop everything before ts 95.
        let dropped = t.enforce_retention(Some(95), None);
        assert_eq!(dropped, 5);
        assert_eq!(t.earliest_offset(0).unwrap(), 95);
        // Offsets keep increasing after trimming.
        let off = t.produce_to(0, rec(200), 200).unwrap();
        assert_eq!(off, 100);
    }

    #[test]
    fn consumer_polls_and_seeks() {
        let reg = StreamRegistry::new();
        let t = reg.create_topic("events", 1).unwrap();
        for i in 0..5 {
            t.produce_to(0, rec(i), 0).unwrap();
        }
        let mut c = PartitionConsumer::new(Arc::clone(&t), 0, 0);
        let b1 = c.poll(2).unwrap();
        assert_eq!(b1.len(), 2);
        assert_eq!(c.position(), 2);
        let b2 = c.poll(100).unwrap();
        assert_eq!(b2.len(), 3);
        assert_eq!(c.position(), 5);
        assert!(c.poll(10).unwrap().is_empty());
        c.seek(1);
        assert_eq!(c.poll(1).unwrap()[0].offset, 1);
    }

    #[test]
    fn two_consumers_from_same_offset_see_same_data() {
        // The invariant the segment-completion protocol builds on (§3.3.6).
        let reg = StreamRegistry::new();
        let t = reg.create_topic("events", 1).unwrap();
        for i in 0..50 {
            t.produce_to(0, rec(i), 0).unwrap();
        }
        let mut a = PartitionConsumer::new(Arc::clone(&t), 0, 5);
        let mut b = PartitionConsumer::new(Arc::clone(&t), 0, 5);
        let ba: Vec<u64> = a.poll(20).unwrap().iter().map(|e| e.offset).collect();
        let bb: Vec<u64> = b.poll(20).unwrap().iter().map(|e| e.offset).collect();
        assert_eq!(ba, bb);
    }

    #[test]
    fn topic_registry_semantics() {
        let reg = StreamRegistry::new();
        reg.create_topic("a", 2).unwrap();
        assert!(reg.create_topic("a", 2).is_ok()); // idempotent
        assert!(reg.create_topic("a", 3).is_err()); // conflicting
        assert!(reg.create_topic("z", 0).is_err());
        assert!(reg.topic("missing").is_err());
        assert_eq!(reg.topic_names(), vec!["a".to_string()]);
    }

    #[test]
    fn bad_partition_errors() {
        let reg = StreamRegistry::new();
        let t = reg.create_topic("a", 2).unwrap();
        assert!(t.produce_to(5, rec(1), 0).is_err());
        assert!(t.fetch(5, 0, 1).is_err());
        assert!(t.latest_offset(5).is_err());
    }
}
