//! Stream substrate properties: determinism (two consumers from the same
//! offset always see identical data — the foundation of the segment
//! completion protocol), offset continuity across retention, and
//! partition-key stability under concurrent producers.

use pinot_common::{Record, Value};
use pinot_stream::{PartitionConsumer, StreamRegistry};
use proptest::prelude::*;
use std::sync::Arc;

fn rec(v: i64) -> Record {
    Record::new(vec![Value::Long(v)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn consumers_from_same_offset_agree(
        values in prop::collection::vec(any::<i64>(), 1..300),
        start_frac in 0.0f64..1.0,
        batch in 1usize..64,
    ) {
        let reg = StreamRegistry::new();
        let topic = reg.create_topic("t", 1).unwrap();
        for (i, v) in values.iter().enumerate() {
            topic.produce_to(0, rec(*v), i as i64).unwrap();
        }
        let start = ((values.len() as f64) * start_frac) as u64;
        let mut a = PartitionConsumer::new(Arc::clone(&topic), 0, start);
        let mut b = PartitionConsumer::new(Arc::clone(&topic), 0, start);
        let drain = |c: &mut PartitionConsumer, batch: usize| {
            let mut out = Vec::new();
            loop {
                let events = c.poll(batch).unwrap();
                if events.is_empty() {
                    break;
                }
                out.extend(events.into_iter().map(|e| (e.offset, format!("{:?}", e.record))));
            }
            out
        };
        // Different batch sizes must not change the observed sequence.
        let seq_a = drain(&mut a, batch);
        let seq_b = drain(&mut b, batch.max(7));
        prop_assert_eq!(&seq_a, &seq_b);
        prop_assert_eq!(seq_a.len() as u64, values.len() as u64 - start);
        // Offsets are dense and ordered.
        for (i, (off, _)) in seq_a.iter().enumerate() {
            prop_assert_eq!(*off, start + i as u64);
        }
    }

    #[test]
    fn retention_preserves_offset_identity(
        n in 1usize..200,
        keep in 1usize..100,
    ) {
        let reg = StreamRegistry::new();
        let topic = reg.create_topic("t", 1).unwrap();
        for i in 0..n {
            topic.produce_to(0, rec(i as i64), i as i64).unwrap();
        }
        topic.enforce_retention(None, Some(keep));
        let earliest = topic.earliest_offset(0).unwrap();
        let latest = topic.latest_offset(0).unwrap();
        prop_assert_eq!(latest, n as u64);
        prop_assert_eq!(earliest, n.saturating_sub(keep) as u64);
        // Surviving records still carry their original payloads.
        for e in topic.fetch(0, earliest, n).unwrap() {
            prop_assert_eq!(
                e.record.values()[0].as_i64().unwrap(),
                e.offset as i64
            );
        }
    }

    #[test]
    fn key_partitioning_stable_under_concurrency(keys in prop::collection::vec(-1000i64..1000, 1..100)) {
        let reg = StreamRegistry::new();
        let topic = reg.create_topic("t", 8).unwrap();
        // Produce every key twice from two threads.
        let topic2 = Arc::clone(&topic);
        let keys2 = keys.clone();
        std::thread::scope(|scope| {
            let t1 = scope.spawn(|| {
                keys.iter()
                    .map(|k| topic.produce(&Value::Long(*k), rec(*k), 0).unwrap().0)
                    .collect::<Vec<u32>>()
            });
            let t2 = scope.spawn(move || {
                keys2
                    .iter()
                    .map(|k| topic2.produce(&Value::Long(*k), rec(*k), 0).unwrap().0)
                    .collect::<Vec<u32>>()
            });
            let (p1, p2) = (t1.join().unwrap(), t2.join().unwrap());
            // The same key always lands in the same partition, regardless
            // of which thread produced it.
            assert_eq!(p1, p2);
        });
    }
}
