//! Load-generation harness: open-loop QPS sweeps and sequential runs.

use pinot_baseline::DruidEngine;
use pinot_common::query::{QueryRequest, QueryResponse};
use pinot_core::PinotCluster;
use pinot_obs::{Histogram, LATENCY_MS_BOUNDARIES};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Anything that can answer a PQL query (Pinot cluster, Druid baseline).
pub trait QueryEngine: Send + Sync {
    fn name(&self) -> &str;

    /// Run one query; returns the response (partial responses count as
    /// errors in harness statistics).
    fn run(&self, pql: &str) -> QueryResponse;
}

/// Adapter for the integrated Pinot cluster.
pub struct PinotEngine {
    pub cluster: Arc<PinotCluster>,
    pub label: String,
}

impl QueryEngine for PinotEngine {
    fn name(&self) -> &str {
        &self.label
    }

    fn run(&self, pql: &str) -> QueryResponse {
        self.cluster.execute(&QueryRequest::new(pql))
    }
}

/// Adapter for the Druid-like baseline.
pub struct DruidAdapter {
    pub engine: Arc<DruidEngine>,
}

impl QueryEngine for DruidAdapter {
    fn name(&self) -> &str {
        "druid"
    }

    fn run(&self, pql: &str) -> QueryResponse {
        match self.engine.execute(&QueryRequest::new(pql)) {
            Ok(resp) => resp,
            Err(e) => QueryResponse {
                result: pinot_common::query::QueryResult::Aggregation(Vec::new()),
                stats: Default::default(),
                partial: true,
                exceptions: vec![e.to_string()],
                profile: None,
            },
        }
    }
}

/// Results of one load point.
#[derive(Debug, Clone)]
pub struct LoadResult {
    pub target_qps: f64,
    pub achieved_qps: f64,
    pub queries: usize,
    pub errors: usize,
    pub avg_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
}

impl LoadResult {
    /// TSV row: `target achieved avg p50 p95 p99 errors`.
    pub fn tsv(&self) -> String {
        format!(
            "{:.0}\t{:.0}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{}",
            self.target_qps,
            self.achieved_qps,
            self.avg_ms,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.errors
        )
    }
}

/// Value at quantile `q` (0..=1) of an unsorted latency sample, in ms.
/// Exact (sorts the sample); the harness figures use
/// [`latency_histogram`] instead so bench percentiles share the cluster
/// metrics' quantile estimation.
pub fn percentile(latencies_ms: &mut [f64], q: f64) -> f64 {
    if latencies_ms.is_empty() {
        return 0.0;
    }
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let idx = ((latencies_ms.len() - 1) as f64 * q).round() as usize;
    latencies_ms[idx]
}

/// Fold a latency sample into the same fixed-boundary histogram type the
/// cluster's own `broker.phase.*`/`server.exec.*` metrics use, so the
/// percentiles behind Figures 11/12/14/15/16 and live cluster metrics are
/// computed by one implementation.
pub fn latency_histogram(latencies_ms: &[f64]) -> Histogram {
    let mut h = Histogram::new(LATENCY_MS_BOUNDARIES);
    for &l in latencies_ms {
        h.record(l);
    }
    h
}

/// Open-loop load: `total` queries arrive at a fixed rate; `workers`
/// threads service them. Latency is measured from the *scheduled arrival*
/// to completion, so queue delay under overload shows up — this is what
/// makes latency-vs-QPS curves hockey-stick as an engine saturates, the
/// shape Figures 11/14/15/16 plot.
pub fn run_open_loop(
    engine: &dyn QueryEngine,
    queries: &[String],
    target_qps: f64,
    total: usize,
    workers: usize,
) -> LoadResult {
    assert!(target_qps > 0.0 && total > 0 && workers > 0 && !queries.is_empty());
    let interval = Duration::from_secs_f64(1.0 / target_qps);
    let next = AtomicUsize::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(total));
    let errors = AtomicUsize::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let scheduled = start + interval.mul_f64(i as f64);
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let pql = &queries[i % queries.len()];
                    let resp = engine.run(pql);
                    if resp.partial {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    let done = Instant::now();
                    local.push(done.saturating_duration_since(scheduled).as_secs_f64() * 1e3);
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });

    let elapsed = start.elapsed().as_secs_f64();
    let lat = latencies.into_inner().unwrap();
    let hist = latency_histogram(&lat);
    LoadResult {
        target_qps,
        achieved_qps: total as f64 / elapsed.max(1e-9),
        queries: total,
        errors: errors.into_inner(),
        avg_ms: hist.mean(),
        p50_ms: hist.p50(),
        p95_ms: hist.p95(),
        p99_ms: hist.p99(),
    }
}

/// Sequential run: execute `queries` one at a time, returning per-query
/// latencies in ms (Figure 12's setup: "10000 queries executed
/// sequentially") plus the responses for scan-ratio accounting (Figure 13).
pub fn run_sequential(
    engine: &dyn QueryEngine,
    queries: &[String],
) -> (Vec<f64>, Vec<QueryResponse>) {
    let mut latencies = Vec::with_capacity(queries.len());
    let mut responses = Vec::with_capacity(queries.len());
    for pql in queries {
        let t = Instant::now();
        let resp = engine.run(pql);
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
        responses.push(resp);
    }
    (latencies, responses)
}

/// Print a histogram of a latency sample as `bucket_ms count density`
/// rows — the data behind a kernel-density plot like Figure 12.
pub fn print_density(label: &str, latencies_ms: &[f64], buckets: usize) {
    if latencies_ms.is_empty() {
        return;
    }
    let max = latencies_ms.iter().cloned().fold(0.0f64, f64::max);
    let width = (max / buckets as f64).max(1e-9);
    let mut counts = vec![0usize; buckets];
    for &l in latencies_ms {
        let b = ((l / width) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    for (i, c) in counts.iter().enumerate() {
        if *c > 0 {
            println!(
                "{label}\t{:.3}\t{}\t{:.4}",
                (i as f64 + 0.5) * width,
                c,
                *c as f64 / latencies_ms.len() as f64
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeEngine;

    impl QueryEngine for FakeEngine {
        fn name(&self) -> &str {
            "fake"
        }

        fn run(&self, pql: &str) -> QueryResponse {
            std::thread::sleep(Duration::from_micros(200));
            QueryResponse {
                result: pinot_common::query::QueryResult::Aggregation(Vec::new()),
                stats: Default::default(),
                partial: pql.contains("fail"),
                exceptions: Vec::new(),
                profile: None,
            }
        }
    }

    #[test]
    fn percentile_behaviour() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 0.5), 3.0);
        assert_eq!(percentile(&mut v, 1.0), 5.0);
        assert_eq!(percentile(&mut [], 0.5), 0.0);
    }

    #[test]
    fn open_loop_reports_sane_numbers() {
        let queries = vec!["SELECT 1".to_string()];
        let r = run_open_loop(&FakeEngine, &queries, 500.0, 100, 4);
        assert_eq!(r.queries, 100);
        assert_eq!(r.errors, 0);
        assert!(r.avg_ms >= 0.2, "avg {}", r.avg_ms);
        assert!(r.p99_ms >= r.p50_ms);
        assert!(r.achieved_qps > 0.0);
    }

    #[test]
    fn open_loop_counts_errors() {
        let queries = vec!["fail".to_string()];
        let r = run_open_loop(&FakeEngine, &queries, 1000.0, 20, 2);
        assert_eq!(r.errors, 20);
    }

    #[test]
    fn sequential_latencies() {
        let queries: Vec<String> = (0..10).map(|i| format!("q{i}")).collect();
        let (lat, resp) = run_sequential(&FakeEngine, &queries);
        assert_eq!(lat.len(), 10);
        assert_eq!(resp.len(), 10);
        assert!(lat.iter().all(|l| *l > 0.0));
    }
}
