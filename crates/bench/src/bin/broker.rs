//! Broker survival-layer bench (ISSUE 7): the single-flight result cache
//! under a zipfian closed-loop mix, and hedged scatter against a
//! Delay-faulted straggler.
//!
//! Phase 1 drives 8 closed-loop clients over a 64-query pool with zipfian
//! popularity (s ≈ 1.1) against a cache-enabled cluster and demands a
//! ≥50% cache hit ratio. Phase 2 runs the same query against two
//! replicated clusters — hedging on vs off — while `Server_1` is held
//! 25 ms late by a chaos Delay fault, and demands hedging cut the faulted
//! p99 by ≥2×. Results persist to `BENCH_broker.json` at the repo root.

use pinot_common::config::TableConfig;
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_core::chaos::{sites, Fault, FaultScope};
use pinot_core::{ClusterConfig, PinotCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

const TABLE: &str = "events";
const POOL: usize = 64;
const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 500;
const ZIPF_S: f64 = 1.1;
const STRAGGLER_DELAY_MS: u64 = 25;
const HEDGE_MEASURE: usize = 120;

fn schema() -> Schema {
    Schema::new(
        TABLE,
        vec![
            FieldSpec::dimension("viewer", DataType::Long),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn rows(base: i64, n: i64) -> Vec<Record> {
    (0..n)
        .map(|i| {
            Record::new(vec![
                Value::Long(base + i),
                Value::Long(1 + (base + i) % 9),
                Value::Long(100 + (base + i) % 8),
            ])
        })
        .collect()
}

/// Precomputed zipfian CDF over ranks 0..POOL with exponent `ZIPF_S`.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(ZIPF_S);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

fn percentile(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(f64::total_cmp);
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[rank]
}

/// Phase 1: zipfian closed-loop mix against the result cache.
/// Returns (throughput qps, p50 µs, p99 µs, hit ratio, counters json).
fn cache_phase() -> (f64, f64, f64, f64, String) {
    let mut config = ClusterConfig::default()
        .with_servers(1)
        .with_taskpool_threads(4)
        .with_result_cache(true);
    config.num_controllers = 1;
    let cluster = Arc::new(PinotCluster::start(config).unwrap());
    cluster
        .create_table(TableConfig::offline(TABLE), schema())
        .unwrap();
    for base in [0i64, 3000, 6000] {
        cluster.upload_rows(TABLE, rows(base, 2000)).unwrap();
    }

    // 64 semantically distinct queries: each filters a different viewer
    // range, so no two normalize to the same cache key.
    let pool: Vec<String> = (0..POOL)
        .map(|i| {
            format!(
                "SELECT COUNT(*), SUM(clicks) FROM {TABLE} WHERE viewer >= {}",
                i as i64 * 100
            )
        })
        .collect();
    let pool = Arc::new(pool);
    let zipf = Arc::new(Zipf::new(POOL));

    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let cluster = Arc::clone(&cluster);
            let pool = Arc::clone(&pool);
            let zipf = Arc::clone(&zipf);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xCAFE + client as u64);
                let mut lat = Vec::with_capacity(QUERIES_PER_CLIENT);
                for _ in 0..QUERIES_PER_CLIENT {
                    let pql = &pool[zipf.sample(&mut rng)];
                    let t = Instant::now();
                    let resp = cluster.query(pql);
                    lat.push(t.elapsed().as_nanos() as f64 / 1e3);
                    assert!(
                        !resp.partial && resp.exceptions.is_empty(),
                        "cache-phase query failed: {pql}: {:?}",
                        resp.exceptions
                    );
                }
                lat
            })
        })
        .collect();
    let mut latencies: Vec<f64> = clients
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();
    let wall = started.elapsed().as_secs_f64();

    let total = (CLIENTS * QUERIES_PER_CLIENT) as f64;
    let throughput = total / wall;
    let p50 = percentile(&mut latencies, 0.50);
    let p99 = percentile(&mut latencies, 0.99);

    let snap = cluster.metrics_snapshot();
    let hits = snap.counter("broker.cache_hit");
    let misses = snap.counter("broker.cache_miss");
    let coalesced = snap.counter("broker.cache_coalesced");
    let hit_ratio = (hits + coalesced) as f64 / total;
    let counters = format!(
        "{{\"cache_hit\": {hits}, \"cache_miss\": {misses}, \"cache_coalesced\": {coalesced}}}"
    );
    (throughput, p50, p99, hit_ratio, counters)
}

/// Phase 2: hedging vs no hedging against a Delay-faulted straggler.
/// Returns (p99_on µs, p99_off µs, hedge counters json).
fn hedge_phase() -> (f64, f64, String) {
    let build = |hedge: bool| {
        let mut config = ClusterConfig::default()
            .with_servers(3)
            .with_taskpool_threads(16)
            .with_exec_hedge(hedge);
        config.num_controllers = 1;
        let cluster = PinotCluster::start(config).unwrap();
        cluster
            .create_table(TableConfig::offline(TABLE).with_replication(3), schema())
            .unwrap();
        for base in [0i64, 1000, 2000, 3000, 4000, 5000] {
            cluster.upload_rows(TABLE, rows(base, 500)).unwrap();
        }
        cluster
    };
    let hedged = build(true);
    let bare = build(false);
    // A tight hedge floor keeps the speculative re-issue well under the
    // injected straggle without racing healthy replies.
    hedged.brokers()[0].set_hedge_floor_ms(4);

    let pql = format!("SELECT COUNT(*), SUM(clicks) FROM {TABLE}");
    // Warm routing tables and the per-server latency digest (the hedge
    // delay derives from healthy p99, which needs samples).
    for cluster in [&hedged, &bare] {
        for _ in 0..30 {
            let resp = cluster.query(&pql);
            assert!(!resp.partial, "warmup failed: {:?}", resp.exceptions);
        }
    }

    let run = |cluster: &PinotCluster| {
        let fault = cluster.chaos().arm(
            sites::SERVER_EXECUTE,
            Fault::delay_ms(STRAGGLER_DELAY_MS).with_scope(FaultScope::any().instance("Server_1")),
        );
        let mut lat = Vec::with_capacity(HEDGE_MEASURE);
        for _ in 0..HEDGE_MEASURE {
            let t = Instant::now();
            let resp = cluster.query(&pql);
            lat.push(t.elapsed().as_nanos() as f64 / 1e3);
            assert!(
                !resp.partial && resp.exceptions.is_empty(),
                "hedge-phase query failed: {:?}",
                resp.exceptions
            );
        }
        cluster.chaos().disarm(fault);
        lat
    };
    let mut on_lat = run(&hedged);
    let mut off_lat = run(&bare);

    let p99_on = percentile(&mut on_lat, 0.99);
    let p99_off = percentile(&mut off_lat, 0.99);
    let snap = hedged.metrics_snapshot();
    let issued = snap.counter("broker.hedge_issued");
    let won = snap.counter("broker.hedge_won");
    let wasted = snap.counter("broker.hedge_wasted");
    let counters =
        format!("{{\"hedge_issued\": {issued}, \"hedge_won\": {won}, \"hedge_wasted\": {wasted}}}");
    assert!(issued > 0, "the faulted run never hedged");
    (p99_on, p99_off, counters)
}

fn main() {
    println!("# Broker survival bench — result cache + hedged scatter");
    println!("# pool={POOL} clients={CLIENTS} queries/client={QUERIES_PER_CLIENT} zipf_s={ZIPF_S}");

    let (throughput, p50, p99, hit_ratio, cache_counters) = cache_phase();
    println!("cache: {throughput:.0} qps p50={p50:.0}us p99={p99:.0}us hit_ratio={hit_ratio:.3}");
    println!("# cache counters: {cache_counters}");

    let (p99_on, p99_off, hedge_counters) = hedge_phase();
    let hedge_speedup = p99_off / p99_on;
    println!(
        "hedge: straggler={STRAGGLER_DELAY_MS}ms p99_on={p99_on:.0}us p99_off={p99_off:.0}us \
         speedup={hedge_speedup:.2}x"
    );
    println!("# hedge counters: {hedge_counters}");

    let body = format!(
        "{{\n  \"cache\": {{\n    \"pool\": {POOL},\n    \"clients\": {CLIENTS},\n    \
         \"queries\": {},\n    \"zipf_s\": {ZIPF_S},\n    \"throughput_qps\": {throughput:.1},\n    \
         \"p50_us\": {p50:.1},\n    \"p99_us\": {p99:.1},\n    \"hit_ratio\": {hit_ratio:.4},\n    \
         \"counters\": {cache_counters}\n  }},\n  \"hedge\": {{\n    \
         \"straggler_delay_ms\": {STRAGGLER_DELAY_MS},\n    \"queries\": {HEDGE_MEASURE},\n    \
         \"p99_on_us\": {p99_on:.1},\n    \"p99_off_us\": {p99_off:.1},\n    \
         \"p99_speedup\": {hedge_speedup:.2},\n    \"counters\": {hedge_counters}\n  }}\n}}\n",
        CLIENTS * QUERIES_PER_CLIENT
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_broker.json");
    std::fs::write(path, body).expect("write BENCH_broker.json");
    println!("# wrote {path}");

    // Acceptance floors (ISSUE 7): hedging halves the Delay-faulted p99,
    // and the zipfian mix is served mostly from cache.
    assert!(
        hedge_speedup >= 2.0,
        "acceptance: expected hedging to cut faulted p99 >=2x, got {hedge_speedup:.2}x"
    );
    assert!(
        hit_ratio >= 0.5,
        "acceptance: expected >=50% cache hit ratio on the zipfian mix, got {hit_ratio:.3}"
    );
    println!("# acceptance ok: {hedge_speedup:.2}x p99, {hit_ratio:.2} hit ratio");
}
