//! Figure 13: distribution of the ratio of preaggregated records scanned
//! during star-tree execution versus the number of original unaggregated
//! records the query matches. A ratio near zero means the star-tree
//! answered from far fewer records than a raw scan would touch.

use pinot_bench::setup::{anomaly_setup, scale};
use pinot_bench::{run_sequential, QueryEngine};

fn main() {
    let rows = 120_000 * scale();
    let setup = anomaly_setup(rows, 10_000).expect("setup");

    // Only the star-tree engine produces the preaggregation accounting.
    let engine: &dyn QueryEngine = setup
        .engines
        .iter()
        .find(|(l, _)| l == "pinot-startree")
        .map(|(_, e)| e.as_ref())
        .expect("star-tree engine");

    let (_, responses) = run_sequential(engine, &setup.queries);
    let ratios: Vec<f64> = responses
        .iter()
        .filter_map(|r| r.stats.preaggregation_ratio())
        .collect();
    let star_tree_queries = ratios.len();
    let total = responses.len();

    println!("# Figure 13 — star-tree preaggregated/raw scan ratio distribution");
    println!("# rows={rows} queries={total} star_tree_answered={star_tree_queries}");
    let mut sorted = ratios.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if !sorted.is_empty() {
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "# mean={:.4} p50={:.4} p90={:.4} p99={:.4}",
            mean,
            sorted[sorted.len() / 2],
            sorted[sorted.len() * 9 / 10],
            sorted[(sorted.len() * 99 / 100).min(sorted.len() - 1)],
        );
    }

    // Histogram over [0, 1] in 20 buckets.
    println!("ratio_bucket\tcount\tfraction");
    let buckets = 20usize;
    let mut counts = vec![0usize; buckets];
    for r in &ratios {
        let b = ((r * buckets as f64) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    for (i, c) in counts.iter().enumerate() {
        println!(
            "{:.3}\t{}\t{:.4}",
            (i as f64 + 0.5) / buckets as f64,
            c,
            *c as f64 / ratios.len().max(1) as f64
        );
    }
}
