//! Fan-out cost vs cluster size (§4.4's motivation): as clusters grow, a
//! query that contacts every server pays growing coordination cost and
//! rising straggler odds, which is why Pinot adds large-cluster routing
//! (bounded servers per query) and partition-aware routing (one server per
//! point query). This harness holds the data and query load fixed while
//! growing the simulated server count, and reports average latency per
//! routing strategy.
//!
//! Caveat: a single process cannot demonstrate the paper's *near-linear
//! capacity scaling* (adding servers here adds no CPUs); what it can show
//! is the per-query fan-out cost those routing strategies eliminate.

use pinot_bench::harness::PinotEngine;
use pinot_bench::run_open_loop;
use pinot_bench::setup::scale;
use pinot_common::config::{RoutingStrategy, TableConfig};
use pinot_core::{ClusterConfig, PinotCluster};
use pinot_workloads::impressions;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let rows = 100_000 * scale();
    let mut rng = StdRng::seed_from_u64(23);
    let gen = impressions::ImpressionGen::new((rows / 10).max(100), 2_000, 420_000);
    let all_rows = gen.rows(rows, &mut rng);
    let queries = gen.queries(6_000, &mut rng);

    println!("# Fan-out cost vs cluster size (impression-discounting point queries)");
    println!("# rows={rows}, fixed 200 QPS, replication=min(3, servers)");
    println!("servers\tstrategy\tavg_ms\tp95_ms\tservers_per_query");
    for servers in [2usize, 4, 8, 16] {
        for (label, routing) in [
            ("balanced", RoutingStrategy::Balanced),
            (
                "large-cluster",
                RoutingStrategy::LargeCluster {
                    target_servers: 3,
                    routing_table_count: 5,
                    generation_count: 30,
                },
            ),
            (
                "partitioned",
                RoutingStrategy::Partitioned {
                    column: "member_id".into(),
                    num_partitions: servers as u32,
                },
            ),
        ] {
            let cluster = Arc::new(
                PinotCluster::start(ClusterConfig::default().with_servers(servers)).unwrap(),
            );
            cluster
                .create_table(
                    TableConfig::offline(impressions::TABLE)
                        .with_sorted_column("member_id")
                        .with_replication(servers.min(3))
                        .with_routing(routing),
                    impressions::schema(),
                )
                .unwrap();
            if label == "partitioned" {
                cluster
                    .upload_rows_partitioned(impressions::TABLE, all_rows.clone())
                    .unwrap();
            } else {
                // One segment per server so balanced fan-out really fans out.
                for chunk in all_rows.chunks(rows / servers + 1) {
                    cluster
                        .upload_rows(impressions::TABLE, chunk.to_vec())
                        .unwrap();
                }
            }
            // Sample the per-query server count from stats.
            let probe = cluster.query(&queries[0]);
            let spq = probe.stats.num_servers_queried;
            let engine = PinotEngine {
                cluster,
                label: label.to_string(),
            };
            let r = run_open_loop(&engine, &queries, 200.0, 600, servers.min(8));
            println!(
                "{servers}\t{label}\t{:.3}\t{:.3}\t{spq}",
                r.avg_ms, r.p95_ms
            );
        }
    }
}
