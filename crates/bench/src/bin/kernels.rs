//! Kernel microbench: batched dict-id execution vs the legacy row path
//! (ISSUE 4). Four axes over a 1M-doc segment:
//!
//! 1. **bit-unpack throughput** — `PackedIntVec::unpack_block` vs
//!    per-element `get`, across representative bit widths;
//! 2. **filter-scan ns/doc** — the planner's scan-fallback leaf with the
//!    batched id-space matcher vs doc-at-a-time `matches_doc`;
//! 3. **ungrouped SUM** — block accumulate through the dict-id→f64 LUT
//!    vs per-doc dictionary lookups;
//! 4. **group-by rows/s** — packed composite u64 dict-id keys vs owned
//!    `GroupKey` materialization per doc.
//!
//! Results print as TSV and persist to `BENCH_kernels.json` at the repo
//! root so the perf trajectory is tracked across PRs.

use pinot_common::{DataType, FieldSpec, Record, Schema, Value};
use pinot_exec::segment_exec::{execute_on_segment_with, SegmentHandle};
use pinot_exec::{evaluate_filter_mode, ExecOptions};
use pinot_pql::parse;
use pinot_segment::bitpack::{PackedIntVec, BLOCK};
use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

const NUM_DOCS: usize = 1_000_000;
const COUNTRIES: &[&str] = &["us", "de", "in", "br", "jp", "fr", "cn", "gb"];
const DEVICES: &[&str] = &["ios", "android", "web", "tv"];

fn build_segment() -> SegmentHandle {
    let schema = Schema::new(
        "t",
        vec![
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::dimension("device", DataType::String),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::metric("cost", DataType::Long),
        ],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let mut b = SegmentBuilder::new(schema, BuilderConfig::new("s", "t")).unwrap();
    for _ in 0..NUM_DOCS {
        b.add(Record::new(vec![
            Value::from(COUNTRIES[rng.gen_range(0..COUNTRIES.len())]),
            Value::from(DEVICES[rng.gen_range(0..DEVICES.len())]),
            Value::Long(rng.gen_range(0..50i64)),
            Value::Long(rng.gen_range(1..1000i64)),
        ]))
        .unwrap();
    }
    SegmentHandle::new(Arc::new(b.build().unwrap()))
}

/// Best-of-N wall time for `f`, in nanoseconds.
fn best_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

fn bench_unpack(results: &mut Vec<(String, f64, f64, f64)>) {
    println!("kernel\tbatch\trow\tspeedup\tunit");
    for bits in [2u8, 8, 13, 16] {
        let max = (1u64 << bits) as u32 - 1;
        let mut rng = StdRng::seed_from_u64(bits as u64);
        let mut pv = PackedIntVec::with_capacity(bits, NUM_DOCS);
        for _ in 0..NUM_DOCS {
            pv.push(rng.gen_range(0..=max));
        }
        let mut out = vec![0u32; BLOCK];
        let mut sink = 0u64;
        let block_ns = best_ns(5, || {
            let mut doc = 0;
            while doc < NUM_DOCS {
                let n = BLOCK.min(NUM_DOCS - doc);
                pv.unpack_block(doc, &mut out[..n]);
                sink = sink.wrapping_add(out[n - 1] as u64);
                doc += n;
            }
        });
        let get_ns = best_ns(5, || {
            for doc in 0..NUM_DOCS {
                sink = sink.wrapping_add(pv.get(doc) as u64);
            }
        });
        std::hint::black_box(sink);
        let to_mps = |ns: u64| NUM_DOCS as f64 / ns as f64 * 1e3; // M ids/s
        let (b, r) = (to_mps(block_ns), to_mps(get_ns));
        println!("unpack-{bits}bit\t{b:.0}\t{r:.0}\t{:.2}x\tM ids/s", b / r);
        results.push((format!("unpack_{bits}bit_m_ids_per_s"), b, r, b / r));
    }
}

fn bench_filter_scan(handle: &SegmentHandle, results: &mut Vec<(String, f64, f64, f64)>) {
    let pred = parse("SELECT COUNT(*) FROM t WHERE clicks < 25")
        .unwrap()
        .filter
        .unwrap();
    let mut count = 0u64;
    let mut run = |batch: bool| {
        best_ns(5, || {
            let mut stats = Default::default();
            let sel =
                evaluate_filter_mode(&handle.segment, Some(&pred), &mut stats, batch).unwrap();
            count = sel.count();
        })
    };
    let (batch_ns, row_ns) = (run(true), run(false));
    assert!(count > 0);
    let per_doc = |ns: u64| ns as f64 / NUM_DOCS as f64;
    let (b, r) = (per_doc(batch_ns), per_doc(row_ns));
    println!("filter-scan\t{b:.2}\t{r:.2}\t{:.2}x\tns/doc", r / b);
    results.push(("filter_scan_ns_per_doc".into(), b, r, r / b));
    assert!(
        r / b >= 2.0,
        "acceptance: batched filter-scan must be ≥2× faster (got {:.2}x)",
        r / b
    );
}

fn bench_query(
    handle: &SegmentHandle,
    name: &str,
    pql: &str,
    floor: Option<f64>,
    results: &mut Vec<(String, f64, f64, f64)>,
) {
    let query = parse(pql).unwrap();
    let run = |batch: bool| {
        let opts = ExecOptions {
            batch: Some(batch),
            ..ExecOptions::default()
        };
        best_ns(5, || {
            std::hint::black_box(execute_on_segment_with(handle, &query, &opts).unwrap());
        })
    };
    let (batch_ns, row_ns) = (run(true), run(false));
    let rows_per_s = |ns: u64| NUM_DOCS as f64 / (ns as f64 / 1e9) / 1e6; // M rows/s
    let (b, r) = (rows_per_s(batch_ns), rows_per_s(row_ns));
    println!("{name}\t{b:.1}\t{r:.1}\t{:.2}x\tM rows/s", b / r);
    results.push((format!("{name}_m_rows_per_s"), b, r, b / r));
    if let Some(f) = floor {
        assert!(
            b / r >= f,
            "acceptance: batched {name} must be ≥{f}× faster (got {:.2}x)",
            b / r
        );
    }
}

fn write_json(results: &[(String, f64, f64, f64)]) {
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"num_docs\": {NUM_DOCS},\n"));
    body.push_str("  \"kernels\": {\n");
    for (i, (name, batch, row, speedup)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        body.push_str(&format!(
            "    \"{name}\": {{\"batch\": {batch:.3}, \"row\": {row:.3}, \"speedup\": {speedup:.3}}}{comma}\n"
        ));
    }
    body.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, body).expect("write BENCH_kernels.json");
    println!("# wrote {path}");
}

fn main() {
    println!("# Kernel bench — batched dict-id execution vs row path");
    println!("# docs={NUM_DOCS} block={BLOCK}");
    let handle = build_segment();

    let mut results = Vec::new();
    bench_unpack(&mut results);
    bench_filter_scan(&handle, &mut results);
    // SUM is not metadata-answerable, so even unfiltered it runs the raw
    // aggregation kernel over every doc.
    bench_query(
        &handle,
        "sum-ungrouped",
        "SELECT SUM(clicks) FROM t",
        Some(2.0),
        &mut results,
    );
    bench_query(
        &handle,
        "group-by",
        "SELECT SUM(clicks), COUNT(*) FROM t GROUP BY country, device",
        None,
        &mut results,
    );
    bench_query(
        &handle,
        "filtered-group-by",
        "SELECT SUM(cost) FROM t WHERE clicks < 25 GROUP BY country",
        None,
        &mut results,
    );
    write_json(&results);
}
