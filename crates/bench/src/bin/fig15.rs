//! Figure 15: comparison of indexing techniques on the "Who viewed my
//! profile" dataset — physically ordered records vs bitmap inverted
//! indexes. Every query filters on `viewee_id`; sorted segments answer it
//! with two index lookups and a contiguous scan, while bitmaps pay
//! per-posting costs, so the sorted layout scales further (§4.2).

use pinot_bench::run_open_loop;
use pinot_bench::setup::{num_servers, scale, wvmp_setup};

fn main() {
    let rows = 150_000 * scale();
    let setup = wvmp_setup(rows, 10_000).expect("setup");
    let workers = num_servers() * 2;

    println!("# Figure 15 — sorted column vs inverted index on the WVMP dataset");
    println!("# rows={rows} servers={} workers={workers}", num_servers());
    println!("engine\ttarget_qps\tachieved_qps\tavg_ms\tp50_ms\tp95_ms\tp99_ms\terrors");
    for (label, engine) in &setup.engines {
        for qps in [100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0] {
            let total = (qps as usize).clamp(200, 4_000);
            let r = run_open_loop(engine.as_ref(), &setup.queries, qps, total, workers);
            println!("{label}\t{}", r.tsv());
            if r.avg_ms > 2_000.0 {
                break;
            }
        }
    }
}
