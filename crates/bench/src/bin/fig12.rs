//! Figure 12: distribution of query latency when running queries
//! sequentially on the anomaly-detection dataset (the paper shows a kernel
//! density estimate over 10000 sequential queries per system).
//!
//! Output: per-engine percentile summary plus `density` rows
//! (`engine  bucket_ms  count  fraction`) to plot the KDE from.

use pinot_bench::harness::print_density;
use pinot_bench::setup::{anomaly_setup, scale};
use pinot_bench::{latency_histogram, run_sequential};

fn main() {
    let rows = 120_000 * scale();
    let queries_n = 10_000;
    let setup = anomaly_setup(rows, queries_n).expect("setup");

    println!("# Figure 12 — sequential latency distribution (anomaly detection)");
    println!("# rows={rows} queries={queries_n}");
    println!("engine\tavg_ms\tp50_ms\tp90_ms\tp99_ms\tmax_ms");
    let mut all: Vec<(String, Vec<f64>)> = Vec::new();
    for (label, engine) in &setup.engines {
        let (lat, _) = run_sequential(engine.as_ref(), &setup.queries);
        let hist = latency_histogram(&lat);
        println!(
            "{label}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
            hist.mean(),
            hist.p50(),
            hist.quantile(0.90),
            hist.p99(),
            hist.max(),
        );
        all.push((label.clone(), lat));
    }

    println!("\n# density rows: engine\tbucket_ms\tcount\tfraction");
    for (label, lat) in &all {
        print_density(label, lat, 60);
    }
}
