//! Figure 14: Druid vs Pinot on the "share analytics" dataset. The two
//! engines differ in inverted-index generation (Druid indexes every
//! dimension, inflating storage) and physical row ordering (Pinot sorts by
//! the shared-item id, which the paper credits for most of the gap).

use pinot_bench::run_open_loop;
use pinot_bench::setup::{num_servers, scale, share_setup};

fn main() {
    let rows = 150_000 * scale();
    let setup = share_setup(rows, 10_000).expect("setup");
    let workers = num_servers() * 2;

    println!("# Figure 14 — Druid vs Pinot on the share-analytics dataset");
    println!("# rows={rows} servers={} workers={workers}", num_servers());
    println!(
        "# storage: druid={}B pinot={}B (ratio {:.2}x — Druid indexes every dimension)",
        setup.druid_bytes,
        setup.pinot_bytes,
        setup.druid_bytes as f64 / setup.pinot_bytes.max(1) as f64
    );
    println!("engine\ttarget_qps\tachieved_qps\tavg_ms\tp50_ms\tp95_ms\tp99_ms\terrors");
    for (label, engine) in &setup.engines {
        for qps in [50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0] {
            let total = (qps as usize).clamp(100, 3_000);
            let r = run_open_loop(engine.as_ref(), &setup.queries, qps, total, workers);
            println!("{label}\t{}", r.tsv());
            if r.avg_ms > 2_000.0 {
                break;
            }
        }
    }
}
