//! Figure 16: routing optimizations on the impression-discounting dataset.
//! Every query is a per-member point aggregation; partition-aware routing
//! lets the broker contact a single server instead of fanning out, keeping
//! the latency curve flat as the query rate grows — with Druid (which
//! always fans out) as the baseline.

use pinot_bench::run_open_loop;
use pinot_bench::setup::{impression_setup, num_servers, scale};

fn main() {
    let rows = 150_000 * scale();
    let setup = impression_setup(rows, 10_000).expect("setup");
    let workers = num_servers() * 2;

    println!("# Figure 16 — routing optimizations on the impression-discounting dataset");
    println!("# rows={rows} servers={} workers={workers}", num_servers());
    println!("engine\ttarget_qps\tachieved_qps\tavg_ms\tp50_ms\tp95_ms\tp99_ms\terrors");
    for (label, engine) in &setup.engines {
        for qps in [100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0] {
            let total = (qps as usize).clamp(200, 4_000);
            let r = run_open_loop(engine.as_ref(), &setup.queries, qps, total, workers);
            println!("{label}\t{}", r.tsv());
            if r.avg_ms > 2_000.0 {
                break;
            }
        }
    }
}
