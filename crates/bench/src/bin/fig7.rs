//! Figure 7: intra-server parallel segment execution (§3.3.4, Figs 5/7).
//!
//! The paper's servers run each segment's physical plan on a thread-pool
//! worker and merge the partial results; this binary measures what that
//! buys on the multi-segment WVMP workload by running the *same* data and
//! queries on a single-server cluster whose taskpool is pinned to 1 worker
//! vs `available_parallelism` workers. One server isolates the intra-node
//! axis — no scatter fan-out differences muddy the comparison.
//!
//! Output: per-configuration latency percentiles plus the pool's own
//! counters (tasks run/stolen, queue depth) scraped from
//! `render_metrics`, so the figure shows both *that* it is faster and
//! *why* (work actually spread across workers).

use pinot_bench::setup::{scale, BASE_DAY};
use pinot_bench::{latency_histogram, QueryEngine};
use pinot_common::config::TableConfig;
use pinot_core::{ClusterConfig, PinotCluster};
use pinot_workloads::wvmp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SEGMENTS: usize = 16;

fn build(threads: usize, rows: &[pinot_common::Record]) -> Arc<PinotCluster> {
    let cluster = Arc::new(
        PinotCluster::start(
            ClusterConfig::default()
                .with_servers(1)
                .with_taskpool_threads(threads),
        )
        .expect("cluster"),
    );
    cluster
        .create_table(
            TableConfig::offline(wvmp::TABLE).with_sorted_column("viewee_id"),
            wvmp::schema(),
        )
        .expect("table");
    let per_segment = rows.len().div_ceil(SEGMENTS);
    for chunk in rows.chunks(per_segment.max(1)) {
        cluster
            .upload_rows(wvmp::TABLE, chunk.to_vec())
            .expect("upload");
    }
    cluster
}

fn pool_metrics(cluster: &PinotCluster) -> String {
    cluster
        .render_metrics()
        .lines()
        .filter(|l| l.contains("taskpool.") || l.contains("server.exec.segment_ms"))
        .map(|l| format!("    {}", l.trim()))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let num_rows = 200_000 * scale();
    let num_queries = 2_000;
    // At least 4 workers even on small machines, so the figure always
    // exercises the parallel path (on a 1-core box the two configurations
    // tie; the speedup needs real cores).
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(4);

    let mut rng = StdRng::seed_from_u64(7);
    let gen = wvmp::WvmpGen::new((num_rows / 100).max(100), BASE_DAY);
    let rows = gen.rows(num_rows, &mut rng);
    let queries = gen.queries(num_queries, &mut rng);

    println!("# Figure 7 — 1-thread vs N-thread per-segment execution (WVMP)");
    println!("# rows={num_rows} segments={SEGMENTS} queries={num_queries} servers=1");
    println!("engine\tavg_ms\tp50_ms\tp90_ms\tp99_ms\tmax_ms");

    // Both clusters are built before any measurement and the passes are
    // interleaved, best-of per query: measuring one engine entirely after
    // the other's segment builds skews whichever runs second, which on a
    // one-core host is bigger than the effect being measured.
    const PASSES: usize = 5;
    let configs = [
        ("pinot-1-thread".to_string(), 1),
        (format!("pinot-{threads}-thread"), threads),
    ];
    let clusters: Vec<_> = configs.iter().map(|(_, n)| build(*n, &rows)).collect();
    let mut best: Vec<Vec<f64>> = vec![vec![f64::INFINITY; queries.len()]; configs.len()];
    for _ in 0..PASSES {
        for (qi, pql) in queries.iter().enumerate() {
            let req = pinot_common::query::QueryRequest::new(pql);
            for (i, (label, _)) in configs.iter().enumerate() {
                let t = std::time::Instant::now();
                let resp = clusters[i].execute(&req);
                let ms = t.elapsed().as_secs_f64() * 1e3;
                assert!(!resp.partial, "partial/failed response in {label}");
                best[i][qi] = best[i][qi].min(ms);
            }
        }
    }

    let mut json_rows = Vec::new();
    for (i, (label, n)) in configs.iter().enumerate() {
        let (cluster, n) = (&clusters[i], *n);
        let engine = pinot_bench::harness::PinotEngine {
            cluster: Arc::clone(cluster),
            label: label.clone(),
        };
        let hist = latency_histogram(&best[i]);
        println!(
            "{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
            engine.name(),
            hist.mean(),
            hist.p50(),
            hist.quantile(0.90),
            hist.p99(),
            hist.max(),
        );
        println!("  pool metrics:\n{}", pool_metrics(cluster));
        json_rows.push(format!(
            "    \"{}\": {{\"threads\": {n}, \"avg_ms\": {:.4}, \"p50_ms\": {:.4}, \"p90_ms\": {:.4}, \"p99_ms\": {:.4}, \"max_ms\": {:.4}}}",
            engine.name(),
            hist.mean(),
            hist.p50(),
            hist.quantile(0.90),
            hist.p99(),
            hist.max(),
        ));
    }

    // Machine-readable trajectory artifact at the repo root (ISSUE 4).
    let body = format!(
        "{{\n  \"rows\": {num_rows},\n  \"segments\": {SEGMENTS},\n  \"queries\": {num_queries},\n  \"engines\": {{\n{}\n  }}\n}}\n",
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig7.json");
    std::fs::write(path, body).expect("write BENCH_fig7.json");
    println!("# wrote {path}");
}
