//! Realtime ingestion bench (ISSUE 10): query latency *under concurrent
//! ingest* with columnar consuming segments (consistent cuts) vs the seed
//! baseline that rebuilt an immutable snapshot of every consuming segment
//! through `SegmentBuilder` whenever an offset had advanced.
//!
//! The workload interleaves produce → consume-tick → query rounds on a
//! realtime table whose flush threshold is far above the row count, so
//! the consuming segments keep growing and every measured query sees a
//! fresh offset — the worst case for the rebuild baseline (each query
//! pays an O(rows) rebuild) and the steady state for the columnar path
//! (each query takes a cheap cut of already-columnar data). Both modes
//! must return the exact produced count every round; the speedup may
//! never come from a wrong answer. Persists `BENCH_ingest.json` at the
//! repo root so the trajectory is tracked across PRs.

use pinot_common::config::{StreamConfig, TableConfig};
use pinot_common::query::QueryResult;
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_core::{ClusterConfig, PinotCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const TABLE: &str = "events";
const TOPIC: &str = "events-stream";
const PARTITIONS: usize = 2;
const ROUNDS: usize = 120;
const ROWS_PER_ROUND: usize = 500;
const TOTAL_ROWS: usize = ROUNDS * ROWS_PER_ROUND;
/// Far above TOTAL_ROWS: consuming segments never seal, so the rebuild
/// baseline's per-query cost grows with everything ingested so far.
const FLUSH_ROWS: usize = 1_000_000;
/// Acceptance: columnar cuts must improve query p99 under concurrent
/// ingest by at least this factor over the snapshot-rebuild baseline.
const MIN_P99_SPEEDUP: f64 = 5.0;

fn schema() -> Schema {
    Schema::new(
        TABLE,
        vec![
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::dimension("device", DataType::String),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn gen_rows() -> Vec<Record> {
    const DEVICES: &[&str] = &["ios", "android", "web", "tv"];
    let mut rng = StdRng::seed_from_u64(27);
    (0..TOTAL_ROWS)
        .map(|_| {
            Record::new(vec![
                Value::from(format!("c{:02}", rng.gen_range(0..32))),
                Value::from(DEVICES[rng.gen_range(0..DEVICES.len())]),
                Value::Long(rng.gen_range(0..1000i64)),
                Value::Long(rng.gen_range(100..=129i64)),
            ])
        })
        .collect()
}

fn start_cluster(columnar: bool) -> PinotCluster {
    let mut config = ClusterConfig::default()
        .with_servers(1)
        .with_taskpool_threads(4)
        .with_realtime_columnar(columnar);
    config.num_controllers = 1;
    let cluster = PinotCluster::start(config).unwrap();
    cluster
        .streams()
        .create_topic(TOPIC, PARTITIONS as u32)
        .unwrap();
    cluster
        .create_table(
            TableConfig::realtime(
                TABLE,
                StreamConfig {
                    topic: TOPIC.into(),
                    flush_threshold_rows: FLUSH_ROWS,
                    flush_threshold_millis: i64::MAX / 4,
                },
            ),
            schema(),
        )
        .unwrap();
    cluster
}

struct ModeResult {
    query_p50_us: f64,
    query_p99_us: f64,
    ingest_rows_per_sec: f64,
    max_lag: u64,
    sum_clicks: f64,
}

fn percentile(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(f64::total_cmp);
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx]
}

/// One full produce → tick → query run; every round checks the exact
/// count so a fast-but-wrong realtime view can never pass.
fn run_mode(columnar: bool, rows: &[Record]) -> ModeResult {
    let cluster = start_cluster(columnar);
    let mut latencies: Vec<f64> = Vec::with_capacity(ROUNDS);
    let mut tick_secs = 0f64;
    let mut max_lag = 0u64;
    let mut produced = 0usize;
    let mut sum_clicks = f64::NAN;

    for round_rows in rows.chunks(ROWS_PER_ROUND) {
        for (i, r) in round_rows.iter().enumerate() {
            let key = Value::Long(((produced + i) % PARTITIONS) as i64);
            cluster.produce(TOPIC, &key, r.clone()).unwrap();
        }
        produced += round_rows.len();

        let t = Instant::now();
        cluster.consume_tick().unwrap();
        tick_secs += t.elapsed().as_secs_f64();

        let snap = cluster.metrics_snapshot();
        for p in 0..PARTITIONS {
            let lag = snap
                .gauge(&format!("server.consume.lag.{TABLE}_REALTIME.p{p}"))
                .unwrap_or(0);
            max_lag = max_lag.max(lag as u64);
        }

        // The measured query runs against a fresh offset every round, so
        // it pays the full realtime-view cost (cut or rebuild) each time.
        let t = Instant::now();
        let resp = cluster.query(&format!("SELECT COUNT(*), SUM(clicks) FROM {TABLE}"));
        latencies.push(t.elapsed().as_nanos() as f64 / 1e3);
        assert!(
            !resp.partial && resp.exceptions.is_empty(),
            "query failed: {:?}",
            resp.exceptions
        );
        let (count, sum) = match &resp.result {
            QueryResult::Aggregation(aggs) => (
                aggs[0].value.as_i64().unwrap(),
                aggs[1].value.as_f64().unwrap(),
            ),
            other => panic!("{other:?}"),
        };
        assert_eq!(
            count, produced as i64,
            "mode columnar={columnar} lost rows mid-ingest"
        );
        sum_clicks = sum;
    }

    ModeResult {
        query_p50_us: percentile(&mut latencies.clone(), 0.50),
        query_p99_us: percentile(&mut latencies, 0.99),
        ingest_rows_per_sec: produced as f64 / tick_secs,
        max_lag,
        sum_clicks,
    }
}

fn main() {
    println!("# Ingest bench — columnar consistent cuts vs snapshot-rebuild baseline");
    println!("# rows={TOTAL_ROWS} rounds={ROUNDS} partitions={PARTITIONS} (no sealing: flush={FLUSH_ROWS})");

    let rows = gen_rows();
    let columnar = run_mode(true, &rows);
    let legacy = run_mode(false, &rows);

    // Identical data in, identical answers out of both realtime paths.
    assert_eq!(
        columnar.sum_clicks, legacy.sum_clicks,
        "columnar and rebuild paths disagree on SUM(clicks)"
    );

    let speedup = legacy.query_p99_us / columnar.query_p99_us;
    println!("mode\tquery_p50_us\tquery_p99_us\tingest_rows_per_sec\tmax_lag");
    for (name, m) in [("columnar", &columnar), ("legacy", &legacy)] {
        println!(
            "{name}\t{:.0}\t{:.0}\t{:.0}\t{}",
            m.query_p50_us, m.query_p99_us, m.ingest_rows_per_sec, m.max_lag
        );
    }
    println!("# p99 speedup under concurrent ingest: {speedup:.1}x");

    let mode_json = |m: &ModeResult| {
        format!(
            "{{\"query_p50_us\": {:.1}, \"query_p99_us\": {:.1}, \
             \"ingest_rows_per_sec\": {:.0}, \"max_lag\": {}}}",
            m.query_p50_us, m.query_p99_us, m.ingest_rows_per_sec, m.max_lag
        )
    };
    let body = format!(
        "{{\n  \"rows\": {TOTAL_ROWS},\n  \"rounds\": {ROUNDS},\n  \"partitions\": {PARTITIONS},\n  \
         \"columnar\": {},\n  \"legacy\": {},\n  \"p99_speedup\": {speedup:.2}\n}}\n",
        mode_json(&columnar),
        mode_json(&legacy)
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(path, body).expect("write BENCH_ingest.json");
    println!("# wrote {path}");

    // Acceptance (ISSUE 10): ≥5x query p99 improvement under concurrent
    // ingest, and ingestion lag stays bounded by one fetch batch — the
    // consumer keeps up with the producer instead of falling behind.
    assert!(
        speedup >= MIN_P99_SPEEDUP,
        "acceptance: p99 speedup {speedup:.1}x below {MIN_P99_SPEEDUP}x \
         (columnar {:.0}µs vs legacy {:.0}µs)",
        columnar.query_p99_us,
        legacy.query_p99_us
    );
    for (name, m) in [("columnar", &columnar), ("legacy", &legacy)] {
        assert!(
            m.max_lag <= 1024,
            "acceptance: {name} ingestion lag {} exceeded one fetch batch",
            m.max_lag
        );
    }
    println!("# acceptance ok: {speedup:.1}x p99 speedup, lag bounded");
}
