//! Profiling-plane overhead bench (ISSUE 6): `execute_profiled` vs
//! `execute` on the Figure 7 WVMP workload.
//!
//! The profiled path takes per-operator timestamps, builds the
//! broker → server → segment tree, and ships it back with the response;
//! the acceptance bar is that this costs ≤5% end-to-end. Passes
//! alternate profiled/unprofiled on one warmed cluster and the
//! comparison pairs each query with its best observed latency per mode
//! (paired minima are robust to scheduler noise), recorded in
//! `BENCH_profile.json` at the repo root.

use pinot_bench::setup::{scale, BASE_DAY};
use pinot_common::config::TableConfig;
use pinot_common::query::QueryRequest;
use pinot_core::{ClusterConfig, PinotCluster};
use pinot_workloads::wvmp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const SEGMENTS: usize = 16;
const PASSES: usize = 9;
const MAX_OVERHEAD_PCT: f64 = 5.0;

fn run_pass(cluster: &PinotCluster, queries: &[String], profile: bool) -> (f64, Vec<f64>) {
    let mut lat_us = Vec::with_capacity(queries.len());
    let started = Instant::now();
    for pql in queries {
        let mut req = QueryRequest::new(pql);
        req.profile = profile;
        let t = Instant::now();
        let resp = cluster.execute(&req);
        lat_us.push(t.elapsed().as_nanos() as f64 / 1e3);
        assert!(!resp.partial, "partial response for {pql}");
        assert_eq!(
            resp.profile.is_some(),
            profile,
            "profile presence must track the request flag"
        );
    }
    (started.elapsed().as_secs_f64() * 1e3, lat_us)
}

fn p50(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let num_rows = 100_000 * scale();
    let num_queries = 1_000;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(4);

    let mut rng = StdRng::seed_from_u64(7);
    let gen = wvmp::WvmpGen::new((num_rows / 100).max(100), BASE_DAY);
    let rows = gen.rows(num_rows, &mut rng);
    let queries = gen.queries(num_queries, &mut rng);

    let cluster = PinotCluster::start(
        ClusterConfig::default()
            .with_servers(1)
            .with_taskpool_threads(threads),
    )
    .expect("cluster");
    cluster
        .create_table(
            TableConfig::offline(wvmp::TABLE).with_sorted_column("viewee_id"),
            wvmp::schema(),
        )
        .expect("table");
    let per_segment = rows.len().div_ceil(SEGMENTS);
    for chunk in rows.chunks(per_segment.max(1)) {
        cluster
            .upload_rows(wvmp::TABLE, chunk.to_vec())
            .expect("upload");
    }

    println!("# Profiling overhead — execute_profiled vs execute (WVMP)");
    println!("# rows={num_rows} segments={SEGMENTS} queries={num_queries} passes={PASSES}");

    // Results must agree regardless of profiling before anything is timed.
    for pql in queries.iter().take(50) {
        let plain = cluster.execute(&QueryRequest::new(pql));
        let profiled = cluster.execute_profiled(&QueryRequest::new(pql));
        assert_eq!(
            plain.result, profiled.result,
            "profiling changed the result of {pql}"
        );
    }

    // Warm routing tables, page cache, pool workers.
    run_pass(&cluster, &queries, false);
    run_pass(&cluster, &queries, true);

    // Paired per-query minima: each query's best observed latency per mode
    // across all passes. The minimum keeps the deterministic work (including
    // profiling's own cost) and sheds scheduler/allocator noise, which on
    // this in-process cluster is far larger than the effect being measured.
    let mut plain_min = vec![f64::INFINITY; queries.len()];
    let mut profiled_min = vec![f64::INFINITY; queries.len()];
    for pass in 0..PASSES {
        // Alternate which mode goes first so thermal/cache drift cancels.
        let order = if pass % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for profile in order {
            let (_, lat) = run_pass(&cluster, &queries, profile);
            let mins = if profile {
                &mut profiled_min
            } else {
                &mut plain_min
            };
            for (m, l) in mins.iter_mut().zip(&lat) {
                *m = m.min(*l);
            }
        }
    }

    let plain_ms: f64 = plain_min.iter().sum::<f64>() / 1e3;
    let profiled_ms: f64 = profiled_min.iter().sum::<f64>() / 1e3;
    let overhead_pct = (profiled_ms / plain_ms - 1.0) * 100.0;
    let (plain_p50, profiled_p50) = (p50(&mut plain_min), p50(&mut profiled_min));

    println!("mode\tpaired_min_total_ms\tp50_us");
    println!("execute\t{plain_ms:.1}\t{plain_p50:.1}");
    println!("execute_profiled\t{profiled_ms:.1}\t{profiled_p50:.1}");
    println!("# overhead {overhead_pct:.2}% (bar ≤{MAX_OVERHEAD_PCT}%)");

    let body = format!(
        "{{\n  \"rows\": {num_rows},\n  \"queries\": {num_queries},\n  \"passes\": {PASSES},\n  \
         \"execute\": {{\"paired_min_total_ms\": {plain_ms:.2}, \"p50_us\": {plain_p50:.1}}},\n  \
         \"execute_profiled\": {{\"paired_min_total_ms\": {profiled_ms:.2}, \"p50_us\": {profiled_p50:.1}}},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \"max_overhead_pct\": {MAX_OVERHEAD_PCT}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_profile.json");
    std::fs::write(path, body).expect("write BENCH_profile.json");
    println!("# wrote {path}");

    assert!(
        overhead_pct <= MAX_OVERHEAD_PCT,
        "acceptance: profiling overhead {overhead_pct:.2}% exceeds {MAX_OVERHEAD_PCT}%"
    );
    println!("# acceptance ok: {overhead_pct:.2}% overhead");
}
