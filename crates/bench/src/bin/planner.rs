//! Access-path planner bench (ISSUE 9): a mixed workload — point lookups
//! on an inverted column, selective ranges on the sorted and on an
//! unindexed column, a wide IN-list, and a multi-conjunct filter — run
//! under the auto cost-based planner and under each forced single
//! strategy (`scan`, `inverted`, `sorted`).
//!
//! The auto planner must never be a regression: on every shape its p50
//! stays within noise tolerance of the best single strategy for that
//! shape, and on at least two shapes it beats the *worst* strategy by
//! ≥2× — i.e. picking the access path from real statistics is worth real
//! latency, not just plan-diagram aesthetics. All four modes must return
//! identical results on every shape (the differential suite proves this
//! exhaustively; the bench spot-checks it so a miscounted speedup can
//! never come from a wrong answer). Persists `BENCH_planner.json` at the
//! repo root so the trajectory is tracked across PRs.

use pinot_common::config::TableConfig;
use pinot_common::query::QueryResult;
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_core::exec::PlannerMode;
use pinot_core::{ClusterConfig, PinotCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const TABLE: &str = "events";
const NUM_ROWS: usize = 240_000;
const ROWS_PER_SEGMENT: usize = 40_000;
const NUM_COUNTRIES: usize = 64;
const DAY_LO: i64 = 100;
const DAY_HI: i64 = 129;
const MEASURE_ITERS: usize = 17;
/// Timing-noise allowance on "auto ≥ best single strategy". The planner's
/// decisions are deterministic; the clock is not.
const TOLERANCE: f64 = 1.15;

fn schema() -> Schema {
    Schema::new(
        TABLE,
        vec![
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::dimension("device", DataType::String),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn gen_rows() -> Vec<Record> {
    const DEVICES: &[&str] = &["ios", "android", "web", "tv"];
    let mut rng = StdRng::seed_from_u64(9);
    (0..NUM_ROWS)
        .map(|_| {
            Record::new(vec![
                Value::from(format!("c{:02}", rng.gen_range(0..NUM_COUNTRIES))),
                Value::from(DEVICES[rng.gen_range(0..DEVICES.len())]),
                Value::Long(rng.gen_range(0..1000i64)),
                Value::Long(rng.gen_range(DAY_LO..=DAY_HI)),
            ])
        })
        .collect()
}

fn start_cluster(rows: &[Record], mode: PlannerMode) -> PinotCluster {
    let mut config = ClusterConfig::default()
        .with_servers(1)
        .with_taskpool_threads(2)
        .with_exec_planner(mode);
    config.num_controllers = 1;
    let cluster = PinotCluster::start(config).unwrap();
    cluster
        .create_table(
            TableConfig::offline(TABLE)
                .with_sorted_column("day")
                .with_inverted_indexes(&["country", "device"]),
            schema(),
        )
        .unwrap();
    for chunk in rows.chunks(ROWS_PER_SEGMENT) {
        cluster.upload_rows(TABLE, chunk.to_vec()).unwrap();
    }
    cluster
}

/// The mixed workload. The wide IN-list covers 48/64 countries (~75% of
/// rows): wide enough to stress the bulk `union_many`, still under the
/// planner's selectivity gate — this is the shape the gate was calibrated
/// on (Roaring union beats the scan here; only near-total matches don't).
fn shapes() -> Vec<(&'static str, String)> {
    let wide_in = (0..48)
        .map(|i| format!("'c{i:02}'"))
        .collect::<Vec<_>>()
        .join(", ");
    vec![
        (
            "point_lookup",
            format!("SELECT COUNT(*), SUM(clicks) FROM {TABLE} WHERE country = 'c07'"),
        ),
        (
            "sorted_range",
            format!("SELECT COUNT(*), SUM(clicks) FROM {TABLE} WHERE day BETWEEN 102 AND 103"),
        ),
        (
            "unsorted_range",
            format!("SELECT COUNT(*), SUM(clicks) FROM {TABLE} WHERE clicks < 10"),
        ),
        (
            "wide_in_list",
            format!("SELECT COUNT(*), SUM(clicks) FROM {TABLE} WHERE country IN ({wide_in})"),
        ),
        (
            "multi_conjunct",
            format!(
                "SELECT COUNT(*), SUM(clicks) FROM {TABLE} \
                 WHERE country = 'c07' AND device = 'web' AND clicks < 500"
            ),
        ),
    ]
}

fn p50(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// p50 latency (µs) of one shape on one cluster, plus the result for the
/// cross-mode sanity check.
fn measure(cluster: &PinotCluster, pql: &str) -> (f64, QueryResult) {
    let warm = cluster.query(pql);
    assert!(
        !warm.partial && warm.exceptions.is_empty(),
        "query failed: {pql}: {:?}",
        warm.exceptions
    );
    let mut lat = Vec::with_capacity(MEASURE_ITERS);
    for _ in 0..MEASURE_ITERS {
        let t = Instant::now();
        let resp = cluster.query(pql);
        lat.push(t.elapsed().as_nanos() as f64 / 1e3);
        assert!(!resp.partial && resp.exceptions.is_empty());
    }
    (p50(&mut lat), warm.result)
}

fn main() {
    println!("# Planner bench — auto cost-based planning vs forced single strategies");
    println!("# rows={NUM_ROWS} rows/segment={ROWS_PER_SEGMENT}");

    const MODES: &[(&str, PlannerMode)] = &[
        ("auto", PlannerMode::Auto),
        ("scan", PlannerMode::Scan),
        ("inverted", PlannerMode::Inverted),
        ("sorted", PlannerMode::Sorted),
    ];

    let rows = gen_rows();
    let clusters: Vec<(&str, PinotCluster)> = MODES
        .iter()
        .map(|&(name, mode)| (name, start_cluster(&rows, mode)))
        .collect();

    // shape -> [(mode, p50_us)]
    let mut table: Vec<(&str, Vec<(&str, f64)>)> = Vec::new();
    for (shape, pql) in shapes() {
        let mut per_mode = Vec::new();
        let mut expected: Option<QueryResult> = None;
        for (name, cluster) in &clusters {
            let (p, result) = measure(cluster, &pql);
            match &expected {
                None => expected = Some(result),
                Some(e) => assert_eq!(
                    e, &result,
                    "mode {name} changed the answer on shape {shape}"
                ),
            }
            per_mode.push((*name, p));
        }
        table.push((shape, per_mode));
    }

    // The auto cluster really exercised the planner: every access path and
    // at least one bulk index operator fired across the workload.
    let snap = clusters[0].1.metrics_snapshot();
    for metric in ["exec.plan_inverted", "exec.plan_sorted", "exec.plan_scan"] {
        assert!(snap.counter(metric) > 0, "{metric} never fired under auto");
    }
    assert!(
        snap.counter("exec.plan_index_and") > 0,
        "bulk IndexAnd never fired under auto"
    );

    println!("shape\tauto\tscan\tinverted\tsorted\tbest\tworst/auto");
    let mut json_shapes = Vec::new();
    let mut big_wins = 0usize;
    let mut failures = Vec::new();
    for (shape, per_mode) in &table {
        let auto = per_mode[0].1;
        let singles = &per_mode[1..];
        let (best_name, best) = singles
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .copied()
            .unwrap();
        let (_, worst) = singles
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .copied()
            .unwrap();
        let worst_ratio = worst / auto;
        if worst_ratio >= 2.0 {
            big_wins += 1;
        }
        if auto > best * TOLERANCE {
            failures.push(format!(
                "{shape}: auto {auto:.0}µs slower than best single '{best_name}' {best:.0}µs"
            ));
        }
        println!(
            "{shape}\t{:.0}\t{:.0}\t{:.0}\t{:.0}\t{best_name}\t{worst_ratio:.2}x",
            auto, per_mode[1].1, per_mode[2].1, per_mode[3].1
        );
        json_shapes.push(format!(
            "    {{\"shape\": \"{shape}\", \"auto_us\": {auto:.1}, \"scan_us\": {:.1}, \
             \"inverted_us\": {:.1}, \"sorted_us\": {:.1}, \"best_single\": \"{best_name}\", \
             \"worst_over_auto\": {worst_ratio:.2}}}",
            per_mode[1].1, per_mode[2].1, per_mode[3].1
        ));
    }

    let body = format!(
        "{{\n  \"rows\": {NUM_ROWS},\n  \"rows_per_segment\": {ROWS_PER_SEGMENT},\n  \
         \"iters\": {MEASURE_ITERS},\n  \"tolerance\": {TOLERANCE},\n  \
         \"big_wins\": {big_wins},\n  \"shapes\": [\n{}\n  ]\n}}\n",
        json_shapes.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_planner.json");
    std::fs::write(path, body).expect("write BENCH_planner.json");
    println!("# wrote {path}");

    // Acceptance (ISSUE 9): auto ties-or-beats the best single strategy on
    // every shape, and beats the worst by ≥2× on at least two shapes.
    assert!(
        failures.is_empty(),
        "acceptance: auto lost to a single strategy:\n{}",
        failures.join("\n")
    );
    assert!(
        big_wins >= 2,
        "acceptance: expected ≥2 shapes with a ≥2x win over the worst strategy, got {big_wins}"
    );
    println!("# acceptance ok: auto ≤ best single on all shapes, {big_wins} shapes with ≥2x wins");
}
