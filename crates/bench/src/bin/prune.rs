//! Multi-level pruning bench (ISSUE 5): a selective-filter workload over
//! many time-partitioned segments, with the zone-map/bloom pruning
//! pipeline forced on vs off.
//!
//! One segment per day is uploaded to a 3-server cluster. Day-equality
//! queries then touch exactly one segment's worth of data: with pruning
//! on, the broker's zone maps drop 35 of 36 segments (and the servers
//! that only held pruned segments) before any RPC; with pruning off,
//! every segment is planned and scanned. The bench demands a ≥5×
//! reduction in segments planned and a ≥2× p50 latency win, and persists
//! `BENCH_prune.json` at the repo root so the trajectory is tracked
//! across PRs.

use pinot_common::config::TableConfig;
use pinot_common::query::QueryResponse;
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_core::{ClusterConfig, PinotCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const TABLE: &str = "events";
const NUM_DAYS: i64 = 36;
const DAY_LO: i64 = 100;
const ROWS_PER_SEGMENT: usize = 2000;
const MEASURE_ITERS: usize = 6;
const COUNTRIES: &[&str] = &["us", "de", "in", "br", "jp", "fr", "cn", "gb"];

fn schema() -> Schema {
    Schema::new(
        TABLE,
        vec![
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

fn day_rows(day: i64, rng: &mut StdRng) -> Vec<Record> {
    (0..ROWS_PER_SEGMENT)
        .map(|_| {
            Record::new(vec![
                Value::from(COUNTRIES[rng.gen_range(0..COUNTRIES.len())]),
                Value::Long(rng.gen_range(0..50i64)),
                Value::Long(day),
            ])
        })
        .collect()
}

fn start_cluster(prune: bool) -> PinotCluster {
    let mut config = ClusterConfig::default()
        .with_servers(3)
        .with_taskpool_threads(2)
        .with_exec_prune(prune);
    config.num_controllers = 1;
    let cluster = PinotCluster::start(config).unwrap();
    cluster
        .create_table(
            TableConfig::offline(TABLE).with_bloom_filters(&["country"]),
            schema(),
        )
        .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    for day in DAY_LO..DAY_LO + NUM_DAYS {
        cluster.upload_rows(TABLE, day_rows(day, &mut rng)).unwrap();
    }
    cluster
}

fn check(resp: &QueryResponse, pql: &str) {
    assert!(
        !resp.partial && resp.exceptions.is_empty(),
        "query failed: {pql}: {:?}",
        resp.exceptions
    );
    assert_eq!(
        resp.stats.num_segments_queried,
        resp.stats.num_segments_processed + resp.stats.num_segments_pruned,
        "unbalanced stats for {pql}: {:?}",
        resp.stats
    );
}

/// Run the selective workload once; returns (per-query latencies in µs,
/// total segments processed, total docs scanned).
fn run_workload(cluster: &PinotCluster, measure: bool) -> (Vec<f64>, u64, u64) {
    let mut latencies = Vec::new();
    let mut processed = 0u64;
    let mut scanned = 0u64;
    let iters = if measure { MEASURE_ITERS } else { 1 };
    for _ in 0..iters {
        for day in DAY_LO..DAY_LO + NUM_DAYS {
            let pql = format!("SELECT COUNT(*), SUM(clicks) FROM {TABLE} WHERE day = {day}");
            let t = Instant::now();
            let resp = cluster.query(&pql);
            latencies.push(t.elapsed().as_nanos() as f64 / 1e3);
            check(&resp, &pql);
            processed += resp.stats.num_segments_processed;
            scanned += resp.stats.num_docs_scanned;
        }
    }
    (latencies, processed, scanned)
}

fn p50(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    println!("# Prune bench — zone-map/bloom pruning on vs off");
    println!("# segments={NUM_DAYS} rows/segment={ROWS_PER_SEGMENT}");

    let pruned = start_cluster(true);
    let unpruned = start_cluster(false);

    // Warm caches (routing tables, broker zone maps) outside the clock.
    run_workload(&pruned, false);
    run_workload(&unpruned, false);

    let (mut on_lat, on_processed, on_scanned) = run_workload(&pruned, true);
    let (mut off_lat, off_processed, off_scanned) = run_workload(&unpruned, true);
    let queries = on_lat.len();

    // A bloom-only pass: the probe value is inside every segment's zone
    // map, so only the bloom filters can prove it absent.
    for day in DAY_LO..DAY_LO + NUM_DAYS {
        let pql = format!("SELECT COUNT(*) FROM {TABLE} WHERE country = 'ca' AND day >= {day}");
        check(&pruned.query(&pql), &pql);
    }

    let (on_p50, off_p50) = (p50(&mut on_lat), p50(&mut off_lat));
    let segment_reduction = off_processed as f64 / (on_processed.max(1)) as f64;
    let p50_speedup = off_p50 / on_p50;
    let snap = pruned.metrics_snapshot();
    let time_pruned = snap.counter("prune.time_segments");
    let zonemap_pruned = snap.counter("prune.zonemap_segments");
    let bloom_pruned = snap.counter("prune.bloom_segments");
    let servers_skipped = snap.counter("prune.broker_servers_skipped");

    println!("metric\tpruned\tunpruned\tratio");
    println!("segments_processed\t{on_processed}\t{off_processed}\t{segment_reduction:.1}x");
    println!("docs_scanned\t{on_scanned}\t{off_scanned}\t-");
    println!("p50_us\t{on_p50:.0}\t{off_p50:.0}\t{p50_speedup:.2}x");
    println!(
        "# prune counters: time={time_pruned} zonemap={zonemap_pruned} bloom={bloom_pruned} \
         servers_skipped={servers_skipped}"
    );

    let body = format!(
        "{{\n  \"segments\": {NUM_DAYS},\n  \"rows_per_segment\": {ROWS_PER_SEGMENT},\n  \
         \"queries\": {queries},\n  \"pruned\": {{\"p50_us\": {on_p50:.1}, \
         \"segments_processed\": {on_processed}, \"docs_scanned\": {on_scanned}}},\n  \
         \"unpruned\": {{\"p50_us\": {off_p50:.1}, \"segments_processed\": {off_processed}, \
         \"docs_scanned\": {off_scanned}}},\n  \"segment_reduction\": {segment_reduction:.2},\n  \
         \"p50_speedup\": {p50_speedup:.2},\n  \"counters\": {{\"time\": {time_pruned}, \
         \"zonemap\": {zonemap_pruned}, \"bloom\": {bloom_pruned}, \
         \"servers_skipped\": {servers_skipped}}}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_prune.json");
    std::fs::write(path, body).expect("write BENCH_prune.json");
    println!("# wrote {path}");

    // Acceptance floors (ISSUE 5): pruning must plan ≥5× fewer segments
    // and halve p50 latency on the selective workload.
    assert!(
        segment_reduction >= 5.0,
        "acceptance: expected ≥5x fewer segments planned, got {segment_reduction:.2}x"
    );
    assert!(
        p50_speedup >= 2.0,
        "acceptance: expected ≥2x p50 improvement, got {p50_speedup:.2}x"
    );
    assert!(bloom_pruned > 0, "bloom pruning never fired");
    assert!(
        servers_skipped > 0,
        "no servers were dropped from the scatter set"
    );
    println!("# acceptance ok: {segment_reduction:.1}x segments, {p50_speedup:.2}x p50");
}
