//! Figure 11: comparison of indexing techniques on the anomaly-detection
//! dataset — latency as the query rate increases, for Druid, Pinot without
//! indexes, Pinot with inverted indexes, and Pinot with a star-tree.
//!
//! Expected shape (paper): Druid and unindexed Pinot fall over first;
//! inverted indexes roughly double Pinot's scalability; the star-tree gives
//! by far the largest headroom.

use pinot_bench::setup::{anomaly_setup, num_servers, scale};
use pinot_bench::{run_open_loop, LoadResult};

fn main() {
    let rows = 120_000 * scale();
    let setup = anomaly_setup(rows, 10_000).expect("setup");
    let workers = num_servers() * 2;

    println!("# Figure 11 — indexing techniques on the anomaly-detection dataset");
    println!("# rows={rows} servers={} workers={workers}", num_servers());
    println!("engine\ttarget_qps\tachieved_qps\tavg_ms\tp50_ms\tp95_ms\tp99_ms\terrors");
    for (label, engine) in &setup.engines {
        for qps in [25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0] {
            let total = (qps as usize).clamp(100, 2_000);
            let r: LoadResult = run_open_loop(engine.as_ref(), &setup.queries, qps, total, workers);
            println!("{label}\t{}", r.tsv());
            // Stop sweeping an engine once it is hopelessly saturated, like
            // the truncated curves in the paper's figure.
            if r.avg_ms > 2_000.0 {
                break;
            }
        }
    }
}
