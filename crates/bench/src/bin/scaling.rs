//! Morsel scaling acceptance (ISSUE 8): two checks, one artifact.
//!
//! **WVMP guardrail** — the fig7 workload (small per-query work) on a
//! 1-thread vs 4-thread cluster at the *default* cost gate. These queries
//! sit below the fan-out threshold, so both configurations take the
//! inline path and the N-thread cluster must not lose at any percentile
//! beyond a noise tolerance: parallelism that isn't profitable must cost
//! nothing.
//!
//! **Single-segment scaling** — one ≥4M-doc segment with fan-out forced,
//! split into 64Ki-doc morsels. On a multi-core host the 4-thread wall
//! clock must beat 1-thread by ≥2.5×. This container is frequently
//! 1-core, where real parallel wall-clock gain is physically impossible;
//! there the binary reports *modeled* parallel efficiency instead:
//! morsels are uniform count-based slices of the same scan, so with
//! per-morsel cost t_i ∝ docs_i and N workers the critical path is
//! `max(Σt_i/N, max t_i)`, and the modeled speedup `Σt_i / critical`
//! must still clear 2.5× — it fails if morselization stops producing
//! enough (or balanced enough) morsels to keep 4 workers busy. The JSON
//! is labeled with `host_cores` and which `mode` the assertion ran in.

use pinot_bench::setup::BASE_DAY;
use pinot_bench::{latency_histogram, run_sequential, QueryEngine};
use pinot_common::config::TableConfig;
use pinot_common::query::QueryRequest;
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_core::{ClusterConfig, PinotCluster};
use pinot_exec::split_selection;
use pinot_workloads::wvmp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

const WVMP_SEGMENTS: usize = 16;
const WVMP_TOLERANCE: f64 = 1.35;
const BIG_ROWS: usize = 4_000_000;
const BIG_TABLE: &str = "scalerows";
const MORSEL_DOCS: usize = 64 * 1024;
const TARGET_SPEEDUP: f64 = 2.5;
const PASSES: usize = 5;

fn wvmp_cluster(threads: usize, rows: &[Record]) -> Arc<PinotCluster> {
    let cluster = Arc::new(
        PinotCluster::start(
            ClusterConfig::default()
                .with_servers(1)
                .with_taskpool_threads(threads),
        )
        .expect("cluster"),
    );
    cluster
        .create_table(
            TableConfig::offline(wvmp::TABLE).with_sorted_column("viewee_id"),
            wvmp::schema(),
        )
        .expect("table");
    let per_segment = rows.len().div_ceil(WVMP_SEGMENTS);
    for chunk in rows.chunks(per_segment.max(1)) {
        cluster
            .upload_rows(wvmp::TABLE, chunk.to_vec())
            .expect("upload");
    }
    cluster
}

fn big_schema() -> Schema {
    Schema::new(
        BIG_TABLE,
        vec![
            FieldSpec::dimension("bucket", DataType::Long),
            FieldSpec::metric("score", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .expect("schema")
}

fn big_cluster(threads: usize, rows: Vec<Record>) -> Arc<PinotCluster> {
    let cluster = Arc::new(
        PinotCluster::start(
            ClusterConfig::default()
                .with_servers(1)
                .with_taskpool_threads(threads)
                // Force the morsel plane on: the point is to measure it.
                .with_fanout_threshold_ns(1)
                .with_morsel_docs(MORSEL_DOCS),
        )
        .expect("cluster"),
    );
    cluster
        .create_table(TableConfig::offline(BIG_TABLE), big_schema())
        .expect("table");
    // One upload call = one segment: the whole table is a single
    // BIG_ROWS-doc segment, so every morsel comes from intra-segment
    // splitting, not segment-level fan-out.
    cluster.upload_rows(BIG_TABLE, rows).expect("upload");
    cluster
}

/// Best-of-N wall time for one query on one cluster, in milliseconds.
fn best_of(cluster: &PinotCluster, pql: &str) -> f64 {
    let req = QueryRequest::new(pql);
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let started = Instant::now();
        let resp = cluster.execute(&req);
        let ms = started.elapsed().as_secs_f64() * 1e3;
        assert!(
            !resp.partial && resp.exceptions.is_empty(),
            "scaling query failed: {:?}",
            resp.exceptions
        );
        best = best.min(ms);
    }
    best
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // ---- part 1: WVMP must not regress under the default gate ----
    let num_rows = 200_000;
    let num_queries = 1_000;
    let mut rng = StdRng::seed_from_u64(7);
    let gen = wvmp::WvmpGen::new((num_rows / 100).max(100), BASE_DAY);
    let rows = gen.rows(num_rows, &mut rng);
    let queries = gen.queries(num_queries, &mut rng);

    println!("# scaling — WVMP inline guardrail (default cost gate)");
    println!("engine\tavg_ms\tp50_ms\tp90_ms\tp99_ms");
    let mut hists = Vec::new();
    for (label, threads) in [("wvmp-1-thread", 1usize), ("wvmp-4-thread", 4)] {
        let cluster = wvmp_cluster(threads, &rows);
        let engine = pinot_bench::harness::PinotEngine {
            cluster: Arc::clone(&cluster),
            label: label.to_string(),
        };
        let (lat, responses) = run_sequential(&engine, &queries);
        assert_eq!(
            responses.iter().filter(|r| r.partial).count(),
            0,
            "partial responses in {label}"
        );
        let hist = latency_histogram(&lat);
        println!(
            "{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
            engine.name(),
            hist.mean(),
            hist.p50(),
            hist.quantile(0.90),
            hist.p99(),
        );
        // The gate keeps this workload inline: fan-out would show up here
        // as pure overhead, which is exactly what the guardrail rejects.
        let snap = cluster.metrics_snapshot();
        assert!(
            snap.counter("exec.morsels_inline") > 0,
            "{label}: WVMP queries should run inline under the default gate"
        );
        hists.push(hist);
    }
    let (one, four) = (&hists[0], &hists[1]);
    let checks = [
        ("avg", one.mean(), four.mean()),
        ("p50", one.p50(), four.p50()),
        ("p90", one.quantile(0.90), four.quantile(0.90)),
        ("p99", one.p99(), four.p99()),
    ];
    for (name, base, multi) in checks {
        assert!(
            multi <= base * WVMP_TOLERANCE,
            "4-thread WVMP {name} regressed: {multi:.3}ms vs 1-thread {base:.3}ms \
             (tolerance {WVMP_TOLERANCE}x)"
        );
    }

    // ---- part 2: single big segment, morsel scaling ----
    println!("# scaling — single {BIG_ROWS}-doc segment, morsels={MORSEL_DOCS}");
    let make_rows = || -> Vec<Record> {
        (0..BIG_ROWS as i64)
            .map(|i| {
                Record::new(vec![
                    Value::Long(i % 256),
                    Value::Long(i % 1000),
                    Value::Long(100 + i % 30),
                ])
            })
            .collect()
    };
    let pql = format!("SELECT SUM(score), COUNT(*) FROM {BIG_TABLE}");

    let cluster1 = big_cluster(1, make_rows());
    let t1_ms = best_of(&cluster1, &pql);
    let morsels = split_selection(&pinot_exec::DocSelection::All(BIG_ROWS as u32), MORSEL_DOCS);
    let snap1 = cluster1.metrics_snapshot();
    assert!(
        snap1.counter("exec.morsels_split") >= morsels.len() as u64,
        "big segment did not fan out into morsels"
    );
    drop(cluster1);

    let cluster4 = big_cluster(4, make_rows());
    let t4_ms = best_of(&cluster4, &pql);
    drop(cluster4);

    // Modeled critical path: morsels are count-based slices of one scan,
    // so per-morsel cost is proportional to its doc count and the
    // 1-thread wall time measures Σt_i. With 4 workers the schedule
    // cannot beat max(Σ/4, max t_i).
    let total_docs: u64 = morsels.iter().map(|m| m.count()).sum();
    let max_docs: u64 = morsels.iter().map(|m| m.count()).max().unwrap_or(0);
    let modeled_ms = (t1_ms / 4.0).max(t1_ms * max_docs as f64 / total_docs as f64);
    let modeled_speedup = t1_ms / modeled_ms;
    let wall_speedup = t1_ms / t4_ms;
    let mode = if host_cores >= 4 {
        "wall_clock"
    } else {
        "modeled"
    };
    println!(
        "t1={t1_ms:.1}ms t4={t4_ms:.1}ms morsels={} wall_speedup={wall_speedup:.2}x \
         modeled_speedup={modeled_speedup:.2}x mode={mode} host_cores={host_cores}",
        morsels.len()
    );
    if host_cores >= 4 {
        assert!(
            wall_speedup >= TARGET_SPEEDUP,
            "4-thread wall-clock speedup {wall_speedup:.2}x below {TARGET_SPEEDUP}x"
        );
    } else {
        // A 1-core host cannot show real parallel wall-clock gain; hold
        // the morsel plane to the modeled bound instead, and make sure
        // extra threads at least cost nothing.
        assert!(
            modeled_speedup >= TARGET_SPEEDUP,
            "modeled 4-worker speedup {modeled_speedup:.2}x below {TARGET_SPEEDUP}x \
             ({} morsels, max {} docs)",
            morsels.len(),
            max_docs
        );
        // Forced fan-out with 4 workers time-slicing one core pays real
        // context-switch/steal overhead; bound it rather than demand a
        // tie (the "unprofitable parallelism costs nothing" guarantee is
        // the cost gate's, asserted in part 1 — this path has the gate
        // deliberately pinned open).
        assert!(
            t4_ms <= t1_ms * 2.0,
            "oversubscribed 4-thread run should stay within 2x of 1 thread, \
             got {t4_ms:.1}ms vs {t1_ms:.1}ms"
        );
    }

    let body = format!(
        "{{\n  \"host_cores\": {host_cores},\n  \"mode\": \"{mode}\",\n  \
         \"wvmp\": {{\n    \"rows\": {num_rows},\n    \"queries\": {num_queries},\n    \
         \"one_thread\": {{\"avg_ms\": {:.4}, \"p50_ms\": {:.4}, \"p90_ms\": {:.4}, \"p99_ms\": {:.4}}},\n    \
         \"four_thread\": {{\"avg_ms\": {:.4}, \"p50_ms\": {:.4}, \"p90_ms\": {:.4}, \"p99_ms\": {:.4}}},\n    \
         \"tolerance\": {WVMP_TOLERANCE}\n  }},\n  \
         \"single_segment\": {{\n    \"rows\": {BIG_ROWS},\n    \"morsel_docs\": {MORSEL_DOCS},\n    \
         \"morsels\": {},\n    \"t1_ms\": {t1_ms:.3},\n    \"t4_ms\": {t4_ms:.3},\n    \
         \"wall_speedup\": {wall_speedup:.3},\n    \"modeled_speedup\": {modeled_speedup:.3},\n    \
         \"target_speedup\": {TARGET_SPEEDUP}\n  }}\n}}\n",
        one.mean(),
        one.p50(),
        one.quantile(0.90),
        one.p99(),
        four.mean(),
        four.p50(),
        four.quantile(0.90),
        four.p99(),
        morsels.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    std::fs::write(path, body).expect("write BENCH_scaling.json");
    println!("# wrote {path}");
}
