//! Table 1: a comparison of the techniques for OLAP and their
//! applicability to large scale serving.
//!
//! The paper's table is qualitative; this binary reprints it and backs the
//! Druid/Pinot rows with measured proxies from this reproduction: ingest
//! rate (records/s through segment build + load), peak sustained query
//! rate, and point-query latency on the WVMP workload.

use pinot_bench::setup::{scale, wvmp_setup};
use pinot_bench::{latency_histogram, run_open_loop, run_sequential};

fn main() {
    println!("# Table 1 — techniques for OLAP and their applicability to large-scale serving");
    println!(
        "technique\tfast_ingest_and_indexing\thigh_query_rate\tquery_flexibility\tquery_latency"
    );
    for (tech, ingest, rate, flex, lat) in [
        ("RDBMS", "Not typically", "Yes", "High", "Low/moderate"),
        ("KV stores", "Yes", "Yes", "None", "Low"),
        ("Online OLAP", "No", "Not typically", "High", "Low/moderate"),
        ("Offline OLAP", "No", "No", "High", "High"),
        ("Druid", "Yes", "No", "Moderate", "Low/moderate"),
        ("Pinot", "Yes", "Yes", "Moderate", "Low"),
    ] {
        println!("{tech}\t{ingest}\t{rate}\t{flex}\t{lat}");
    }

    // Measured proxies for the two systems built in this repository.
    let rows = 60_000 * scale();
    println!("\n# measured proxies (this reproduction, rows={rows})");
    let build_start = std::time::Instant::now();
    let setup = wvmp_setup(rows, 5_000).expect("setup");
    let build_secs = build_start.elapsed().as_secs_f64();
    println!(
        "ingest_and_index_rate\t{:.0} records/s (segment build + load, both engines)",
        (rows * setup.engines.len()) as f64 / build_secs
    );

    println!("engine\tsustained_qps\tp50_latency_ms\tp99_latency_ms");
    for (label, engine) in &setup.engines {
        // Latency at modest load.
        let (lat, _) = run_sequential(
            engine.as_ref(),
            &setup.queries[..500.min(setup.queries.len())],
        );
        let hist = latency_histogram(&lat);
        let p50 = hist.p50();
        let p99 = hist.p99();
        // Highest load point that stays under 50 ms average.
        let mut sustained = 0.0;
        for qps in [200.0, 400.0, 800.0, 1600.0, 3200.0] {
            let r = run_open_loop(engine.as_ref(), &setup.queries, qps, 400, 8);
            if r.avg_ms < 50.0 {
                sustained = r.achieved_qps;
            } else {
                break;
            }
        }
        println!("{label}\t{sustained:.0}\t{p50:.3}\t{p99:.3}");
    }
}
