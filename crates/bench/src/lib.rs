//! Benchmark harness for the paper's evaluation (§6).
//!
//! One binary per table/figure regenerates the corresponding result:
//!
//! | target  | paper content |
//! |---------|---------------|
//! | `table1`| qualitative technique comparison, with measured proxies |
//! | `fig7`  | 1-thread vs N-thread per-segment execution (WVMP) |
//! | `fig11` | latency vs QPS by indexing technique (anomaly detection) |
//! | `fig12` | sequential-latency distribution (anomaly detection) |
//! | `fig13` | star-tree preaggregated/raw scan-ratio distribution |
//! | `fig14` | Druid vs Pinot on share analytics (sorted column) |
//! | `fig15` | sorted column vs inverted index on WVMP |
//! | `fig16` | routing strategies on impression discounting |
//!
//! Run with `cargo run -p pinot-bench --release --bin figNN`. The `SCALE`
//! environment variable multiplies dataset sizes (default 1 ≈ laptop-scale;
//! the paper's absolute numbers came from a 9-node cluster, so shapes, not
//! absolute latencies, are the reproduction target — see EXPERIMENTS.md).

pub mod harness;
pub mod setup;

pub use harness::{
    latency_histogram, percentile, run_open_loop, run_sequential, LoadResult, QueryEngine,
};
