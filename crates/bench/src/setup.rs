//! Dataset/cluster builders shared by the figure binaries, the Criterion
//! benches and the harness tests.

use crate::harness::{DruidAdapter, PinotEngine, QueryEngine};
use pinot_baseline::DruidEngine;
use pinot_common::config::{RoutingStrategy, StarTreeConfig, TableConfig};
use pinot_common::{Record, Result, Schema};
use pinot_core::{ClusterConfig, PinotCluster};
use pinot_workloads::{anomaly, impressions, share_analytics, wvmp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Scale multiplier from the `SCALE` env var (default 1).
pub fn scale() -> usize {
    std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

/// Number of simulated servers (the paper used 9 hosts; we default to 4
/// worker threads' worth and let `SERVERS` override).
pub fn num_servers() -> usize {
    std::env::var("SERVERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(4)
}

pub const BASE_DAY: i64 = 17_000;
pub const BASE_HOUR: i64 = 420_000;

/// Boot a Pinot cluster, create one offline table, and upload `rows` in
/// segments of `rows_per_segment`.
pub fn build_pinot(
    config: TableConfig,
    schema: Schema,
    rows: &[Record],
    rows_per_segment: usize,
) -> Result<Arc<PinotCluster>> {
    let cluster = Arc::new(PinotCluster::start(
        ClusterConfig::default().with_servers(num_servers()),
    )?);
    let logical = config.name.clone();
    let partitioned = matches!(config.routing, RoutingStrategy::Partitioned { .. });
    cluster.create_table(config, schema)?;
    if partitioned {
        cluster.upload_rows_partitioned(&logical, rows.to_vec())?;
    } else {
        for chunk in rows.chunks(rows_per_segment.max(1)) {
            cluster.upload_rows(&logical, chunk.to_vec())?;
        }
    }
    Ok(cluster)
}

/// Boot the standalone Druid baseline with the same data (used for
/// storage-size accounting and as a second implementation in tests).
pub fn build_druid(
    name: &str,
    schema: Schema,
    rows: &[Record],
    rows_per_segment: usize,
) -> Result<Arc<DruidEngine>> {
    let mut druid = DruidEngine::new(num_servers());
    druid.load_table(name, schema, rows.to_vec(), rows_per_segment)?;
    Ok(Arc::new(druid))
}

/// Boot a *Druid-style* configuration on the same cluster substrate: a
/// bitmap inverted index on every dimension column, no sorted layout, no
/// star-tree, balanced routing. The paper attributes the Druid/Pinot gaps
/// to exactly these storage-layer differences, so running both sides
/// through identical broker/server machinery isolates them (see DESIGN.md
/// substitutions).
pub fn build_druid_style(
    name: &str,
    schema: Schema,
    rows: &[Record],
    rows_per_segment: usize,
) -> Result<Arc<PinotCluster>> {
    let dims: Vec<String> = schema
        .fields()
        .iter()
        .filter(|f| f.role == pinot_common::FieldRole::Dimension)
        .map(|f| f.name.clone())
        .collect();
    let dim_refs: Vec<&str> = dims.iter().map(String::as_str).collect();
    build_pinot(
        TableConfig::offline(name).with_inverted_indexes(&dim_refs),
        schema,
        rows,
        rows_per_segment,
    )
}

fn pinot_engine(label: &str, cluster: Arc<PinotCluster>) -> Box<dyn QueryEngine> {
    Box::new(PinotEngine {
        cluster,
        label: label.to_string(),
    })
}

/// Figures 11–13: the anomaly-detection dataset under four engines —
/// Druid, Pinot without indexes, Pinot with inverted indexes, Pinot with a
/// star-tree.
pub struct AnomalySetup {
    pub engines: Vec<(String, Box<dyn QueryEngine>)>,
    pub queries: Vec<String>,
    /// Cluster handle for the star-tree variant (Figure 13 accounting).
    pub startree_cluster: Arc<PinotCluster>,
}

pub fn anomaly_setup(num_rows: usize, num_queries: usize) -> Result<AnomalySetup> {
    let mut rng = StdRng::seed_from_u64(11);
    let rows = anomaly::rows(num_rows, BASE_DAY, &mut rng);
    let queries = anomaly::queries(num_queries, BASE_DAY, &mut rng);
    let rows_per_segment = (num_rows / 8).max(1_000);

    // The Druid comparison on this dataset uses the standalone engine: a
    // Druid-style config would be identical to pinot-inverted here (the
    // anomaly queries filter on exactly the indexed dimensions), whereas
    // Figures 14/16 exercise layouts Druid genuinely lacks.
    let standalone = build_druid(anomaly::TABLE, anomaly::schema(), &rows, rows_per_segment)?;
    let noindex = build_pinot(
        TableConfig::offline(anomaly::TABLE),
        anomaly::schema(),
        &rows,
        rows_per_segment,
    )?;
    let inverted = build_pinot(
        TableConfig::offline(anomaly::TABLE).with_inverted_indexes(&[
            "metric_name",
            "datacenter",
            "country",
            "platform",
            "fabric",
        ]),
        anomaly::schema(),
        &rows,
        rows_per_segment,
    )?;
    let startree_cluster = build_pinot(
        TableConfig::offline(anomaly::TABLE).with_star_tree(StarTreeConfig {
            dimensions: vec![
                "metric_name".into(),
                "datacenter".into(),
                "country".into(),
                "platform".into(),
                "fabric".into(),
                // The time column participates as an ordinary dimension so
                // monitoring queries' `day >= X` filters navigate the tree.
                "day".into(),
            ],
            metrics: vec!["value".into(), "events".into()],
            max_leaf_records: 20,
            skip_star_dimensions: vec![],
        }),
        anomaly::schema(),
        &rows,
        rows_per_segment,
    )?;

    Ok(AnomalySetup {
        engines: vec![
            (
                "druid".into(),
                Box::new(DruidAdapter { engine: standalone }) as Box<dyn QueryEngine>,
            ),
            (
                "pinot-noindex".into(),
                pinot_engine("pinot-noindex", noindex),
            ),
            (
                "pinot-inverted".into(),
                pinot_engine("pinot-inverted", inverted),
            ),
            (
                "pinot-startree".into(),
                pinot_engine("pinot-startree", Arc::clone(&startree_cluster)),
            ),
        ],
        queries,
        startree_cluster,
    })
}

/// Figure 14: share analytics — Druid vs Pinot with the physical sort on
/// the shared-item id.
pub struct ShareSetup {
    pub engines: Vec<(String, Box<dyn QueryEngine>)>,
    pub queries: Vec<String>,
    pub druid_bytes: u64,
    pub pinot_bytes: u64,
}

pub fn share_setup(num_rows: usize, num_queries: usize) -> Result<ShareSetup> {
    let mut rng = StdRng::seed_from_u64(14);
    let gen = share_analytics::ShareGen::new((num_rows / 150).max(100), BASE_DAY);
    let rows = gen.rows(num_rows, &mut rng);
    let queries = gen.queries(num_queries, &mut rng);
    let rows_per_segment = (num_rows / 8).max(1_000);

    let druid = build_druid_style(
        share_analytics::TABLE,
        share_analytics::schema(),
        &rows,
        rows_per_segment,
    )?;
    let pinot = build_pinot(
        TableConfig::offline(share_analytics::TABLE).with_sorted_column("item_id"),
        share_analytics::schema(),
        &rows,
        rows_per_segment,
    )?;
    let standalone = build_druid(
        share_analytics::TABLE,
        share_analytics::schema(),
        &rows,
        rows_per_segment,
    )?;
    let key = format!("segments/{}_OFFLINE/", share_analytics::TABLE);
    let druid_bytes = druid.objstore().size_under(&key);
    let pinot_bytes = pinot.objstore().size_under(&key);

    Ok(ShareSetup {
        engines: vec![
            (
                "druid-standalone".into(),
                Box::new(DruidAdapter { engine: standalone }) as Box<dyn QueryEngine>,
            ),
            ("druid-style".into(), pinot_engine("druid-style", druid)),
            ("pinot-sorted".into(), pinot_engine("pinot-sorted", pinot)),
        ],
        queries,
        druid_bytes,
        pinot_bytes,
    })
}

/// Figure 15: WVMP — Pinot with bitmap inverted indexes vs Pinot with the
/// physical sort on `viewee_id`.
pub struct WvmpSetup {
    pub engines: Vec<(String, Box<dyn QueryEngine>)>,
    pub queries: Vec<String>,
}

pub fn wvmp_setup(num_rows: usize, num_queries: usize) -> Result<WvmpSetup> {
    let mut rng = StdRng::seed_from_u64(15);
    let gen = wvmp::WvmpGen::new((num_rows / 100).max(100), BASE_DAY);
    let rows = gen.rows(num_rows, &mut rng);
    let queries = gen.queries(num_queries, &mut rng);
    let rows_per_segment = (num_rows / 8).max(1_000);

    let inverted = build_pinot(
        TableConfig::offline(wvmp::TABLE).with_inverted_indexes(&["viewee_id"]),
        wvmp::schema(),
        &rows,
        rows_per_segment,
    )?;
    let sorted = build_pinot(
        TableConfig::offline(wvmp::TABLE).with_sorted_column("viewee_id"),
        wvmp::schema(),
        &rows,
        rows_per_segment,
    )?;

    Ok(WvmpSetup {
        engines: vec![
            (
                "pinot-inverted".into(),
                pinot_engine("pinot-inverted", inverted),
            ),
            ("pinot-sorted".into(), pinot_engine("pinot-sorted", sorted)),
        ],
        queries,
    })
}

/// Figure 16: impression discounting — Druid, Pinot unpartitioned
/// (balanced routing), Pinot partitioned (partition-aware routing).
pub struct ImpressionSetup {
    pub engines: Vec<(String, Box<dyn QueryEngine>)>,
    pub queries: Vec<String>,
}

pub fn impression_setup(num_rows: usize, num_queries: usize) -> Result<ImpressionSetup> {
    let mut rng = StdRng::seed_from_u64(16);
    let gen = impressions::ImpressionGen::new((num_rows / 10).max(100), 5_000, BASE_HOUR);
    let rows = gen.rows(num_rows, &mut rng);
    let queries = gen.queries(num_queries, &mut rng);
    let rows_per_segment = (num_rows / 8).max(1_000);
    let partitions = num_servers() as u32;

    let standalone = build_druid(
        impressions::TABLE,
        impressions::schema(),
        &rows,
        rows_per_segment,
    )?;
    let druid = build_druid_style(
        impressions::TABLE,
        impressions::schema(),
        &rows,
        rows_per_segment,
    )?;
    let unpartitioned = build_pinot(
        TableConfig::offline(impressions::TABLE).with_sorted_column("member_id"),
        impressions::schema(),
        &rows,
        rows_per_segment,
    )?;
    let partitioned = build_pinot(
        TableConfig::offline(impressions::TABLE)
            .with_sorted_column("member_id")
            .with_routing(RoutingStrategy::Partitioned {
                column: "member_id".into(),
                num_partitions: partitions,
            }),
        impressions::schema(),
        &rows,
        rows_per_segment,
    )?;

    Ok(ImpressionSetup {
        engines: vec![
            (
                "druid-standalone".into(),
                Box::new(DruidAdapter { engine: standalone }) as Box<dyn QueryEngine>,
            ),
            ("druid-style".into(), pinot_engine("druid-style", druid)),
            (
                "pinot-unpartitioned".into(),
                pinot_engine("pinot-unpartitioned", unpartitioned),
            ),
            (
                "pinot-partitioned".into(),
                pinot_engine("pinot-partitioned", partitioned),
            ),
        ],
        queries,
    })
}
