//! End-to-end single-query latency through the full stack (broker →
//! servers → per-segment plans) for each engine/index configuration, plus
//! ablations: predicate reordering benefit, star-tree leaf-size sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pinot_bench::setup::{anomaly_setup, wvmp_setup};

fn bench_anomaly_engines(c: &mut Criterion) {
    let setup = anomaly_setup(40_000, 500).expect("setup");
    let mut group = c.benchmark_group("endtoend/anomaly");
    for (label, engine) in &setup.engines {
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(label), engine, |b, e| {
            b.iter(|| {
                i = (i + 1) % setup.queries.len();
                let resp = e.run(black_box(&setup.queries[i]));
                assert!(!resp.partial, "{:?}", resp.exceptions);
                resp.stats.num_docs_scanned
            })
        });
    }
    group.finish();
}

fn bench_wvmp_engines(c: &mut Criterion) {
    let setup = wvmp_setup(60_000, 500).expect("setup");
    let mut group = c.benchmark_group("endtoend/wvmp");
    for (label, engine) in &setup.engines {
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(label), engine, |b, e| {
            b.iter(|| {
                i = (i + 1) % setup.queries.len();
                let resp = e.run(black_box(&setup.queries[i]));
                assert!(!resp.partial, "{:?}", resp.exceptions);
                resp.stats.num_docs_scanned
            })
        });
    }
    group.finish();
}

/// Ablation: star-tree `max_leaf_records` sweep — smaller leaves mean a
/// deeper tree (more build work, less per-query scanning).
fn bench_startree_leaf_sweep(c: &mut Criterion) {
    use pinot_common::config::StarTreeConfig;
    use pinot_common::{DataType, FieldSpec, Record, Schema, Value};
    use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
    use pinot_startree::{build_star_tree, DimFilter};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let schema = Schema::new(
        "t",
        vec![
            FieldSpec::dimension("a", DataType::Long),
            FieldSpec::dimension("b", DataType::String),
            FieldSpec::metric("m", DataType::Long),
        ],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let mut builder = SegmentBuilder::new(schema, BuilderConfig::new("s", "t")).unwrap();
    for _ in 0..60_000 {
        builder
            .add(Record::new(vec![
                Value::Long(rng.gen_range(0..500)),
                Value::String(format!("b{}", rng.gen_range(0..40))),
                Value::Long(rng.gen_range(0..100)),
            ]))
            .unwrap();
    }
    let seg = builder.build().unwrap();

    let mut group = c.benchmark_group("ablation/startree_leaf_size");
    for leaf in [10usize, 100, 1_000, 10_000] {
        let tree = build_star_tree(
            &seg,
            &StarTreeConfig {
                dimensions: vec!["a".into(), "b".into()],
                metrics: vec!["m".into()],
                max_leaf_records: leaf,
                skip_star_dimensions: vec![],
            },
        )
        .unwrap();
        let id = seg
            .column("a")
            .unwrap()
            .dictionary
            .id_of(&Value::Long(250))
            .unwrap();
        let filters = vec![DimFilter::In(vec![id]), DimFilter::Any];
        group.bench_with_input(BenchmarkId::from_parameter(leaf), &tree, |b, t| {
            b.iter(|| t.execute(black_box(&filters), &[]).preagg_docs_scanned)
        });
    }
    group.finish();
}

/// Ablation: §4.2's cost-ordered predicate evaluation (sorted column first,
/// scans restricted to the running selection) vs naive left-to-right
/// evaluation with full materialization.
fn bench_predicate_reordering(c: &mut Criterion) {
    use pinot_common::query::ExecutionStats;
    use pinot_common::{DataType, FieldSpec, Record, Schema, Value};
    use pinot_exec::planner::evaluate_filter_with_ordering;
    use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let schema = Schema::new(
        "t",
        vec![
            FieldSpec::dimension("sorted_key", DataType::Long),
            FieldSpec::dimension("facet", DataType::String),
            FieldSpec::metric("m", DataType::Long),
        ],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let mut b = SegmentBuilder::new(
        schema,
        BuilderConfig::new("s", "t").with_sort_columns(&["sorted_key"]),
    )
    .unwrap();
    for _ in 0..200_000 {
        b.add(Record::new(vec![
            Value::Long(rng.gen_range(0..2_000)),
            Value::String(format!("f{}", rng.gen_range(0..100))),
            Value::Long(rng.gen_range(0..1_000)),
        ]))
        .unwrap();
    }
    let seg = b.build().unwrap();
    // A selective sorted predicate plus an expensive scan predicate: the
    // ordering rule evaluates the scan only inside the sorted range.
    let pred = pinot_pql::parse(
        "SELECT COUNT(*) FROM t WHERE m > 500 AND facet = 'f7' AND sorted_key = 42",
    )
    .unwrap()
    .filter
    .unwrap();

    let mut group = c.benchmark_group("ablation/predicate_reordering");
    group.bench_function("cost_ordered", |bench| {
        bench.iter(|| {
            let mut stats = ExecutionStats::default();
            evaluate_filter_with_ordering(black_box(&seg), Some(&pred), &mut stats, true)
                .unwrap()
                .count()
        })
    });
    group.bench_function("naive_order", |bench| {
        bench.iter(|| {
            let mut stats = ExecutionStats::default();
            evaluate_filter_with_ordering(black_box(&seg), Some(&pred), &mut stats, false)
                .unwrap()
                .count()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_anomaly_engines, bench_wvmp_engines, bench_startree_leaf_sweep,
        bench_predicate_reordering
}
criterion_main!(benches);
