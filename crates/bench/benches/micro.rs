//! Criterion microbenchmarks for the core data structures: roaring
//! bitmaps, bit-packed vectors, dictionaries, index lookups, star-tree
//! traversal, PQL parsing, and routing-table generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pinot_bitmap::RoaringBitmap;
use pinot_common::config::StarTreeConfig;
use pinot_common::ids::InstanceId;
use pinot_common::query::ExecutionStats;
use pinot_common::{DataType, FieldSpec, Record, Schema, Value};
use pinot_exec::planner::evaluate_filter;
use pinot_segment::bitpack::PackedIntVec;
use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
use pinot_segment::ImmutableSegment;
use pinot_startree::{build_star_tree, DimFilter, StarTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_bitmaps(c: &mut Criterion) {
    let a = RoaringBitmap::from_iter((0..200_000u32).filter(|v| v % 3 == 0));
    let b = RoaringBitmap::from_iter((0..200_000u32).filter(|v| v % 5 == 0));
    let mut run = a.clone();
    run.optimize();

    c.bench_function("bitmap/and", |bench| {
        bench.iter(|| black_box(a.and(&b)).len())
    });
    c.bench_function("bitmap/or", |bench| {
        bench.iter(|| black_box(a.or(&b)).len())
    });
    c.bench_function("bitmap/and_not", |bench| {
        bench.iter(|| black_box(a.and_not(&b)).len())
    });
    c.bench_function("bitmap/and_run_container", |bench| {
        bench.iter(|| black_box(run.and(&b)).len())
    });
    c.bench_function("bitmap/contains", |bench| {
        bench.iter(|| {
            let mut hits = 0u32;
            for v in (0..10_000u32).step_by(7) {
                hits += a.contains(black_box(v)) as u32;
            }
            hits
        })
    });
    c.bench_function("bitmap/serialize", |bench| {
        bench.iter(|| pinot_bitmap::serialize(black_box(&a)).len())
    });
}

fn bench_bitpack(c: &mut Criterion) {
    let values: Vec<u32> = (0..100_000).map(|i| i % 4096).collect();
    let packed = PackedIntVec::from_slice(&values);
    c.bench_function("bitpack/pack_100k", |bench| {
        bench.iter(|| PackedIntVec::from_slice(black_box(&values)).len())
    });
    c.bench_function("bitpack/random_get", |bench| {
        let mut i = 0usize;
        bench.iter(|| {
            i = (i * 31 + 17) % values.len();
            black_box(packed.get(i))
        })
    });
}

fn make_segment(rows: usize, sorted: bool, inverted: bool) -> ImmutableSegment {
    let schema = Schema::new(
        "t",
        vec![
            FieldSpec::dimension("k", DataType::Long),
            FieldSpec::dimension("c", DataType::String),
            FieldSpec::metric("m", DataType::Long),
        ],
    )
    .unwrap();
    let mut cfg = BuilderConfig::new("seg", "t");
    if sorted {
        cfg = cfg.with_sort_columns(&["k"]);
    }
    if inverted {
        cfg = cfg.with_inverted_columns(&["c"]);
    }
    let mut rng = StdRng::seed_from_u64(5);
    let mut b = SegmentBuilder::new(schema, cfg).unwrap();
    for _ in 0..rows {
        b.add(Record::new(vec![
            Value::Long(rng.gen_range(0..1_000)),
            Value::String(format!("c{}", rng.gen_range(0..50))),
            Value::Long(rng.gen_range(0..10_000)),
        ]))
        .unwrap();
    }
    b.build().unwrap()
}

fn bench_segment(c: &mut Criterion) {
    c.bench_function("segment/build_50k_rows", |bench| {
        bench.iter(|| make_segment(50_000, true, true).num_docs())
    });

    let plain = make_segment(100_000, false, false);
    let sorted = make_segment(100_000, true, false);
    let inverted = make_segment(100_000, false, true);
    let eq_k = pinot_pql::parse("SELECT COUNT(*) FROM t WHERE k = 500")
        .unwrap()
        .filter
        .unwrap();
    let eq_c = pinot_pql::parse("SELECT COUNT(*) FROM t WHERE c = 'c7'")
        .unwrap()
        .filter
        .unwrap();

    c.bench_function("filter/scan_eq", |bench| {
        bench.iter(|| {
            let mut stats = ExecutionStats::default();
            evaluate_filter(black_box(&plain), Some(&eq_k), &mut stats)
                .unwrap()
                .count()
        })
    });
    c.bench_function("filter/sorted_range_eq", |bench| {
        bench.iter(|| {
            let mut stats = ExecutionStats::default();
            evaluate_filter(black_box(&sorted), Some(&eq_k), &mut stats)
                .unwrap()
                .count()
        })
    });
    c.bench_function("filter/inverted_bitmap_eq", |bench| {
        bench.iter(|| {
            let mut stats = ExecutionStats::default();
            evaluate_filter(black_box(&inverted), Some(&eq_c), &mut stats)
                .unwrap()
                .count()
        })
    });
    c.bench_function("segment/persist_round_trip", |bench| {
        let blob = pinot_segment::persist::serialize(&inverted);
        bench.iter(|| {
            pinot_segment::persist::deserialize(black_box(&blob))
                .unwrap()
                .num_docs()
        })
    });
}

fn build_tree(seg: &ImmutableSegment) -> StarTree {
    build_star_tree(
        seg,
        &StarTreeConfig {
            dimensions: vec!["k".into(), "c".into()],
            metrics: vec!["m".into()],
            max_leaf_records: 100,
            skip_star_dimensions: vec![],
        },
    )
    .unwrap()
}

fn bench_startree(c: &mut Criterion) {
    let seg = make_segment(100_000, false, false);
    c.bench_function("startree/build_100k", |bench| {
        bench.iter(|| build_tree(black_box(&seg)).num_records())
    });

    let tree = build_tree(&seg);
    let k_id = seg
        .column("k")
        .unwrap()
        .dictionary
        .id_of(&Value::Long(500))
        .unwrap();
    let filters = vec![DimFilter::In(vec![k_id]), DimFilter::Any];
    c.bench_function("startree/filtered_sum", |bench| {
        bench.iter(|| tree.execute(black_box(&filters), &[]).groups.len())
    });
    c.bench_function("startree/group_by_unfiltered", |bench| {
        let any = vec![DimFilter::Any, DimFilter::Any];
        bench.iter(|| tree.execute(black_box(&any), &[1]).groups.len())
    });
}

fn bench_pql(c: &mut Criterion) {
    let q = "SELECT campaignId, sum(click) FROM TableA WHERE accountId = 121011 \
             AND 'day' >= 15949 AND country IN ('us','de','fr') GROUP BY campaignId TOP 20";
    c.bench_function("pql/parse", |bench| {
        bench.iter(|| pinot_pql::parse(black_box(q)).unwrap().group_by.len())
    });
}

fn bench_routing(c: &mut Criterion) {
    use pinot_broker::routing::{filter_routing_tables, generate_routing_table, SegmentReplicas};
    let mut replicas = SegmentReplicas::new();
    for i in 0..1_000 {
        let servers = (0..3)
            .map(|r| InstanceId::server((i + r * 7) % 50 + 1))
            .collect();
        replicas.insert(format!("seg_{i:05}"), servers);
    }
    let mut rng = StdRng::seed_from_u64(9);
    c.bench_function("routing/generate_1k_segments_50_servers", |bench| {
        bench.iter(|| generate_routing_table(black_box(&replicas), 8, &mut rng).len())
    });
    c.bench_function("routing/filter_20_candidates", |bench| {
        bench.iter(|| filter_routing_tables(black_box(&replicas), 8, 5, 20, &mut rng).len())
    });
}

criterion_group!(
    benches,
    bench_bitmaps,
    bench_bitpack,
    bench_segment,
    bench_startree,
    bench_pql,
    bench_routing
);
criterion_main!(benches);
