//! The Pinot broker (§3.2–3.3, §4.4).
//!
//! Brokers accept PQL over a client-facing API, parse and optimize it, pick
//! a routing table at random, scatter per-server requests, gather partial
//! results, merge them, and return the final response. Errors or timeouts
//! from individual servers mark the response *partial* instead of failing
//! it (§3.3.3 step 7).
//!
//! Hybrid tables pair an OFFLINE and a REALTIME physical table sharing a
//! time column: the broker computes the *time boundary* (the newest time
//! covered by offline data) and rewrites one logical query into two
//! physical ones — offline strictly before the boundary, realtime at or
//! after it (Figure 6) — then merges both results.

pub mod routing;
pub mod survival;

use crossbeam::channel::{bounded, RecvTimeoutError};
use parking_lot::{Mutex, RwLock};
use pinot_cluster::ClusterManager;
use pinot_common::config::{RoutingStrategy, TableConfig};
use pinot_common::ids::{InstanceId, SegmentName};
use pinot_common::json::Json;
use pinot_common::profile::{ProfileNode, QueryProfile};
use pinot_common::query::ServerContribution;
use pinot_common::query::{ExecutionStats, QueryRequest, QueryResponse};
use pinot_common::{DataType, PinotError, Result, RetryPolicy, Value};
use pinot_exec::segment_exec::IntermediateResult;
use pinot_exec::{
    collected_profiles, finalize, merge_intermediate, prune_default, ColumnRange, Prunable,
    PruneEvaluator, ZoneMapStats,
};
use pinot_obs::{LatencyDigest, Obs, QueryLogEntry, QueryTrace};
use pinot_pql::{CmpOp, Predicate, Query};
use pinot_taskpool::TaskPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use routing::{RoutingTable, SegmentReplicas};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};
pub use survival::AdmissionLimits;
use survival::{AdmissionController, Lookup, ResultCache};

/// Samples of per-server scatter latency retained for hedge-delay
/// estimation, and how many a server needs before its estimate counts.
const HEDGE_LATENCY_WINDOW: usize = 64;
const HEDGE_MIN_SAMPLES: usize = 8;
/// Hedge delay = max(floor, `HEDGE_DELAY_FACTOR` × healthy p99).
const HEDGE_DELAY_FACTOR: f64 = 1.5;
const HEDGE_FLOOR_MS_DEFAULT: u64 = 5;

/// One server's share of a scattered query.
#[derive(Clone)]
pub struct RoutedRequest {
    pub table: String,
    pub query: Arc<Query>,
    pub segments: Vec<String>,
    pub tenant: String,
    /// The broker's scatter deadline. Servers check it between segments and
    /// abandon work nobody will wait for; failover retries budget their
    /// backoff against it.
    pub deadline: Option<Instant>,
    /// Broker-assigned query id (seeded, deterministic per broker); the
    /// server echoes it in its partial's stats so spans, logs, and
    /// profiles from every server join on one key.
    pub query_id: u64,
    /// Ask the server to collect a per-operator profile tree alongside the
    /// partial result. Never changes the result payload or stats.
    pub profile: bool,
    /// With `profile`, also collect the per-conjunct access-path report
    /// for `EXPLAIN ANALYZE`.
    pub analyze: bool,
}

/// Per-query context threaded from the client request through scatter,
/// failover, and merge.
#[derive(Clone, Copy)]
struct QueryCtx {
    query_id: u64,
    profile: bool,
    analyze: bool,
}

/// One message on the gather channel. `origin` names the slice (the server
/// the routing table assigned it to); `actual` names whoever executed —
/// different from `origin` only for hedge replies, letting the gather
/// dedupe by slice so the losing contender never double-counts.
struct ScatterReply {
    origin: InstanceId,
    actual: InstanceId,
    segments: Vec<String>,
    result: Result<IntermediateResult>,
}

/// Gather-side state for one unanswered slice.
struct PendingSlice {
    segments: Vec<String>,
    hedged: bool,
}

/// What brokers need from a server. Implemented by an adapter around
/// `pinot_server::Server` in the integration crate (`pinot-core`), keeping
/// the dependency graph acyclic — in production this boundary is the
/// broker→server RPC.
pub trait SegmentQueryService: Send + Sync {
    fn execute(&self, req: &RoutedRequest) -> Result<IntermediateResult>;
}

struct CachedRouting {
    tables: Vec<RoutingTable>,
    /// The full segment → replicas view the tables were generated from;
    /// consulted by replica failover when a routed server fails mid-query.
    replicas: SegmentReplicas,
    /// For partitioned tables: partition id → (segment → replicas).
    partitions: Option<PartitionIndex>,
}

struct PartitionIndex {
    column: String,
    num_partitions: u32,
    by_partition: HashMap<u32, SegmentReplicas>,
}

/// One Pinot broker instance.
pub struct Broker {
    id: InstanceId,
    cluster: ClusterManager,
    executors: RwLock<HashMap<InstanceId, Arc<dyn SegmentQueryService>>>,
    routing_cache: Mutex<HashMap<String, CachedRouting>>,
    /// Parsed table configs keyed by metastore version, so the query hot
    /// path doesn't re-parse JSON (configs change rarely, §5.2).
    config_cache: Mutex<HashMap<String, (u64, TableConfig)>>,
    dirty: Arc<Mutex<HashSet<String>>>,
    rng: Mutex<StdRng>,
    obs: Arc<Obs>,
    /// Backoff schedule for replica-failover retries; seeded per broker so
    /// delays are deterministic in tests yet de-synchronized across brokers.
    retry: RetryPolicy,
    /// Scatter workers run as detached pool tasks instead of raw threads:
    /// a worker outliving the scatter deadline sends into a disconnected
    /// channel, and a panicking server surfaces as a retriable error
    /// instead of a forever-pending slot.
    pool: RwLock<Arc<TaskPool>>,
    /// Broker-side zone-map pruning override; `None` defers to
    /// `PINOT_EXEC_PRUNE` (default on).
    exec_prune: RwLock<Option<bool>>,
    /// Segment zone maps parsed from metastore metadata, keyed by path and
    /// invalidated by metastore version (segment metadata is written once
    /// but re-uploads bump the version).
    zonemap_cache: Mutex<HashMap<String, CachedZoneMaps>>,
    /// Time column per physical table, so the hot path doesn't re-parse the
    /// schema JSON just to classify time-level prunes.
    time_column_cache: Mutex<HashMap<String, Option<String>>>,
    /// Monotonic per-broker query sequence; mixed with `query_seed` into
    /// the deterministic query ids (separate from `rng` so id assignment
    /// never perturbs routing-table selection).
    query_seq: std::sync::atomic::AtomicU64,
    /// Per-broker seed for query-id generation.
    query_seed: u64,
    /// Per-server streaming latency estimates (observed scatter-reply wall
    /// clock) feeding the hedged-scatter delay.
    latency: LatencyDigest,
    /// Hedged-scatter override; `None` defers to `PINOT_EXEC_HEDGE`
    /// (default on).
    exec_hedge: RwLock<Option<bool>>,
    /// Minimum hedge delay in ms — hedging never fires earlier than this
    /// even when the healthy p99 estimate is tiny.
    hedge_floor_ms: std::sync::atomic::AtomicU64,
    /// Admission-control override; `None` defers to `PINOT_EXEC_ADMISSION`
    /// (default on, with limits generous enough to never shed untuned).
    exec_admission: RwLock<Option<bool>>,
    admission: Arc<AdmissionController>,
    /// Result-cache override; `None` defers to `PINOT_EXEC_RESULT_CACHE`
    /// (default off).
    exec_cache: RwLock<Option<bool>>,
    cache: Arc<ResultCache>,
    /// Per-physical-table generation counters bumped on every external
    /// view change (segment commit/upload, server death) by the same
    /// subscription that feeds `dirty`. Folded into cache keys, so a
    /// commit implicitly invalidates every cached result for that table.
    cache_gens: Arc<Mutex<HashMap<String, u64>>>,
}

/// One segment's published zone maps, pinned to the metastore version of
/// the metadata they were parsed from, plus its doc count.
struct CachedZoneMaps {
    version: u64,
    zone_maps: Arc<ZoneMapStats>,
    num_docs: u64,
}

/// Segments the broker excluded before scatter — partition routing plus
/// zone-map pruning — folded into the response stats so
/// `num_segments_queried == num_segments_processed + num_segments_pruned`
/// holds end to end.
#[derive(Default)]
struct BrokerSkips {
    /// Broker zone-map exclusions (`prune_plan`).
    segments: u64,
    docs: u64,
    /// Partition-routing exclusions.
    partition_segments: u64,
    partition_docs: u64,
}

impl BrokerSkips {
    fn apply(&self, stats: &mut ExecutionStats) {
        stats.num_segments_queried += self.segments + self.partition_segments;
        stats.num_segments_pruned += self.segments + self.partition_segments;
        stats.total_docs += self.docs + self.partition_docs;
    }

    /// Summary profile nodes attributing the broker-level skips, one per
    /// prune level so the attribution survives into the merged profile.
    fn profile_nodes(&self) -> Vec<ProfileNode> {
        let mut out = Vec::new();
        for (prune, segments, docs) in [
            ("partition", self.partition_segments, self.partition_docs),
            ("broker", self.segments, self.docs),
        ] {
            if segments > 0 {
                let mut n = ProfileNode::summary("segments_summary");
                n.prune = Some(prune);
                n.segments = segments;
                n.docs_in = docs;
                out.push(n);
            }
        }
        out
    }
}

impl Broker {
    pub fn new(n: usize, cluster: ClusterManager) -> Arc<Broker> {
        Broker::with_obs(n, cluster, Obs::shared())
    }

    /// Like [`Broker::new`] but sharing a cluster-wide observability sink.
    pub fn with_obs(n: usize, cluster: ClusterManager, obs: Arc<Obs>) -> Arc<Broker> {
        let dirty: Arc<Mutex<HashSet<String>>> = Arc::new(Mutex::new(HashSet::new()));
        let cache_gens: Arc<Mutex<HashMap<String, u64>>> = Arc::new(Mutex::new(HashMap::new()));
        let dirty_sub = Arc::clone(&dirty);
        let gens_sub = Arc::clone(&cache_gens);
        cluster.subscribe_view(move |change| {
            dirty_sub.lock().insert(change.table.clone());
            *gens_sub.lock().entry(change.table.clone()).or_insert(0) += 1;
        });
        Arc::new(Broker {
            id: InstanceId::broker(n),
            cluster,
            executors: RwLock::new(HashMap::new()),
            routing_cache: Mutex::new(HashMap::new()),
            config_cache: Mutex::new(HashMap::new()),
            dirty,
            rng: Mutex::new(StdRng::seed_from_u64(0x9e3779b97f4a7c15 ^ n as u64)),
            pool: RwLock::new(Arc::new(TaskPool::from_env(Some(Arc::clone(&obs))))),
            obs,
            retry: RetryPolicy::default().with_seed(n as u64),
            exec_prune: RwLock::new(None),
            zonemap_cache: Mutex::new(HashMap::new()),
            time_column_cache: Mutex::new(HashMap::new()),
            query_seq: std::sync::atomic::AtomicU64::new(0),
            query_seed: 0x9e3779b97f4a7c15 ^ (n as u64).rotate_left(32),
            latency: LatencyDigest::new(HEDGE_LATENCY_WINDOW, HEDGE_MIN_SAMPLES),
            exec_hedge: RwLock::new(None),
            hedge_floor_ms: std::sync::atomic::AtomicU64::new(HEDGE_FLOOR_MS_DEFAULT),
            exec_admission: RwLock::new(None),
            admission: Arc::new(AdmissionController::default()),
            exec_cache: RwLock::new(None),
            cache: Arc::new(ResultCache::new()),
            cache_gens,
        })
    }

    /// Next deterministic query id: splitmix64 over (per-broker seed,
    /// sequence number). Never 0 — stats reserve 0 for "no id".
    fn next_query_id(&self) -> u64 {
        let n = self
            .query_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        let mut z = self
            .query_seed
            .wrapping_add(n.wrapping_mul(0x9e3779b97f4a7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)).max(1)
    }

    /// Override broker-side zone-map pruning (`None` = `PINOT_EXEC_PRUNE`).
    pub fn set_exec_prune(&self, prune: Option<bool>) {
        *self.exec_prune.write() = prune;
    }

    /// Override hedged scatter (`None` = `PINOT_EXEC_HEDGE`, default on).
    pub fn set_exec_hedge(&self, hedge: Option<bool>) {
        *self.exec_hedge.write() = hedge;
    }

    /// Floor on the hedge delay in milliseconds (default 5). Tests lower
    /// it to make hedging fire fast under the seeded clock.
    pub fn set_hedge_floor_ms(&self, ms: u64) {
        self.hedge_floor_ms
            .store(ms.max(1), std::sync::atomic::Ordering::Relaxed);
    }

    /// Override admission control (`None` = `PINOT_EXEC_ADMISSION`,
    /// default on).
    pub fn set_admission(&self, admission: Option<bool>) {
        *self.exec_admission.write() = admission;
    }

    /// Tighten or relax the per-tenant concurrency / wait-queue limits.
    pub fn set_admission_limits(&self, limits: AdmissionLimits) {
        self.admission.set_limits(limits);
    }

    /// Weight multiplier for one tenant's concurrency slots (default 1).
    pub fn set_tenant_weight(&self, tenant: &str, weight: u32) {
        self.admission.set_weight(tenant, weight);
    }

    /// Override the result cache (`None` = `PINOT_EXEC_RESULT_CACHE`,
    /// default off).
    pub fn set_result_cache(&self, cache: Option<bool>) {
        *self.exec_cache.write() = cache;
    }

    /// Replace the scatter pool (tests and benchmarks pin thread counts).
    pub fn set_task_pool(&self, pool: Arc<TaskPool>) {
        *self.pool.write() = pool;
    }

    pub fn task_pool(&self) -> Arc<TaskPool> {
        Arc::clone(&self.pool.read())
    }

    pub fn id(&self) -> &InstanceId {
        &self.id
    }

    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Register the service endpoint for a server instance.
    pub fn register_server(&self, id: InstanceId, svc: Arc<dyn SegmentQueryService>) {
        self.executors.write().insert(id, svc);
    }

    // ---- client entry point ----

    /// Execute a PQL query (§3.3.3).
    pub fn execute(&self, request: &QueryRequest) -> QueryResponse {
        self.execute_traced(request).0
    }

    /// Execute a PQL query and return the response together with its
    /// [`QueryTrace`]: phase spans (parse, route, scatter, gather, merge),
    /// per-server execution times, and per-segment plan kinds. Phase
    /// durations also feed the broker's `broker.phase.*_ms` histograms, and
    /// the finished query is offered to the slow/partial query log.
    pub fn execute_traced(&self, request: &QueryRequest) -> (QueryResponse, QueryTrace) {
        let started = Instant::now();
        let deadline = started + Duration::from_millis(request.timeout_ms);
        let ctx = QueryCtx {
            query_id: self.next_query_id(),
            profile: request.profile,
            analyze: request.analyze,
        };
        let mut trace = QueryTrace::new(&request.pql);
        let mut response = match self.execute_inner(request, ctx, deadline, &mut trace) {
            Ok(resp) => resp,
            Err(e) => {
                self.obs.metrics.counter_add("broker.query.failed", 1);
                QueryResponse {
                    result: pinot_common::query::QueryResult::Aggregation(Vec::new()),
                    stats: ExecutionStats::default(),
                    partial: true,
                    exceptions: vec![e.to_string()],
                    profile: None,
                }
            }
        };
        response.stats.query_id = ctx.query_id;
        response.stats.time_used_ms = started.elapsed().as_millis() as u64;

        // Fold the merged execution stats into the trace.
        for (seg, kind) in &response.stats.segment_plans {
            trace.add_segment_plan(seg.clone(), kind.clone());
        }
        trace.add_counter("num_docs_scanned", response.stats.num_docs_scanned);
        trace.add_counter(
            "num_segments_processed",
            response.stats.num_segments_processed,
        );
        trace.add_counter("num_segments_pruned", response.stats.num_segments_pruned);
        trace.add_counter("num_servers_queried", response.stats.num_servers_queried);
        trace.add_counter(
            "num_servers_responded",
            response.stats.num_servers_responded,
        );

        let m = &self.obs.metrics;
        for span in &trace.spans {
            match span.name.as_str() {
                "parse" | "route" | "scatter" | "gather" | "merge" => {
                    m.observe_ms(&format!("broker.phase.{}_ms", span.name), span.duration_ms);
                }
                s if s.starts_with("server:") => {
                    m.observe_ms("broker.phase.server_execute_ms", span.duration_ms);
                }
                _ => {}
            }
        }
        m.observe_ms(
            "broker.query.total_ms",
            started.elapsed().as_secs_f64() * 1e3,
        );
        m.counter_add("broker.query.total", 1);
        if response.partial {
            m.counter_add("broker.query.partial", 1);
        }

        if self.obs.query_log.would_keep(
            response.stats.time_used_ms,
            response.partial,
            response.exceptions.len(),
        ) {
            self.obs.query_log.observe(QueryLogEntry {
                query: request.pql.clone(),
                query_id: ctx.query_id,
                time_used_ms: response.stats.time_used_ms,
                partial: response.partial,
                exception_count: response.exceptions.len(),
                trace: Some(trace.clone()),
                profile: response.profile.clone(),
            });
        }
        (response, trace)
    }

    fn execute_inner(
        &self,
        request: &QueryRequest,
        ctx: QueryCtx,
        deadline: Instant,
        trace: &mut QueryTrace,
    ) -> Result<QueryResponse> {
        let query = Arc::new(trace.span("parse", |_| pinot_pql::parse(&request.pql))?);
        let tenant = request.tenant.clone().unwrap_or_else(|| {
            self.table_config_any(&query.table)
                .map(|c| c.tenant)
                .unwrap_or_else(|_| "DefaultTenant".to_string())
        });

        // Resolve the physical tables behind the logical name. A fully
        // qualified name targets that one physical table; otherwise the
        // logical name maps to OFFLINE, REALTIME, or both (hybrid).
        let tables = self.cluster.tables();
        let physical: Vec<String> = if tables.contains(&query.table) {
            vec![query.table.clone()]
        } else {
            let mut v = Vec::new();
            for candidate in [
                format!("{}_OFFLINE", query.table),
                format!("{}_REALTIME", query.table),
            ] {
                if tables.contains(&candidate) {
                    v.push(candidate);
                }
            }
            if v.is_empty() {
                return Err(PinotError::Metadata(format!(
                    "unknown table {:?}",
                    query.table
                )));
            }
            v
        };

        // Result cache: only pure-offline resolutions are cacheable — a
        // consuming realtime segment grows without any view change, so a
        // cached realtime answer would silently go stale between commits.
        let cache_on = (*self.exec_cache.read()).unwrap_or_else(survival::result_cache_default);
        let cacheable = cache_on && physical.iter().all(|t| !t.ends_with("_REALTIME"));
        if !cacheable {
            return self.execute_admitted(&physical, &query, &tenant, ctx, deadline, trace);
        }
        let key = self.cache_key(&physical, &query);
        match self.cache.lookup(&key) {
            Lookup::Hit(resp) => {
                self.obs.metrics.counter_add("broker.cache_hit", 1);
                Ok(self.cached_response(&resp, ctx))
            }
            Lookup::Coalesce(flight) => {
                // Identical query already executing: ride its answer. This
                // needs no admission slot — degrading gracefully means
                // cached-servable queries keep flowing while scatter sheds.
                self.obs.metrics.counter_add("broker.cache_coalesced", 1);
                match flight.wait(deadline) {
                    Some(resp) => Ok(self.cached_response(&resp, ctx)),
                    // Leader failed or our deadline passed first: execute
                    // for ourselves without re-registering as leader.
                    None => self.execute_admitted(&physical, &query, &tenant, ctx, deadline, trace),
                }
            }
            Lookup::Lead(guard) => {
                self.obs.metrics.counter_add("broker.cache_miss", 1);
                let outcome =
                    self.execute_admitted(&physical, &query, &tenant, ctx, deadline, trace);
                match &outcome {
                    // Only complete, exception-free, unprofiled responses
                    // are cached: a partial payload must never be replayed
                    // as authoritative, and a stored profile would describe
                    // some other query's execution.
                    Ok(resp) if !resp.partial && resp.exceptions.is_empty() && !ctx.profile => {
                        guard.complete(Some(Arc::new(resp.clone())));
                    }
                    _ => guard.complete(None),
                }
                outcome
            }
        }
    }

    /// Cache key: sorted `table@generation` tokens plus the normalized
    /// query text. Any view change for a table bumps its generation, so
    /// results cached before a segment commit can never be served after it.
    fn cache_key(&self, physical: &[String], query: &Query) -> String {
        let gens = self.cache_gens.lock();
        let mut parts: Vec<String> = physical
            .iter()
            .map(|t| format!("{t}@{}", gens.get(t).copied().unwrap_or(0)))
            .collect();
        drop(gens);
        parts.sort_unstable();
        format!("{}|{}", parts.join(","), query.normalized())
    }

    /// Clone a cached response for one requester: flag it as served from
    /// cache and, if profiling was requested, attach a synthetic broker
    /// profile naming the cache hit (cached entries store no profile).
    fn cached_response(&self, resp: &Arc<QueryResponse>, ctx: QueryCtx) -> QueryResponse {
        let mut out = QueryResponse::clone(resp);
        out.stats.served_from_cache = true;
        out.profile = ctx.profile.then(|| {
            let mut root = ProfileNode::named("broker", self.id.to_string());
            root.children
                .push(ProfileNode::named("result_cache", "hit"));
            QueryProfile {
                query_id: ctx.query_id,
                root,
            }
        });
        out
    }

    /// Acquire an admission slot (unless admission control is off), then
    /// dispatch to the physical table(s). The permit is held across both
    /// sides of a hybrid query — one logical query, one concurrency slot.
    fn execute_admitted(
        &self,
        physical: &[String],
        query: &Arc<Query>,
        tenant: &str,
        ctx: QueryCtx,
        deadline: Instant,
        trace: &mut QueryTrace,
    ) -> Result<QueryResponse> {
        let admission_on =
            (*self.exec_admission.read()).unwrap_or_else(survival::admission_default);
        let _permit = if admission_on {
            let permit = self
                .admission
                .admit(tenant, deadline, || {
                    self.obs.metrics.counter_add("broker.admission_queued", 1);
                })
                .inspect_err(|_| {
                    self.obs.metrics.counter_add("broker.admission_shed", 1);
                })?;
            Some(permit)
        } else {
            None
        };
        match physical {
            [table] => trace.span(format!("physical:{table}"), |t| {
                self.execute_physical(table, query, tenant, ctx, deadline, None, t)
            }),
            [offline, realtime] => {
                self.execute_hybrid(offline, realtime, query, tenant, ctx, deadline, trace)
            }
            _ => Err(PinotError::Internal(format!(
                "unexpected physical resolution {physical:?}"
            ))),
        }
    }

    /// Hybrid rewrite (Figure 6): offline serves `time < boundary`,
    /// realtime serves `time >= boundary`.
    #[allow(clippy::too_many_arguments)]
    fn execute_hybrid(
        &self,
        offline: &str,
        realtime: &str,
        query: &Arc<Query>,
        tenant: &str,
        ctx: QueryCtx,
        deadline: Instant,
        trace: &mut QueryTrace,
    ) -> Result<QueryResponse> {
        let time_column = self
            .table_time_column(offline)?
            .ok_or_else(|| PinotError::Metadata(format!("{offline} has no time column")))?;
        let boundary = trace.span("time_boundary", |_| self.offline_time_boundary(offline));

        let (offline_query, realtime_query) = match boundary {
            None => (None, Some(Arc::clone(query))), // no offline data yet
            Some(b) => {
                let off = add_conjunct(
                    query,
                    Predicate::Cmp {
                        column: time_column.clone(),
                        op: CmpOp::Lt,
                        value: Value::Long(b),
                    },
                );
                let rt = add_conjunct(
                    query,
                    Predicate::Cmp {
                        column: time_column.clone(),
                        op: CmpOp::Ge,
                        value: Value::Long(b),
                    },
                );
                (Some(Arc::new(off)), Some(Arc::new(rt)))
            }
        };

        let mut responses = Vec::new();
        if let Some(q) = offline_query {
            responses.push(trace.span(format!("physical:{offline}"), |t| {
                self.execute_physical(offline, &q, tenant, ctx, deadline, Some(query), t)
            })?);
        }
        if let Some(q) = realtime_query {
            responses.push(trace.span(format!("physical:{realtime}"), |t| {
                self.execute_physical(realtime, &q, tenant, ctx, deadline, Some(query), t)
            })?);
        }
        // Merge the per-side responses.
        let mut iter = responses.into_iter();
        let mut first = iter.next().expect("at least one side");
        for other in iter {
            first.partial |= other.partial;
            first.exceptions.extend(other.exceptions);
            first.stats.merge(&other.stats);
            // Fold the realtime side's broker tree into the offline side's:
            // one cluster-wide profile per logical query.
            first.profile = match (first.profile.take(), other.profile) {
                (Some(mut a), Some(b)) => {
                    a.root.fold(&b.root);
                    Some(a)
                }
                (a, b) => a.or(b),
            };
            first.result = merge_results(first.result, other.result, query)?;
        }
        Ok(first)
    }

    /// Scatter a query over one physical table and gather (§3.3.3).
    /// `finalize_as` lets hybrid execution finalize with the original query.
    #[allow(clippy::too_many_arguments)]
    fn execute_physical(
        &self,
        table: &str,
        query: &Arc<Query>,
        tenant: &str,
        ctx: QueryCtx,
        deadline: Instant,
        finalize_as: Option<&Arc<Query>>,
        trace: &mut QueryTrace,
    ) -> Result<QueryResponse> {
        let phys_started = Instant::now();
        let (plan, partition_skipped) = trace.span("route", |_| self.route(table, query))?;
        let replicas = self.segment_replicas(table);

        // Broker-level pruning: partition-routing exclusions become visible
        // in the stats, and table-level zone maps (from segment metadata in
        // the metastore) drop segments — and whole servers — that cannot
        // match the filter before any RPC is issued.
        let mut skips = BrokerSkips::default();
        if !partition_skipped.is_empty() {
            self.obs
                .metrics
                .counter_add("prune.partition_segments", partition_skipped.len() as u64);
            for seg in &partition_skipped {
                skips.partition_segments += 1;
                skips.partition_docs += self
                    .segment_zone_maps(table, seg)
                    .map(|(_, docs)| docs)
                    .unwrap_or(0);
            }
        }
        let prune_on = (*self.exec_prune.read()).unwrap_or_else(prune_default);
        let plan = if prune_on {
            self.prune_plan(table, query, plan, &mut skips)
        } else {
            plan
        };

        let num_servers = plan.len() as u64;
        self.obs
            .metrics
            .observe_ms("broker.routing.fanout", num_servers as f64);

        // Fast path: a single-server plan (partition-aware routing's whole
        // point, §4.4) runs inline — no scatter thread, no channel. This is
        // what keeps the partitioned latency curve flat as QPS grows.
        if plan.len() == 1 {
            self.obs
                .metrics
                .counter_add("broker.routing.single_server_fastpath", 1);
            let (server, segments) = plan.into_iter().next().expect("len checked");
            let req = RoutedRequest {
                table: table.to_string(),
                query: Arc::clone(query),
                segments: segments.clone(),
                tenant: tenant.to_string(),
                deadline: Some(deadline),
                query_id: ctx.query_id,
                profile: ctx.profile,
                analyze: ctx.analyze,
            };
            let final_query = finalize_as.unwrap_or(query);
            let mut acc = IntermediateResult::empty_for(final_query);
            let mut exceptions = Vec::new();
            let mut server_wall_ns: HashMap<String, u64> = HashMap::new();
            let svc = self.executors.read().get(&server).cloned();
            let call_started = Instant::now();
            let outcome = match svc {
                Some(svc) => {
                    trace.span(format!("server:{server}"), |_| guarded_execute(&*svc, &req))
                }
                None => Err(PinotError::Cluster(format!("no endpoint for {server}"))),
            };
            server_wall_ns.insert(server.to_string(), call_started.elapsed().as_nanos() as u64);
            let mut responded = 0u64;
            match outcome {
                Ok(partial) => {
                    responded = 1;
                    self.latency.observe(
                        &server.to_string(),
                        call_started.elapsed().as_secs_f64() * 1e3,
                    );
                    acc.stats.per_server.push(ServerContribution {
                        server: server.to_string(),
                        responded: true,
                        segments_processed: partial.stats.num_segments_processed,
                        docs_scanned: partial.stats.num_docs_scanned,
                        time_ms: partial.stats.time_used_ms,
                        covered_by: Vec::new(),
                    });
                    merge_intermediate(&mut acc, partial)?;
                }
                Err(e) => {
                    let mut failed: HashSet<InstanceId> = HashSet::new();
                    failed.insert(server.clone());
                    self.handle_server_failure(
                        table,
                        query,
                        tenant,
                        ctx,
                        deadline,
                        &server,
                        e,
                        &segments,
                        &replicas,
                        &mut failed,
                        &mut acc,
                        &mut exceptions,
                    )?;
                }
            }
            acc.stats.num_servers_queried = 1;
            acc.stats.num_servers_responded = responded;
            skips.apply(&mut acc.stats);
            coalesce_per_server(&mut acc.stats.per_server);
            let partial = !exceptions.is_empty();
            let profile_nodes = acc.profile.take();
            let stats = acc.stats.clone();
            let result = trace.span("merge", |_| finalize(acc, final_query))?;
            let profile = ctx.profile.then(|| {
                self.broker_profile(
                    ctx,
                    profile_nodes,
                    &skips,
                    &stats,
                    &server_wall_ns,
                    phys_started.elapsed().as_nanos() as u64,
                    trace,
                )
            });
            return Ok(QueryResponse {
                result,
                stats,
                partial,
                exceptions,
                profile,
            });
        }

        // Scatter: one worker per server; results stream into a channel
        // along with the segment list each server was responsible for, so
        // a failure can be re-routed to surviving replicas. Capacity fits
        // every primary plus a potential hedge per slice, so no worker
        // ever blocks on send.
        let (tx, rx) = bounded::<ScatterReply>(plan.len().max(1) * 2);
        let mut pending: BTreeMap<InstanceId, PendingSlice> = BTreeMap::new();
        let scatter_started = Instant::now();
        trace.span("scatter", |_| {
            for (server, segments) in plan {
                pending.insert(
                    server.clone(),
                    PendingSlice {
                        segments: segments.clone(),
                        hedged: false,
                    },
                );
                let Some(svc) = self.executors.read().get(&server).cloned() else {
                    // Routing raced with a server death; report it as a failure.
                    let _ = tx.send(ScatterReply {
                        origin: server.clone(),
                        actual: server.clone(),
                        segments,
                        result: Err(PinotError::Cluster(format!("no endpoint for {server}"))),
                    });
                    continue;
                };
                let req = RoutedRequest {
                    table: table.to_string(),
                    query: Arc::clone(query),
                    segments: segments.clone(),
                    tenant: tenant.to_string(),
                    deadline: Some(deadline),
                    query_id: ctx.query_id,
                    profile: ctx.profile,
                    analyze: ctx.analyze,
                };
                let tx = tx.clone();
                let server_id = server.clone();
                let task_deadline = pinot_taskpool::Deadline::at(Some(deadline));
                self.task_pool()
                    .spawn_detached_with_deadline(&task_deadline, move || {
                        let result = guarded_execute(&*svc, &req);
                        // Past the scatter deadline the receiver is gone and
                        // this send is a harmless no-op; the late partial is
                        // dropped rather than written into freed state.
                        let _ = tx.send(ScatterReply {
                            origin: server_id.clone(),
                            actual: server_id,
                            segments,
                            result,
                        });
                    });
            }
        });
        // When hedging can fire we keep one sender until hedges are issued
        // (they need it); without it the channel disconnects as soon as all
        // primaries finish, exactly as before hedging existed.
        let hedge_on = (*self.exec_hedge.read()).unwrap_or_else(survival::hedge_default);
        let hedge_at: Option<Instant> = if hedge_on && !pending.is_empty() {
            self.latency.healthy_quantile(0.99).map(|p99| {
                let floor = self
                    .hedge_floor_ms
                    .load(std::sync::atomic::Ordering::Relaxed) as f64;
                scatter_started
                    + Duration::from_secs_f64((p99 * HEDGE_DELAY_FACTOR).max(floor) / 1e3)
            })
        } else {
            None
        };
        let mut hedge_tx = hedge_at.map(|_| tx.clone());
        drop(tx);

        // Gather until every slice is answered or the deadline passes.
        // Failed servers are recovered inline via surviving replicas while
        // the remaining workers keep running; slices still outstanding at
        // their hedge time are speculatively re-issued to a replica, and
        // the first answer per slice wins.
        let final_query = finalize_as.unwrap_or(query);
        let mut acc = IntermediateResult::empty_for(final_query);
        let mut exceptions = Vec::new();
        let mut responded = 0u64;
        let mut hedges_issued = 0u64;
        let mut hedges_won = 0u64;
        let mut failed: HashSet<InstanceId> = HashSet::new();
        let mut server_wall_ns: HashMap<String, u64> = HashMap::new();
        trace.span("gather", |trace| -> Result<()> {
            while !pending.is_empty() {
                let now = Instant::now();
                if now >= deadline {
                    self.obs.metrics.counter_add("broker.scatter.timeout", 1);
                    exceptions.push(format!(
                        "timeout waiting for {} server response(s)",
                        pending.len()
                    ));
                    break;
                }
                // Hedge time: every still-pending slice gets one chance at
                // a replica re-issue (first answer per slice wins).
                if let (Some(h), Some(htx)) = (hedge_at, &hedge_tx) {
                    if now >= h {
                        let task_deadline = pinot_taskpool::Deadline::at(Some(deadline));
                        for (origin, slice) in pending.iter_mut() {
                            slice.hedged = true;
                            let Some(target) =
                                self.hedge_target(origin, &slice.segments, &replicas, &failed)
                            else {
                                continue;
                            };
                            let Some(svc) = self.executors.read().get(&target).cloned() else {
                                continue;
                            };
                            hedges_issued += 1;
                            self.obs.metrics.counter_add("broker.hedge_issued", 1);
                            let req = RoutedRequest {
                                table: table.to_string(),
                                query: Arc::clone(query),
                                segments: slice.segments.clone(),
                                tenant: tenant.to_string(),
                                deadline: Some(deadline),
                                query_id: ctx.query_id,
                                profile: ctx.profile,
                                analyze: ctx.analyze,
                            };
                            let tx = htx.clone();
                            let origin = origin.clone();
                            let segments = slice.segments.clone();
                            self.task_pool().spawn_detached_with_deadline(
                                &task_deadline,
                                move || {
                                    let result = guarded_execute(&*svc, &req);
                                    let _ = tx.send(ScatterReply {
                                        origin,
                                        actual: target,
                                        segments,
                                        result,
                                    });
                                },
                            );
                        }
                        hedge_tx = None;
                    }
                }
                let wake = match (hedge_at, &hedge_tx) {
                    (Some(h), Some(_)) if h < deadline => h.max(now),
                    _ => deadline,
                };
                match rx.recv_timeout(wake.saturating_duration_since(now)) {
                    Ok(reply) => {
                        let is_hedge = reply.actual != reply.origin;
                        if !pending.contains_key(&reply.origin) {
                            // The slice was already answered by the other
                            // contender — this is the discarded loser. It
                            // must not touch acc/stats (satellite: no
                            // double-counting at gather).
                            if reply.result.is_ok() {
                                self.obs.metrics.counter_add("broker.hedge_wasted", 1);
                            }
                            continue;
                        }
                        match reply.result {
                            Ok(partial) => {
                                pending.remove(&reply.origin);
                                responded += 1;
                                let wall = scatter_started.elapsed();
                                self.latency
                                    .observe(&reply.actual.to_string(), wall.as_secs_f64() * 1e3);
                                server_wall_ns
                                    .insert(reply.actual.to_string(), wall.as_nanos() as u64);
                                let server_span = trace.record_span_ms(
                                    format!("server:{}", reply.actual),
                                    partial.stats.time_used_ms as f64,
                                );
                                // Nest the server's slowest segments under
                                // its span, via the explicit parent token so
                                // depths stay right however the gather
                                // interleaves.
                                if let Some(root) = &partial.profile {
                                    for seg in
                                        root.children.iter().filter(|c| c.operator == "segment")
                                    {
                                        if let Some(name) = &seg.name {
                                            trace.record_span_under(
                                                Some(server_span),
                                                format!("segment:{name}"),
                                                seg.elapsed_ns as f64 / 1e6,
                                            );
                                        }
                                    }
                                }
                                if is_hedge {
                                    hedges_won += 1;
                                    self.obs.metrics.counter_add("broker.hedge_won", 1);
                                    // The straggler shows up as not having
                                    // responded, covered by the hedge target
                                    // — same shape failover uses.
                                    acc.stats.per_server.push(ServerContribution {
                                        server: reply.origin.to_string(),
                                        responded: false,
                                        covered_by: vec![reply.actual.to_string()],
                                        ..Default::default()
                                    });
                                }
                                acc.stats.per_server.push(ServerContribution {
                                    server: reply.actual.to_string(),
                                    responded: true,
                                    segments_processed: partial.stats.num_segments_processed,
                                    docs_scanned: partial.stats.num_docs_scanned,
                                    time_ms: partial.stats.time_used_ms,
                                    covered_by: Vec::new(),
                                });
                                merge_intermediate(&mut acc, partial)?;
                            }
                            Err(e) => {
                                if is_hedge {
                                    // A failed hedge never fails the slice:
                                    // the primary is still running and may
                                    // yet answer (or time out as before).
                                    continue;
                                }
                                pending.remove(&reply.origin);
                                failed.insert(reply.origin.clone());
                                self.handle_server_failure(
                                    table,
                                    query,
                                    tenant,
                                    ctx,
                                    deadline,
                                    &reply.origin,
                                    e,
                                    &reply.segments,
                                    &replicas,
                                    &mut failed,
                                    &mut acc,
                                    &mut exceptions,
                                )?;
                            }
                        }
                    }
                    // Woke at the hedge time (or a spurious early return):
                    // loop back to issue hedges / re-check the deadline.
                    Err(RecvTimeoutError::Timeout) => continue,
                    // Disconnected with replies still outstanding means the
                    // remaining scatter workers were abandoned past the
                    // deadline (their queued tasks dropped the sender) —
                    // the same scatter timeout as the deadline arm.
                    Err(RecvTimeoutError::Disconnected) => {
                        self.obs.metrics.counter_add("broker.scatter.timeout", 1);
                        exceptions.push(format!(
                            "timeout waiting for {} server response(s)",
                            pending.len()
                        ));
                        break;
                    }
                }
            }
            Ok(())
        })?;
        // Servers that never answered before the deadline: record them so a
        // partial response says exactly which servers' data is missing.
        for server in pending.keys() {
            acc.stats.per_server.push(ServerContribution {
                server: server.to_string(),
                ..Default::default()
            });
        }
        acc.stats.hedges_issued = hedges_issued;
        acc.stats.hedges_won = hedges_won;

        acc.stats.num_servers_queried = num_servers;
        acc.stats.num_servers_responded = responded;
        skips.apply(&mut acc.stats);
        coalesce_per_server(&mut acc.stats.per_server);
        let partial = !exceptions.is_empty();
        let profile_nodes = acc.profile.take();
        let stats = acc.stats.clone();
        let result = trace.span("merge", |_| finalize(acc, final_query))?;
        let profile = ctx.profile.then(|| {
            self.broker_profile(
                ctx,
                profile_nodes,
                &skips,
                &stats,
                &server_wall_ns,
                phys_started.elapsed().as_nanos() as u64,
                trace,
            )
        });
        Ok(QueryResponse {
            result,
            stats,
            partial,
            exceptions,
            profile,
        })
    }

    /// Assemble the cluster-wide profile root for one physical-table
    /// scatter: phase timings lifted from the trace, a per-server
    /// network+queue breakdown (broker-observed wall clock minus the
    /// server's own reported time), broker-level prune summaries, and the
    /// servers' trees underneath.
    #[allow(clippy::too_many_arguments)]
    fn broker_profile(
        &self,
        ctx: QueryCtx,
        profile: Option<ProfileNode>,
        skips: &BrokerSkips,
        stats: &ExecutionStats,
        server_wall_ns: &HashMap<String, u64>,
        elapsed_ns: u64,
        trace: &QueryTrace,
    ) -> QueryProfile {
        let mut root = ProfileNode::named("broker", self.id.to_string());
        root.docs_in = stats.total_docs;
        root.docs_out = stats.num_docs_scanned;
        root.elapsed_ns = elapsed_ns;
        for phase in ["scatter", "gather", "merge"] {
            if let Some(span) = trace.spans.iter().rev().find(|s| s.name == phase) {
                let mut p = ProfileNode::new(phase);
                p.elapsed_ns = (span.duration_ms * 1e6) as u64;
                root.children.push(p);
            }
        }
        root.children.extend(skips.profile_nodes());
        if stats.hedges_issued > 0 {
            root.children.push(ProfileNode::named(
                "hedge",
                format!("issued={} won={}", stats.hedges_issued, stats.hedges_won),
            ));
        }
        for server in collected_profiles(profile) {
            if let Some(wall) = server.name.as_deref().and_then(|n| server_wall_ns.get(n)) {
                let mut net =
                    ProfileNode::named("network", server.name.clone().unwrap_or_default());
                net.elapsed_ns = wall.saturating_sub(server.elapsed_ns);
                root.children.push(net);
            }
            root.children.push(server);
        }
        QueryProfile {
            query_id: ctx.query_id,
            root,
        }
    }

    /// Deterministic hedge target for a straggling server's slice: the
    /// first (sorted) live registered replica, other than the origin, that
    /// holds *every* segment of the slice — a hedge re-issues the exact
    /// slice, so a partial holder cannot serve it.
    fn hedge_target(
        &self,
        origin: &InstanceId,
        segments: &[String],
        replicas: &SegmentReplicas,
        failed: &HashSet<InstanceId>,
    ) -> Option<InstanceId> {
        let mut candidates: Option<BTreeSet<InstanceId>> = None;
        for seg in segments {
            let holders: BTreeSet<InstanceId> = replicas.get(seg)?.iter().cloned().collect();
            candidates = Some(match candidates {
                None => holders,
                Some(c) => c.intersection(&holders).cloned().collect(),
            });
        }
        let executors = self.executors.read();
        candidates?
            .into_iter()
            .find(|c| c != origin && !failed.contains(c) && executors.contains_key(c))
    }

    /// One routed server failed. If the error is transient, re-route its
    /// segment list to surviving replicas (deadline permitting); only what
    /// no replica can serve becomes an exception — naming the failed
    /// server — and makes the response partial (§3.3.3 step 7, upgraded
    /// from "any failure is partial" to "only unrecoverable loss is").
    #[allow(clippy::too_many_arguments)]
    fn handle_server_failure(
        &self,
        table: &str,
        query: &Arc<Query>,
        tenant: &str,
        ctx: QueryCtx,
        deadline: Instant,
        server: &InstanceId,
        error: PinotError,
        segments: &[String],
        replicas: &SegmentReplicas,
        failed: &mut HashSet<InstanceId>,
        acc: &mut IntermediateResult,
        exceptions: &mut Vec<String>,
    ) -> Result<()> {
        let outcome = if error.is_retriable() && !segments.is_empty() {
            self.failover_recover(
                table, query, tenant, ctx, deadline, segments, replicas, failed, acc,
            )?
        } else {
            FailoverOutcome {
                covered_by: Vec::new(),
                lost: segments.to_vec(),
            }
        };
        if outcome.lost.is_empty() && !segments.is_empty() {
            self.obs
                .metrics
                .counter_add("broker.scatter.failover_success", 1);
        } else {
            exceptions.push(format!(
                "{server}: {error} ({} of {} segment(s) unrecoverable)",
                outcome.lost.len(),
                segments.len().max(1)
            ));
        }
        acc.stats.per_server.push(ServerContribution {
            server: server.to_string(),
            responded: false,
            covered_by: outcome.covered_by,
            ..Default::default()
        });
        Ok(())
    }

    /// Re-route `segments` to surviving replicas with deadline-budgeted
    /// backoff. Recovered results merge into `acc` (with per-server
    /// contributions for the covering replicas); returns who covered and
    /// which segments no live replica could serve. Replicas that fail
    /// during recovery join `failed` so later failovers skip them too.
    #[allow(clippy::too_many_arguments)]
    fn failover_recover(
        &self,
        table: &str,
        query: &Arc<Query>,
        tenant: &str,
        ctx: QueryCtx,
        deadline: Instant,
        segments: &[String],
        replicas: &SegmentReplicas,
        failed: &mut HashSet<InstanceId>,
        acc: &mut IntermediateResult,
    ) -> Result<FailoverOutcome> {
        let mut remaining: Vec<String> = segments.to_vec();
        let mut covered_by: Vec<String> = Vec::new();
        for attempt in 1..=self.retry.max_attempts {
            // Group what's left by the first surviving replica of each
            // segment (replica lists are sorted, so this is deterministic).
            let mut by_server: BTreeMap<InstanceId, Vec<String>> = BTreeMap::new();
            let mut lost: Vec<String> = Vec::new();
            for seg in &remaining {
                let survivor = replicas
                    .get(seg)
                    .and_then(|rs| rs.iter().find(|r| !failed.contains(*r)));
                match survivor {
                    Some(r) => by_server.entry(r.clone()).or_default().push(seg.clone()),
                    None => lost.push(seg.clone()),
                }
            }
            if by_server.is_empty() {
                return Ok(FailoverOutcome {
                    covered_by,
                    lost: remaining,
                });
            }
            // The backoff must fit in what's left of the query's deadline;
            // if it doesn't, the un-recovered segments are lost.
            let delay = Duration::from_millis(self.retry.delay_ms(attempt));
            if Instant::now() + delay >= deadline {
                return Ok(FailoverOutcome {
                    covered_by,
                    lost: remaining,
                });
            }
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            self.obs.metrics.counter_add("broker.scatter.retry", 1);
            for (replica, segs) in by_server {
                let svc = self.executors.read().get(&replica).cloned();
                let Some(svc) = svc else {
                    failed.insert(replica);
                    continue;
                };
                let req = RoutedRequest {
                    table: table.to_string(),
                    query: Arc::clone(query),
                    segments: segs.clone(),
                    tenant: tenant.to_string(),
                    deadline: Some(deadline),
                    query_id: ctx.query_id,
                    profile: ctx.profile,
                    analyze: ctx.analyze,
                };
                match guarded_execute(&*svc, &req) {
                    Ok(partial) => {
                        acc.stats.per_server.push(ServerContribution {
                            server: replica.to_string(),
                            responded: true,
                            segments_processed: partial.stats.num_segments_processed,
                            docs_scanned: partial.stats.num_docs_scanned,
                            time_ms: partial.stats.time_used_ms,
                            covered_by: Vec::new(),
                        });
                        merge_intermediate(acc, partial)?;
                        covered_by.push(replica.to_string());
                        remaining.retain(|s| !segs.contains(s));
                    }
                    Err(_) => {
                        // The replica is down too; exclude it and let the
                        // next attempt re-group onto whoever is left.
                        failed.insert(replica);
                    }
                }
            }
            if remaining.is_empty() {
                return Ok(FailoverOutcome {
                    covered_by,
                    lost: Vec::new(),
                });
            }
        }
        Ok(FailoverOutcome {
            covered_by,
            lost: remaining,
        })
    }

    // ---- routing ----

    /// Build the per-server segment assignment for one query.
    /// Pick a routing table for the query. The second element names the
    /// segments partition-aware routing excluded, so the caller can fold
    /// them into the response stats as pruned rather than dropping them
    /// invisibly.
    fn route(&self, table: &str, query: &Query) -> Result<(RoutingTable, Vec<String>)> {
        let config = self.table_config_physical(table)?;
        self.refresh_routing_if_dirty(table, &config)?;

        let cache = self.routing_cache.lock();
        let cached = cache
            .get(table)
            .ok_or_else(|| PinotError::Cluster(format!("no routing for {table}")))?;

        // Partition-aware path: equality/IN filter on the partition column
        // restricts to the matching partitions' segments (§4.4).
        if let Some(pidx) = &cached.partitions {
            if let Some(values) = partition_filter_values(query.filter.as_ref(), &pidx.column) {
                self.obs
                    .metrics
                    .counter_add("broker.routing.partition_routed", 1);
                let mut replicas = SegmentReplicas::new();
                for v in values {
                    let p = pinot_common::partition::partition_for_value(&v, pidx.num_partitions);
                    if let Some(segs) = pidx.by_partition.get(&p) {
                        for (seg, servers) in segs {
                            replicas.insert(seg.clone(), servers.clone());
                        }
                    }
                }
                let skipped: Vec<String> = cached
                    .replicas
                    .keys()
                    .filter(|seg| !replicas.contains_key(*seg))
                    .cloned()
                    .collect();
                return Ok((routing::generate_balanced(&replicas), skipped));
            }
        }

        if cached.tables.is_empty() {
            return Ok((RoutingTable::new(), Vec::new()));
        }
        let idx = self.rng.lock().gen_range(0..cached.tables.len());
        Ok((cached.tables[idx].clone(), Vec::new()))
    }

    fn refresh_routing_if_dirty(&self, table: &str, config: &TableConfig) -> Result<()> {
        let needs = {
            let mut dirty = self.dirty.lock();
            let was_dirty = dirty.remove(table);
            was_dirty || !self.routing_cache.lock().contains_key(table)
        };
        if !needs {
            return Ok(());
        }
        self.obs.metrics.counter_add("broker.routing.refresh", 1);
        let view = self.cluster.routable_view(table);
        let replicas = routing::invert_view(&view);

        let tables = match &config.routing {
            RoutingStrategy::Balanced | RoutingStrategy::Partitioned { .. } => {
                vec![routing::generate_balanced(&replicas)]
            }
            RoutingStrategy::LargeCluster {
                target_servers,
                routing_table_count,
                generation_count,
            } => {
                let mut rng = self.rng.lock();
                routing::filter_routing_tables(
                    &replicas,
                    *target_servers,
                    *routing_table_count,
                    *generation_count,
                    &mut *rng,
                )
            }
        };

        let partitions = match &config.routing {
            RoutingStrategy::Partitioned {
                column,
                num_partitions,
            } => Some(self.build_partition_index(table, column, *num_partitions, &replicas)),
            _ => None,
        };

        self.routing_cache.lock().insert(
            table.to_string(),
            CachedRouting {
                tables,
                replicas,
                partitions,
            },
        );
        Ok(())
    }

    /// The replica placement the routing cache was built from — who else
    /// can serve each segment when its routed server fails.
    fn segment_replicas(&self, table: &str) -> SegmentReplicas {
        self.routing_cache
            .lock()
            .get(table)
            .map(|c| c.replicas.clone())
            .unwrap_or_default()
    }

    fn build_partition_index(
        &self,
        table: &str,
        column: &str,
        num_partitions: u32,
        replicas: &SegmentReplicas,
    ) -> PartitionIndex {
        let mut by_partition: HashMap<u32, SegmentReplicas> = HashMap::new();
        for (seg, servers) in replicas {
            let partition = self.segment_partition(table, seg);
            match partition {
                Some(p) => {
                    by_partition
                        .entry(p)
                        .or_default()
                        .insert(seg.clone(), servers.clone());
                }
                None => {
                    // Unknown partition: conservatively include the segment
                    // in every partition's set so no data is missed.
                    for p in 0..num_partitions {
                        by_partition
                            .entry(p)
                            .or_default()
                            .insert(seg.clone(), servers.clone());
                    }
                }
            }
        }
        PartitionIndex {
            column: column.to_string(),
            num_partitions,
            by_partition,
        }
    }

    /// Partition id of a segment: realtime names encode it; otherwise the
    /// segment metadata in the metastore records it.
    fn segment_partition(&self, table: &str, segment: &str) -> Option<u32> {
        if let Some((p, _)) = SegmentName::from_raw(segment).realtime_parts() {
            return Some(p);
        }
        let (text, _) = self
            .cluster
            .metastore()
            .get(&format!("/segments/{table}/{segment}"))?;
        let json = Json::parse(&text).ok()?;
        json.get("partitionId")
            .and_then(Json::as_i64)
            .map(|v| v as u32)
    }

    // ---- broker-level zone-map pruning ----

    /// Drop segments whose metastore zone maps prove the filter cannot
    /// match, and with them any server whose entire share pruned away —
    /// fewer RPCs and a smaller gather. Segments without published zone
    /// maps (consuming, or written by an older controller) pass through
    /// untouched.
    fn prune_plan(
        &self,
        table: &str,
        query: &Query,
        plan: RoutingTable,
        skips: &mut BrokerSkips,
    ) -> RoutingTable {
        if query.filter.is_none() {
            return plan;
        }
        let time_column = self.time_column_cached(table);
        let evaluator = PruneEvaluator::new(time_column);
        let mut out = RoutingTable::new();
        let mut servers_skipped = 0u64;
        for (server, segments) in plan {
            let mut kept = Vec::with_capacity(segments.len());
            for seg in segments {
                let Some((zone_maps, docs)) = self.segment_zone_maps(table, &seg) else {
                    kept.push(seg);
                    continue;
                };
                let outcome = evaluator.evaluate(query.filter.as_ref(), zone_maps.as_ref());
                if outcome.prunable == Prunable::CannotMatch {
                    skips.segments += 1;
                    skips.docs += docs;
                    self.obs.metrics.counter_add("prune.broker_segments", 1);
                    if let Some(level) = outcome.level {
                        self.obs
                            .metrics
                            .counter_add(&format!("prune.{}_segments", level.as_str()), 1);
                    }
                } else {
                    kept.push(seg);
                }
            }
            if kept.is_empty() {
                servers_skipped += 1;
            } else {
                out.insert(server, kept);
            }
        }
        if servers_skipped > 0 {
            self.obs
                .metrics
                .counter_add("prune.broker_servers_skipped", servers_skipped);
        }
        out
    }

    /// Zone maps and doc count a segment's metastore metadata publishes
    /// (written by the controller at upload/commit). Cached by metastore
    /// version so the query hot path doesn't re-parse JSON.
    fn segment_zone_maps(&self, table: &str, segment: &str) -> Option<(Arc<ZoneMapStats>, u64)> {
        let path = format!("/segments/{table}/{segment}");
        let (text, version) = self.cluster.metastore().get(&path)?;
        {
            let cache = self.zonemap_cache.lock();
            if let Some(cached) = cache.get(&path) {
                if cached.version == version {
                    return Some((Arc::clone(&cached.zone_maps), cached.num_docs));
                }
            }
        }
        let json = Json::parse(&text).ok()?;
        let docs = json.get("numDocs").and_then(Json::as_i64).unwrap_or(0) as u64;
        let mut zone_maps = ZoneMapStats::default();
        if let Some(Json::Obj(columns)) = json.get("columns") {
            for (name, col) in columns {
                if let Some(range) = parse_zone_map(col) {
                    zone_maps.columns.insert(name.clone(), range);
                }
            }
        }
        let zone_maps = Arc::new(zone_maps);
        self.zonemap_cache.lock().insert(
            path,
            CachedZoneMaps {
                version,
                zone_maps: Arc::clone(&zone_maps),
                num_docs: docs,
            },
        );
        Some((zone_maps, docs))
    }

    fn time_column_cached(&self, table: &str) -> Option<String> {
        if let Some(cached) = self.time_column_cache.lock().get(table) {
            return cached.clone();
        }
        let time_column = self.table_time_column(table).ok().flatten();
        self.time_column_cache
            .lock()
            .insert(table.to_string(), time_column.clone());
        time_column
    }

    // ---- table metadata helpers ----

    fn table_config_physical(&self, qualified: &str) -> Result<TableConfig> {
        let (text, version) = self
            .cluster
            .metastore()
            .get(&format!("/configs/{qualified}"))
            .ok_or_else(|| PinotError::Metadata(format!("no config for {qualified}")))?;
        {
            let cache = self.config_cache.lock();
            if let Some((v, cfg)) = cache.get(qualified) {
                if *v == version {
                    return Ok(cfg.clone());
                }
            }
        }
        let cfg = TableConfig::from_json(&Json::parse(&text)?)?;
        self.config_cache
            .lock()
            .insert(qualified.to_string(), (version, cfg.clone()));
        Ok(cfg)
    }

    fn table_config_any(&self, logical: &str) -> Result<TableConfig> {
        self.table_config_physical(&format!("{logical}_OFFLINE"))
            .or_else(|_| self.table_config_physical(&format!("{logical}_REALTIME")))
            .or_else(|_| self.table_config_physical(logical))
    }

    fn table_time_column(&self, qualified: &str) -> Result<Option<String>> {
        let config = self.table_config_physical(qualified)?;
        let (text, _) = self
            .cluster
            .metastore()
            .get(&format!("/schemas/{}", config.name))
            .ok_or_else(|| PinotError::Metadata(format!("no schema for {}", config.name)))?;
        let schema = pinot_common::Schema::from_json(&Json::parse(&text)?)?;
        Ok(schema.time_column().map(|f| f.name.clone()))
    }

    /// The hybrid time boundary: the largest time value any offline segment
    /// covers (from segment metadata).
    fn offline_time_boundary(&self, offline_table: &str) -> Option<i64> {
        let ms = self.cluster.metastore();
        let mut max_time: Option<i64> = None;
        for seg in ms.children(&format!("/segments/{offline_table}")) {
            let Some((text, _)) = ms.get(&format!("/segments/{offline_table}/{seg}")) else {
                continue;
            };
            let Ok(json) = Json::parse(&text) else {
                continue;
            };
            if let Some(t) = json.get("maxTime").and_then(Json::as_i64) {
                max_time = Some(max_time.map_or(t, |m: i64| m.max(t)));
            }
        }
        max_time
    }

    /// Number of cached routing tables for a table (diagnostics/tests).
    pub fn num_routing_tables(&self, table: &str) -> usize {
        self.routing_cache
            .lock()
            .get(table)
            .map(|c| c.tables.len())
            .unwrap_or(0)
    }
}

/// Result of one failover attempt for a failed server's segment list.
/// Run a server call with panic capture. A panicking server maps to a
/// retriable I/O error so the normal failover path covers it, rather than
/// poisoning the scatter worker (or, pre-pool, silently killing the
/// scatter thread and leaving its slot forever pending).
/// Decode one column's zone map from segment metadata JSON — the inverse of
/// the controller's string encoding (bounds are strings because JSON
/// numbers are f64 and would corrupt i64 bounds past 2^53).
fn parse_zone_map(col: &Json) -> Option<ColumnRange> {
    let data_type = DataType::parse(col.get("type")?.as_str()?).ok()?;
    let single_value = col.get("sv")?.as_bool()?;
    let min = parse_zone_bound(col.get("min")?.as_str()?, data_type)?;
    let max = parse_zone_bound(col.get("max")?.as_str()?, data_type)?;
    Some(ColumnRange {
        data_type,
        min,
        max,
        single_value,
    })
}

fn parse_zone_bound(s: &str, data_type: DataType) -> Option<Value> {
    match data_type {
        DataType::Int => s.parse().ok().map(Value::Int),
        DataType::Long => s.parse().ok().map(Value::Long),
        DataType::Float => s.parse().ok().map(Value::Float),
        DataType::Double => s.parse().ok().map(Value::Double),
        DataType::String => Some(Value::String(s.to_string())),
        DataType::Boolean => s.parse().ok().map(Value::Boolean),
    }
}

fn guarded_execute(
    svc: &dyn SegmentQueryService,
    req: &RoutedRequest,
) -> Result<IntermediateResult> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| svc.execute(req))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Err(PinotError::Io(format!("server task panicked: {msg}")))
        }
    }
}

struct FailoverOutcome {
    /// Replicas that successfully served part of the failed server's share.
    covered_by: Vec<String>,
    /// Segments no surviving replica could serve — genuinely missing data.
    lost: Vec<String>,
}

/// Collapse duplicate per-server entries (a replica that served its own
/// share *and* covered for a failed peer reports once, summed) while
/// preserving first-seen order.
fn coalesce_per_server(entries: &mut Vec<ServerContribution>) {
    let mut out: Vec<ServerContribution> = Vec::with_capacity(entries.len());
    for e in entries.drain(..) {
        match out.iter_mut().find(|o| o.server == e.server) {
            Some(o) => {
                o.responded |= e.responded;
                o.segments_processed += e.segments_processed;
                o.docs_scanned += e.docs_scanned;
                o.time_ms += e.time_ms;
                o.covered_by.extend(e.covered_by);
            }
            None => out.push(e),
        }
    }
    *entries = out;
}

/// AND an extra predicate onto a query (hybrid rewrite).
fn add_conjunct(query: &Query, pred: Predicate) -> Query {
    let mut q = query.clone();
    q.filter = Some(match q.filter.take() {
        None => pred,
        Some(Predicate::And(mut ps)) => {
            ps.push(pred);
            Predicate::And(ps)
        }
        Some(other) => Predicate::And(vec![other, pred]),
    });
    q
}

/// Equality/IN values on `column` from top-level AND conjuncts; `None` when
/// the filter does not restrict the column to an explicit value set.
fn partition_filter_values(pred: Option<&Predicate>, column: &str) -> Option<Vec<Value>> {
    fn from(p: &Predicate, column: &str) -> Option<Vec<Value>> {
        match p {
            Predicate::Cmp {
                column: c,
                op: CmpOp::Eq,
                value,
            } if c == column => Some(vec![value.clone()]),
            Predicate::In {
                column: c,
                values,
                negated: false,
            } if c == column => Some(values.clone()),
            Predicate::And(ps) => ps.iter().find_map(|q| from(q, column)),
            _ => None,
        }
    }
    pred.and_then(|p| from(p, column))
}

/// Merge two finalized results (hybrid offline + realtime sides).
/// Aggregations combine by function; selections concatenate.
fn merge_results(
    a: pinot_common::query::QueryResult,
    b: pinot_common::query::QueryResult,
    query: &Query,
) -> Result<pinot_common::query::QueryResult> {
    use pinot_common::query::{AggregationRow, GroupByRows, QueryResult};
    match (a, b) {
        (QueryResult::Aggregation(x), QueryResult::Aggregation(y)) => {
            if x.is_empty() {
                return Ok(QueryResult::Aggregation(y));
            }
            if y.is_empty() {
                return Ok(QueryResult::Aggregation(x));
            }
            let merged: Vec<AggregationRow> = x
                .into_iter()
                .zip(y)
                .map(|(ra, rb)| merge_agg_rows(ra, rb))
                .collect::<Result<_>>()?;
            Ok(QueryResult::Aggregation(merged))
        }
        (QueryResult::GroupBy(x), QueryResult::GroupBy(y)) => {
            let mut merged = Vec::with_capacity(x.len());
            for (ta, tb) in x.into_iter().zip(y) {
                let function = ta.function.clone();
                let group_columns = ta.group_columns.clone();
                let mut rows: BTreeMap<String, (Vec<Value>, f64)> = BTreeMap::new();
                for (key, value) in ta.rows.into_iter().chain(tb.rows) {
                    let k = format!("{key:?}");
                    let v = value.as_f64().unwrap_or(f64::NEG_INFINITY);
                    rows.entry(k)
                        .and_modify(|(_, acc)| *acc = combine_by_function(&function, *acc, v))
                        .or_insert((key, v));
                }
                let mut out: Vec<(Vec<Value>, f64)> = rows.into_values().collect();
                out.sort_by(|a, b| b.1.total_cmp(&a.1));
                out.truncate(query.effective_top());
                // COUNT/DISTINCTCOUNT finalize as Long on the single-table
                // path; the hybrid merge must produce the same type.
                let integral =
                    function.starts_with("count") || function.starts_with("distinctcount");
                merged.push(GroupByRows {
                    function,
                    group_columns,
                    rows: out
                        .into_iter()
                        .map(|(k, v)| {
                            let v = if integral {
                                Value::Long(v as i64)
                            } else {
                                Value::Double(v)
                            };
                            (k, v)
                        })
                        .collect(),
                });
            }
            Ok(QueryResult::GroupBy(merged))
        }
        (
            QueryResult::Selection { columns, mut rows },
            QueryResult::Selection { rows: more, .. },
        ) => {
            rows.extend(more);
            rows.truncate(query.effective_limit());
            Ok(QueryResult::Selection { columns, rows })
        }
        _ => Err(PinotError::Internal(
            "hybrid sides returned mismatched result shapes".into(),
        )),
    }
}

fn merge_agg_rows(
    a: pinot_common::query::AggregationRow,
    b: pinot_common::query::AggregationRow,
) -> Result<pinot_common::query::AggregationRow> {
    use pinot_common::query::AggregationRow;
    let f = a.function.clone();
    let value = match (a.value.as_f64(), b.value.as_f64()) {
        (Some(x), Some(y)) => {
            let merged = combine_by_function(&f, x, y);
            if f.starts_with("count") || f.starts_with("distinctcount") {
                Value::Long(merged as i64)
            } else {
                Value::Double(merged)
            }
        }
        (Some(_), None) => a.value.clone(),
        (None, Some(_)) => b.value.clone(),
        (None, None) => Value::Null,
    };
    Ok(AggregationRow { function: f, value })
}

/// Combine two already-finalized aggregate values by function name.
///
/// AVG and DISTINCTCOUNT cannot be merged exactly once finalized — hybrid
/// AVG approximates by averaging the two sides and hybrid DISTINCTCOUNT
/// adds them (an upper bound). Non-hybrid queries merge intermediate
/// states and stay exact; this only affects queries spanning the hybrid
/// time boundary, matching the resolution loss the paper accepts for
/// boundary-spanning preaggregation.
fn combine_by_function(function: &str, a: f64, b: f64) -> f64 {
    if function.starts_with("sum")
        || function.starts_with("count")
        || function.starts_with("distinctcount")
    {
        a + b
    } else if function.starts_with("min") {
        a.min(b)
    } else if function.starts_with("max") {
        a.max(b)
    } else if function.starts_with("avg") {
        (a + b) / 2.0
    } else {
        a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_pql::parse;

    #[test]
    fn add_conjunct_wraps_filters() {
        let q = parse("SELECT COUNT(*) FROM t WHERE a = 1").unwrap();
        let q2 = add_conjunct(
            &q,
            Predicate::Cmp {
                column: "day".into(),
                op: CmpOp::Lt,
                value: Value::Long(10),
            },
        );
        match q2.filter.unwrap() {
            Predicate::And(ps) => assert_eq!(ps.len(), 2),
            other => panic!("{other:?}"),
        }
        let q = parse("SELECT COUNT(*) FROM t").unwrap();
        let q2 = add_conjunct(
            &q,
            Predicate::Cmp {
                column: "day".into(),
                op: CmpOp::Ge,
                value: Value::Long(10),
            },
        );
        assert!(matches!(q2.filter, Some(Predicate::Cmp { .. })));
    }

    #[test]
    fn partition_values_extraction() {
        let q = parse("SELECT COUNT(*) FROM t WHERE user = 42 AND day > 3").unwrap();
        assert_eq!(
            partition_filter_values(q.filter.as_ref(), "user"),
            Some(vec![Value::Long(42)])
        );
        let q = parse("SELECT COUNT(*) FROM t WHERE user IN (1, 2)").unwrap();
        assert_eq!(
            partition_filter_values(q.filter.as_ref(), "user"),
            Some(vec![Value::Long(1), Value::Long(2)])
        );
        // OR at the top cannot restrict partitions.
        let q = parse("SELECT COUNT(*) FROM t WHERE user = 1 OR day = 2").unwrap();
        assert_eq!(partition_filter_values(q.filter.as_ref(), "user"), None);
        let q = parse("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(partition_filter_values(q.filter.as_ref(), "user"), None);
    }

    #[test]
    fn combine_functions() {
        assert_eq!(combine_by_function("sum(m)", 2.0, 3.0), 5.0);
        assert_eq!(combine_by_function("count(*)", 2.0, 3.0), 5.0);
        assert_eq!(combine_by_function("min(m)", 2.0, 3.0), 2.0);
        assert_eq!(combine_by_function("max(m)", 2.0, 3.0), 3.0);
        assert_eq!(combine_by_function("avg(m)", 2.0, 4.0), 3.0);
    }
}
