//! Routing table generation and selection (§4.4, Algorithms 1 and 2).
//!
//! A routing table maps servers to the subset of segments each should
//! process for one query, such that the union covers the table exactly
//! once. The *balanced* strategy uses every live server. The
//! *large-cluster* strategy bounds the number of servers per query
//! (minimizing exposure to stragglers): picking the minimal covering subset
//! is NP-hard, so Algorithm 1 greedily builds a random cover and Algorithm
//! 2 generates many candidates, keeping the ones with the lowest
//! per-server segment-count variance.

use pinot_common::ids::InstanceId;
use rand::prelude::*;
use std::collections::{BTreeMap, HashMap};

/// server → segments that server processes for a query.
pub type RoutingTable = BTreeMap<InstanceId, Vec<String>>;

/// Replica placement input: segment → servers currently able to serve it.
pub type SegmentReplicas = BTreeMap<String, Vec<InstanceId>>;

/// Invert a `server → segments` external view into `segment → servers`.
pub fn invert_view(view: &BTreeMap<InstanceId, Vec<String>>) -> SegmentReplicas {
    let mut out: SegmentReplicas = BTreeMap::new();
    for (server, segments) in view {
        for seg in segments {
            out.entry(seg.clone()).or_default().push(server.clone());
        }
    }
    for servers in out.values_mut() {
        servers.sort();
    }
    out
}

/// Balanced strategy: every server participates; each segment is assigned
/// to its least-loaded replica (deterministic given the view).
pub fn generate_balanced(replicas: &SegmentReplicas) -> RoutingTable {
    let mut table: RoutingTable = BTreeMap::new();
    let mut load: HashMap<InstanceId, usize> = HashMap::new();
    for (segment, servers) in replicas {
        let Some(best) = servers
            .iter()
            .min_by_key(|s| (load.get(*s).copied().unwrap_or(0), (*s).clone()))
        else {
            continue;
        };
        *load.entry(best.clone()).or_default() += 1;
        table.entry(best.clone()).or_default().push(segment.clone());
    }
    table
}

/// Algorithm 1: build one routing table touching ~`target_servers` servers.
pub fn generate_routing_table(
    replicas: &SegmentReplicas,
    target_servers: usize,
    rng: &mut impl Rng,
) -> RoutingTable {
    // IS: instance → segments; SI is `replicas` itself.
    let mut instance_segments: BTreeMap<InstanceId, Vec<String>> = BTreeMap::new();
    for (seg, servers) in replicas {
        for s in servers {
            instance_segments
                .entry(s.clone())
                .or_default()
                .push(seg.clone());
        }
    }
    let all_instances: Vec<InstanceId> = instance_segments.keys().cloned().collect();

    // Segments with no live replica are unroutable; leave them out.
    let mut orphan: BTreeMap<&String, ()> = replicas
        .iter()
        .filter(|(_, servers)| !servers.is_empty())
        .map(|(s, _)| (s, ()))
        .collect();
    let mut used: Vec<InstanceId> = Vec::new();

    let cover = |inst: &InstanceId, orphan: &mut BTreeMap<&String, ()>| {
        if let Some(segs) = instance_segments.get(inst) {
            for s in segs {
                orphan.remove(s);
            }
        }
    };

    if all_instances.len() <= target_servers {
        // Fewer instances than the target: use all of them.
        for inst in &all_instances {
            used.push(inst.clone());
            cover(inst, &mut orphan);
        }
    } else {
        while used.len() < target_servers {
            let inst = all_instances.choose(rng).expect("non-empty").clone();
            if !used.contains(&inst) {
                cover(&inst, &mut orphan);
                used.push(inst);
            }
        }
    }

    // Add servers until every orphan segment is covered.
    while let Some((&seg, _)) = orphan.iter().next() {
        let candidates = &replicas[seg];
        let inst = candidates.choose(rng).expect("replicated segment").clone();
        cover(&inst, &mut orphan);
        if !used.contains(&inst) {
            used.push(inst);
        }
    }

    // Assign each segment to one used instance, fewest-candidates first
    // (the priority queue in the paper), balancing load.
    let mut entries: Vec<(&String, Vec<&InstanceId>)> = replicas
        .iter()
        .map(|(seg, servers)| {
            let usable: Vec<&InstanceId> = servers.iter().filter(|s| used.contains(*s)).collect();
            (seg, usable)
        })
        .collect();
    entries.sort_by_key(|(seg, usable)| (usable.len(), (*seg).clone()));

    let mut load: HashMap<&InstanceId, usize> = HashMap::new();
    let mut table: RoutingTable = BTreeMap::new();
    for (seg, usable) in entries {
        if usable.is_empty() {
            continue; // unroutable segment (no live replica)
        }
        // PickWeightedRandomReplica: choose among the least-loaded usable
        // instances at random.
        let min_load = usable
            .iter()
            .map(|s| load.get(*s).copied().unwrap_or(0))
            .min()
            .expect("non-empty");
        let least: Vec<&&InstanceId> = usable
            .iter()
            .filter(|s| load.get(**s).copied().unwrap_or(0) == min_load)
            .collect();
        let picked: &InstanceId = least.choose(rng).expect("non-empty");
        *load.entry(picked).or_default() += 1;
        table.entry(picked.clone()).or_default().push(seg.clone());
    }
    table
}

/// Fitness metric (Algorithm 2): variance of segments-per-server. Lower is
/// better — the paper found this empirically effective.
pub fn routing_table_metric(table: &RoutingTable) -> f64 {
    if table.is_empty() {
        return 0.0;
    }
    let counts: Vec<f64> = table.values().map(|v| v.len() as f64).collect();
    let mean = counts.iter().sum::<f64>() / counts.len() as f64;
    counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64
}

/// Algorithm 2: generate `generation_count` candidate tables, keep the
/// `keep_count` with the lowest metric.
pub fn filter_routing_tables(
    replicas: &SegmentReplicas,
    target_servers: usize,
    keep_count: usize,
    generation_count: usize,
    rng: &mut impl Rng,
) -> Vec<RoutingTable> {
    // (metric, table) max-heap by metric, bounded to keep_count.
    let mut kept: Vec<(f64, RoutingTable)> = Vec::with_capacity(keep_count + 1);
    for _ in 0..generation_count.max(keep_count) {
        let table = generate_routing_table(replicas, target_servers, rng);
        let metric = routing_table_metric(&table);
        if kept.len() < keep_count {
            kept.push((metric, table));
            kept.sort_by(|a, b| a.0.total_cmp(&b.0));
        } else if let Some(worst) = kept.last() {
            if metric < worst.0 {
                kept.pop();
                kept.push((metric, table));
                kept.sort_by(|a, b| a.0.total_cmp(&b.0));
            }
        }
    }
    kept.into_iter().map(|(_, t)| t).collect()
}

/// Check that a routing table covers exactly the given segment set, each
/// segment once (test/diagnostic helper).
pub fn covers_exactly(table: &RoutingTable, replicas: &SegmentReplicas) -> bool {
    let mut seen: Vec<&String> = table.values().flatten().collect();
    seen.sort();
    if seen.windows(2).any(|w| w[0] == w[1]) {
        return false;
    }
    let mut expected: Vec<&String> = replicas
        .iter()
        .filter(|(_, servers)| !servers.is_empty())
        .map(|(s, _)| s)
        .collect();
    expected.sort();
    seen == expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// n segments replicated `repl` times over m servers, round-robin.
    fn make_replicas(num_segments: usize, num_servers: usize, repl: usize) -> SegmentReplicas {
        let mut out = SegmentReplicas::new();
        for i in 0..num_segments {
            let servers: Vec<InstanceId> = (0..repl)
                .map(|r| InstanceId::server((i + r) % num_servers + 1))
                .collect();
            out.insert(format!("seg_{i:04}"), servers);
        }
        out
    }

    #[test]
    fn balanced_covers_and_balances() {
        let replicas = make_replicas(100, 10, 3);
        let table = generate_balanced(&replicas);
        assert!(covers_exactly(&table, &replicas));
        assert_eq!(table.len(), 10); // all servers participate
        for segs in table.values() {
            // Greedy least-loaded assignment: near-perfect balance.
            assert!((8..=12).contains(&segs.len()), "{}", segs.len());
        }
    }

    #[test]
    fn algorithm1_limits_server_count() {
        let replicas = make_replicas(200, 20, 3);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let table = generate_routing_table(&replicas, 6, &mut rng);
            assert!(covers_exactly(&table, &replicas));
            // The greedy cover overshoots the target while covering
            // orphan segments, but stays well below all 20 servers.
            assert!(table.len() <= 16, "used {} servers", table.len());
        }
    }

    #[test]
    fn algorithm1_uses_all_when_target_exceeds_servers() {
        let replicas = make_replicas(30, 4, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let table = generate_routing_table(&replicas, 100, &mut rng);
        assert!(covers_exactly(&table, &replicas));
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn algorithm2_keeps_lowest_variance() {
        let replicas = make_replicas(120, 12, 3);
        let mut rng = StdRng::seed_from_u64(42);
        let kept = filter_routing_tables(&replicas, 5, 4, 60, &mut rng);
        assert_eq!(kept.len(), 4);
        for t in &kept {
            assert!(covers_exactly(t, &replicas));
        }
        // Kept tables are at least as good as a fresh average.
        let kept_avg: f64 = kept.iter().map(routing_table_metric).sum::<f64>() / kept.len() as f64;
        let fresh_avg: f64 = (0..30)
            .map(|_| routing_table_metric(&generate_routing_table(&replicas, 5, &mut rng)))
            .sum::<f64>()
            / 30.0;
        assert!(
            kept_avg <= fresh_avg + 1e-9,
            "kept {kept_avg} vs fresh {fresh_avg}"
        );
    }

    #[test]
    fn unroutable_segments_are_skipped() {
        let mut replicas = make_replicas(5, 3, 1);
        replicas.insert("seg_dead".into(), Vec::new());
        let table = generate_balanced(&replicas);
        assert!(covers_exactly(&table, &replicas)); // ignores the dead one
        let mut rng = StdRng::seed_from_u64(3);
        let t2 = generate_routing_table(&replicas, 2, &mut rng);
        assert!(!t2.values().flatten().any(|s| s == "seg_dead"));
    }

    #[test]
    fn invert_view_round_trip() {
        let mut view = BTreeMap::new();
        view.insert(
            InstanceId::server(1),
            vec!["a".to_string(), "b".to_string()],
        );
        view.insert(InstanceId::server(2), vec!["b".to_string()]);
        let replicas = invert_view(&view);
        assert_eq!(replicas["a"], vec![InstanceId::server(1)]);
        assert_eq!(
            replicas["b"],
            vec![InstanceId::server(1), InstanceId::server(2)]
        );
    }

    #[test]
    fn metric_prefers_balance() {
        let mut balanced = RoutingTable::new();
        balanced.insert(InstanceId::server(1), vec!["a".into(), "b".into()]);
        balanced.insert(InstanceId::server(2), vec!["c".into(), "d".into()]);
        let mut skewed = RoutingTable::new();
        skewed.insert(
            InstanceId::server(1),
            vec!["a".into(), "b".into(), "c".into()],
        );
        skewed.insert(InstanceId::server(2), vec!["d".into()]);
        assert!(routing_table_metric(&balanced) < routing_table_metric(&skewed));
    }
}
