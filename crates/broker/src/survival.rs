//! Broker survival layer: tiered admission control and the sharded
//! single-flight result cache.
//!
//! Both sit *in front of* scatter. Admission control bounds how many
//! queries per tenant may hold scatter concurrency at once, queueing a
//! bounded overflow and shedding the rest with a typed
//! [`PinotError::Overloaded`] — so a melting cluster stops paying scatter
//! cost for queries it was going to fail anyway. The result cache answers
//! repeated identical queries (same normalized AST, same routing-table
//! generation) without touching a server, and *coalesces* concurrent
//! identical queries onto one in-flight execution so a hot dashboard
//! query hits the cluster once.
//!
//! Uses `std::sync` Mutex/Condvar rather than parking_lot: the admission
//! queue and flight tokens need condition variables, which the in-repo
//! parking_lot shim does not provide.

use pinot_common::query::QueryResponse;
use pinot_common::{PinotError, Result};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Env knob defaults
// ---------------------------------------------------------------------------

/// `PINOT_EXEC_HEDGE` — hedged scatter, on unless `=0`.
pub fn hedge_default() -> bool {
    std::env::var("PINOT_EXEC_HEDGE").map_or(true, |v| v != "0")
}

/// `PINOT_EXEC_ADMISSION` — broker admission control, on unless `=0`.
/// Default limits are generous (64 per tenant, 128 queued) so nothing
/// sheds until an operator tightens them.
pub fn admission_default() -> bool {
    std::env::var("PINOT_EXEC_ADMISSION").map_or(true, |v| v != "0")
}

/// `PINOT_EXEC_RESULT_CACHE` — broker result cache, off unless `=1`.
/// Off by default because cached replays change observable scan counters
/// for workloads that repeat queries (benches do, deliberately).
pub fn result_cache_default() -> bool {
    std::env::var("PINOT_EXEC_RESULT_CACHE").is_ok_and(|v| v == "1")
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// Per-tenant concurrency limits with a bounded broker-wide wait queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Concurrent in-scatter queries allowed per weight unit of a tenant.
    pub per_tenant: usize,
    /// Broker-wide cap on queries parked waiting for a slot; arrivals
    /// beyond this are shed immediately.
    pub queue: usize,
}

impl Default for AdmissionLimits {
    fn default() -> AdmissionLimits {
        AdmissionLimits {
            per_tenant: 64,
            queue: 128,
        }
    }
}

struct AdmState {
    limits: AdmissionLimits,
    /// Tenant weight multiplier (default 1): a weight-2 tenant gets twice
    /// the concurrency slots of a weight-1 tenant.
    weights: HashMap<String, u32>,
    /// In-flight admitted queries per tenant.
    active: HashMap<String, usize>,
    /// Queries currently parked in `admit`.
    queued: usize,
}

/// Broker-side tiered admission: try to admit immediately, park in a
/// bounded queue otherwise, shed (`Overloaded`) when the queue is full or
/// the query's deadline passes while parked.
pub struct AdmissionController {
    state: Mutex<AdmState>,
    cv: Condvar,
}

impl Default for AdmissionController {
    fn default() -> AdmissionController {
        AdmissionController::new(AdmissionLimits::default())
    }
}

impl AdmissionController {
    pub fn new(limits: AdmissionLimits) -> AdmissionController {
        AdmissionController {
            state: Mutex::new(AdmState {
                limits,
                weights: HashMap::new(),
                active: HashMap::new(),
                queued: 0,
            }),
            cv: Condvar::new(),
        }
    }

    pub fn set_limits(&self, limits: AdmissionLimits) {
        self.state.lock().unwrap().limits = limits;
        self.cv.notify_all();
    }

    pub fn set_weight(&self, tenant: &str, weight: u32) {
        self.state
            .lock()
            .unwrap()
            .weights
            .insert(tenant.to_string(), weight.max(1));
        self.cv.notify_all();
    }

    fn slots_for(state: &AdmState, tenant: &str) -> usize {
        let weight = state.weights.get(tenant).copied().unwrap_or(1) as usize;
        state.limits.per_tenant.saturating_mul(weight)
    }

    /// Admit `tenant` or park until a slot frees, the queue overflows, or
    /// `deadline` passes. Returns a permit whose `Drop` releases the slot.
    /// `queued_cb` fires once if the query had to wait (so the caller can
    /// count `broker.admission_queued` without this module depending on
    /// obs).
    pub fn admit(
        self: &Arc<Self>,
        tenant: &str,
        deadline: Instant,
        mut queued_cb: impl FnMut(),
    ) -> Result<AdmissionPermit> {
        let mut state = self.state.lock().unwrap();
        if *state.active.get(tenant).unwrap_or(&0) < Self::slots_for(&state, tenant) {
            *state.active.entry(tenant.to_string()).or_insert(0) += 1;
            return Ok(self.permit(tenant));
        }
        if state.queued >= state.limits.queue {
            return Err(PinotError::Overloaded(format!(
                "tenant {tenant}: concurrency saturated and admission queue full"
            )));
        }
        state.queued += 1;
        queued_cb();
        loop {
            let now = Instant::now();
            if now >= deadline {
                state.queued -= 1;
                self.cv.notify_all();
                return Err(PinotError::Overloaded(format!(
                    "tenant {tenant}: deadline passed while queued for admission"
                )));
            }
            let (next, timeout) = self.cv.wait_timeout(state, deadline - now).unwrap();
            state = next;
            if *state.active.get(tenant).unwrap_or(&0) < Self::slots_for(&state, tenant) {
                state.queued -= 1;
                *state.active.entry(tenant.to_string()).or_insert(0) += 1;
                return Ok(self.permit(tenant));
            }
            // Spurious wake or someone else took the slot; keep waiting
            // unless the deadline elapsed (checked at loop top and via
            // the timeout result — both funnel through the same branch).
            let _ = timeout;
        }
    }

    fn permit(self: &Arc<Self>, tenant: &str) -> AdmissionPermit {
        AdmissionPermit {
            controller: Arc::clone(self),
            tenant: tenant.to_string(),
        }
    }

    #[cfg(test)]
    fn active(&self, tenant: &str) -> usize {
        *self.state.lock().unwrap().active.get(tenant).unwrap_or(&0)
    }
}

/// RAII admission slot; releases on drop and wakes one queued waiter.
pub struct AdmissionPermit {
    controller: Arc<AdmissionController>,
    tenant: String,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut state = self.controller.state.lock().unwrap();
        if let Some(n) = state.active.get_mut(&self.tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                state.active.remove(&self.tenant);
            }
        }
        drop(state);
        self.controller.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Single-flight result cache
// ---------------------------------------------------------------------------

const CACHE_SHARDS: usize = 16;
const CACHE_PER_SHARD: usize = 128;

/// State of one coalesced execution. The leader fills it exactly once;
/// followers block on the condvar until it resolves.
enum FlightState {
    Pending,
    Done(Arc<QueryResponse>),
    /// The leader finished without a cacheable response (error, partial
    /// response, or it panicked/dropped the guard). Followers re-execute
    /// themselves.
    Failed,
}

/// Token shared between the leader of an in-flight execution and the
/// followers coalesced onto it.
pub struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        })
    }

    /// Block until the leader resolves this flight or `deadline` passes.
    /// `None` means the follower must execute the query itself.
    pub fn wait(&self, deadline: Instant) -> Option<Arc<QueryResponse>> {
        let mut state = self.state.lock().unwrap();
        loop {
            match &*state {
                FlightState::Done(resp) => return Some(Arc::clone(resp)),
                FlightState::Failed => return None,
                FlightState::Pending => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self.cv.wait_timeout(state, deadline - now).unwrap();
            state = next;
        }
    }

    fn resolve(&self, outcome: Option<Arc<QueryResponse>>) {
        let mut state = self.state.lock().unwrap();
        if matches!(*state, FlightState::Pending) {
            *state = match outcome {
                Some(resp) => FlightState::Done(resp),
                None => FlightState::Failed,
            };
        }
        drop(state);
        self.cv.notify_all();
    }
}

enum Entry {
    Ready(Arc<QueryResponse>),
    InFlight(Arc<Flight>),
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
    /// Insertion order of Ready entries, for FIFO eviction.
    order: VecDeque<String>,
}

/// Outcome of a cache lookup.
pub enum Lookup {
    /// A completed response is cached; serve it.
    Hit(Arc<QueryResponse>),
    /// The same query is executing right now; wait on the flight.
    Coalesce(Arc<Flight>),
    /// Nobody is executing this query; the caller leads. Complete or drop
    /// the guard to release followers.
    Lead(LeadGuard),
}

/// Sharded map of normalized-query+routing-generation → response, with
/// single-flight coalescing of concurrent identical queries.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
}

impl Default for ResultCache {
    fn default() -> ResultCache {
        ResultCache::new()
    }
}

impl ResultCache {
    pub fn new() -> ResultCache {
        ResultCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up `key`, registering the caller as the leader of a new flight
    /// when the key is absent.
    pub fn lookup(self: &Arc<Self>, key: &str) -> Lookup {
        let mut shard = self.shard_of(key).lock().unwrap();
        match shard.map.get(key) {
            Some(Entry::Ready(resp)) => Lookup::Hit(Arc::clone(resp)),
            Some(Entry::InFlight(flight)) => Lookup::Coalesce(Arc::clone(flight)),
            None => {
                let flight = Flight::new();
                shard
                    .map
                    .insert(key.to_string(), Entry::InFlight(Arc::clone(&flight)));
                Lookup::Lead(LeadGuard {
                    cache: Arc::clone(self),
                    key: key.to_string(),
                    flight,
                    done: false,
                })
            }
        }
    }

    /// Drop every cached/in-flight entry (used when the routing view
    /// changes wholesale; per-table generations in the key handle the
    /// common invalidation path).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            // In-flight executions still resolve through their own Arc'd
            // flight tokens; dropping the map entry only stops *new*
            // arrivals from coalescing onto them.
            shard.map.retain(|_, e| matches!(e, Entry::InFlight(_)));
            shard.order.clear();
        }
    }

    fn finish(&self, key: &str, outcome: Option<Arc<QueryResponse>>, flight: &Flight) {
        let mut shard = self.shard_of(key).lock().unwrap();
        match &outcome {
            Some(resp) => {
                if shard.order.len() >= CACHE_PER_SHARD {
                    if let Some(oldest) = shard.order.pop_front() {
                        shard.map.remove(&oldest);
                    }
                }
                shard
                    .map
                    .insert(key.to_string(), Entry::Ready(Arc::clone(resp)));
                shard.order.push_back(key.to_string());
            }
            None => {
                // Only remove our own in-flight marker; a Ready entry from
                // a racing generation bump + refill must survive.
                if matches!(shard.map.get(key), Some(Entry::InFlight(_))) {
                    shard.map.remove(key);
                }
            }
        }
        drop(shard);
        flight.resolve(outcome);
    }
}

/// Held by the one caller executing a cache-missed query. Call
/// [`LeadGuard::complete`] with the response (or `None` for uncacheable
/// outcomes); dropping without completing releases followers to execute
/// for themselves, so a panicking leader never wedges the key.
pub struct LeadGuard {
    cache: Arc<ResultCache>,
    key: String,
    flight: Arc<Flight>,
    done: bool,
}

impl LeadGuard {
    pub fn complete(mut self, outcome: Option<Arc<QueryResponse>>) {
        self.done = true;
        self.cache.finish(&self.key, outcome, &self.flight);
    }
}

impl Drop for LeadGuard {
    fn drop(&mut self) {
        if !self.done {
            self.cache.finish(&self.key, None, &self.flight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn resp() -> Arc<QueryResponse> {
        Arc::new(QueryResponse::empty_aggregation())
    }

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn admission_immediate_then_shed() {
        let adm = Arc::new(AdmissionController::new(AdmissionLimits {
            per_tenant: 1,
            queue: 0,
        }));
        let p = adm.admit("t", far_deadline(), || {}).unwrap();
        assert_eq!(adm.active("t"), 1);
        // Slot held, queue size 0 → immediate typed shed.
        let err = adm.admit("t", far_deadline(), || {}).err().unwrap();
        assert_eq!(err.kind(), "overloaded");
        drop(p);
        assert_eq!(adm.active("t"), 0);
        adm.admit("t", far_deadline(), || {}).unwrap();
    }

    #[test]
    fn admission_queued_waiter_gets_released_slot() {
        let adm = Arc::new(AdmissionController::new(AdmissionLimits {
            per_tenant: 1,
            queue: 4,
        }));
        let p = adm.admit("t", far_deadline(), || {}).unwrap();
        let adm2 = Arc::clone(&adm);
        let queued = Arc::new(Mutex::new(false));
        let queued2 = Arc::clone(&queued);
        let waiter = std::thread::spawn(move || {
            adm2.admit("t", far_deadline(), || {
                *queued2.lock().unwrap() = true;
            })
            .map(|_p| ())
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(*queued.lock().unwrap(), "second query should have queued");
        drop(p);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn admission_queued_waiter_sheds_at_deadline() {
        let adm = Arc::new(AdmissionController::new(AdmissionLimits {
            per_tenant: 1,
            queue: 4,
        }));
        let _p = adm.admit("t", far_deadline(), || {}).unwrap();
        let err = adm
            .admit("t", Instant::now() + Duration::from_millis(10), || {})
            .err()
            .unwrap();
        assert_eq!(err.kind(), "overloaded");
        // The shed waiter must have released its queue slot.
        assert_eq!(adm.state.lock().unwrap().queued, 0);
    }

    #[test]
    fn admission_weight_multiplies_slots() {
        let adm = Arc::new(AdmissionController::new(AdmissionLimits {
            per_tenant: 1,
            queue: 0,
        }));
        adm.set_weight("big", 3);
        let _p1 = adm.admit("big", far_deadline(), || {}).unwrap();
        let _p2 = adm.admit("big", far_deadline(), || {}).unwrap();
        let _p3 = adm.admit("big", far_deadline(), || {}).unwrap();
        assert!(adm.admit("big", far_deadline(), || {}).is_err());
        // A different tenant is unaffected by "big" saturating its slots.
        let _q = adm.admit("small", far_deadline(), || {}).unwrap();
    }

    #[test]
    fn cache_miss_then_hit() {
        let cache = Arc::new(ResultCache::new());
        let Lookup::Lead(guard) = cache.lookup("k") else {
            panic!("first lookup must lead");
        };
        guard.complete(Some(resp()));
        assert!(matches!(cache.lookup("k"), Lookup::Hit(_)));
        cache.clear();
        assert!(matches!(cache.lookup("k"), Lookup::Lead(_)));
    }

    #[test]
    fn concurrent_lookup_coalesces_onto_leader() {
        let cache = Arc::new(ResultCache::new());
        let Lookup::Lead(guard) = cache.lookup("k") else {
            panic!("leader expected");
        };
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || match cache.lookup("k") {
                    Lookup::Coalesce(flight) => flight.wait(far_deadline()).is_some(),
                    Lookup::Hit(_) => true,
                    Lookup::Lead(_) => false,
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        guard.complete(Some(resp()));
        for f in followers {
            assert!(f.join().unwrap(), "every follower gets the leader's answer");
        }
    }

    #[test]
    fn dropped_leader_releases_followers_to_execute() {
        let cache = Arc::new(ResultCache::new());
        let guard = match cache.lookup("k") {
            Lookup::Lead(g) => g,
            _ => panic!("leader expected"),
        };
        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.lookup("k") {
                Lookup::Coalesce(flight) => flight.wait(far_deadline()),
                _ => panic!("should coalesce"),
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        drop(guard); // leader panicked / bailed without completing
        assert!(follower.join().unwrap().is_none(), "follower re-executes");
        // Key is free again: next arrival leads.
        assert!(matches!(cache.lookup("k"), Lookup::Lead(_)));
    }

    #[test]
    fn uncacheable_completion_does_not_populate() {
        let cache = Arc::new(ResultCache::new());
        let Lookup::Lead(guard) = cache.lookup("k") else {
            panic!("leader expected");
        };
        guard.complete(None); // e.g. a partial response — never cached
        assert!(matches!(cache.lookup("k"), Lookup::Lead(_)));
    }

    #[test]
    fn eviction_is_fifo_per_shard() {
        let cache = Arc::new(ResultCache::new());
        // Overfill well past total capacity; the earliest keys must be gone
        // and the cache must remain bounded.
        let n = CACHE_SHARDS * CACHE_PER_SHARD * 2;
        for i in 0..n {
            if let Lookup::Lead(g) = cache.lookup(&format!("k{i}")) {
                g.complete(Some(resp()));
            }
        }
        let total: usize = cache
            .shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum();
        assert!(total <= CACHE_SHARDS * CACHE_PER_SHARD);
        assert!(total > 0);
    }

    #[test]
    fn env_knob_defaults() {
        // Guard: these read the live environment, so only assert the
        // unset-variable behavior when the variables really are unset.
        if std::env::var("PINOT_EXEC_HEDGE").is_err() {
            assert!(hedge_default());
        }
        if std::env::var("PINOT_EXEC_ADMISSION").is_err() {
            assert!(admission_default());
        }
        if std::env::var("PINOT_EXEC_RESULT_CACHE").is_err() {
            assert!(!result_cache_default());
        }
    }
}
