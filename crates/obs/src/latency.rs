//! Streaming per-key latency estimates for hedged-request decisions.
//!
//! The broker feeds every scatter reply's broker-observed wall-clock
//! latency into one [`LatencyDigest`], keyed by server. The digest keeps a
//! small sliding window per key and answers p99-style quantile queries
//! over it; the broker's hedge delay is derived from the *healthy*
//! quantile — the minimum per-server quantile among servers with enough
//! samples — so one straggling server raising its own tail never talks
//! the broker out of hedging around it.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

/// Sliding-window latency quantiles per key (one key per server).
pub struct LatencyDigest {
    window: usize,
    min_samples: usize,
    samples: Mutex<HashMap<String, VecDeque<f64>>>,
}

impl LatencyDigest {
    /// `window` recent samples are kept per key; quantile queries answer
    /// `None` until a key has at least `min_samples` of them, so cold
    /// starts never produce a garbage estimate.
    pub fn new(window: usize, min_samples: usize) -> LatencyDigest {
        LatencyDigest {
            window: window.max(1),
            min_samples: min_samples.max(1),
            samples: Mutex::new(HashMap::new()),
        }
    }

    /// Record one observed latency (milliseconds) for `key`.
    pub fn observe(&self, key: &str, ms: f64) {
        if !ms.is_finite() || ms < 0.0 {
            return;
        }
        let mut samples = self.samples.lock();
        let window = samples.entry(key.to_string()).or_default();
        if window.len() == self.window {
            window.pop_front();
        }
        window.push_back(ms);
    }

    /// Number of retained samples for `key`.
    pub fn len(&self, key: &str) -> usize {
        self.samples.lock().get(key).map_or(0, VecDeque::len)
    }

    pub fn is_empty(&self) -> bool {
        self.samples.lock().values().all(VecDeque::is_empty)
    }

    /// The `q` quantile (nearest-rank over the retained window) for one
    /// key, or `None` below the sample floor.
    pub fn quantile(&self, key: &str, q: f64) -> Option<f64> {
        let samples = self.samples.lock();
        let window = samples.get(key)?;
        quantile_of(window, self.min_samples, q)
    }

    /// The minimum per-key `q` quantile across keys that have enough
    /// samples — the latency a *healthy* participant achieves. `None`
    /// until at least one key crosses the sample floor.
    pub fn healthy_quantile(&self, q: f64) -> Option<f64> {
        let samples = self.samples.lock();
        samples
            .values()
            .filter_map(|w| quantile_of(w, self.min_samples, q))
            .min_by(f64::total_cmp)
    }
}

fn quantile_of(window: &VecDeque<f64>, min_samples: usize, q: f64) -> Option<f64> {
    if window.len() < min_samples {
        return None;
    }
    let mut sorted: Vec<f64> = window.iter().copied().collect();
    sorted.sort_by(f64::total_cmp);
    let rank =
        ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    Some(sorted[rank])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_sample_floor_is_none() {
        let d = LatencyDigest::new(16, 4);
        d.observe("s1", 1.0);
        d.observe("s1", 2.0);
        d.observe("s1", 3.0);
        assert_eq!(d.quantile("s1", 0.99), None);
        assert_eq!(d.healthy_quantile(0.99), None);
        d.observe("s1", 4.0);
        assert_eq!(d.quantile("s1", 0.99), Some(4.0));
        assert_eq!(d.quantile("s1", 0.5), Some(2.0));
    }

    #[test]
    fn window_slides() {
        let d = LatencyDigest::new(4, 2);
        for ms in [100.0, 100.0, 100.0, 100.0, 1.0, 1.0, 1.0, 1.0] {
            d.observe("s1", ms);
        }
        assert_eq!(d.len("s1"), 4);
        // The old 100ms samples fell out of the window.
        assert_eq!(d.quantile("s1", 0.99), Some(1.0));
    }

    #[test]
    fn healthy_quantile_ignores_the_straggler() {
        let d = LatencyDigest::new(16, 4);
        for _ in 0..8 {
            d.observe("fast", 2.0);
            d.observe("slow", 50.0);
        }
        // Per-key p99 tracks each server's own tail...
        assert_eq!(d.quantile("slow", 0.99), Some(50.0));
        // ...but the healthy estimate is what a good replica achieves,
        // which is what a hedge delay must be derived from.
        assert_eq!(d.healthy_quantile(0.99), Some(2.0));
    }

    #[test]
    fn rejects_garbage_samples() {
        let d = LatencyDigest::new(8, 1);
        d.observe("s1", f64::NAN);
        d.observe("s1", -3.0);
        assert!(d.is_empty());
        d.observe("s1", 0.5);
        assert_eq!(d.quantile("s1", 0.99), Some(0.5));
    }
}
