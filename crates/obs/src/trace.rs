//! Per-query tracing: named, nestable wall-clock spans plus the
//! per-segment plan decisions and scan counters a query accumulated.
//!
//! A trace is single-threaded and owned by the broker driving the query;
//! work done on other threads (per-server execution) is folded in after
//! the fact with [`QueryTrace::record_span_ms`].

use std::collections::BTreeMap;
use std::time::Instant;

/// One timed region. `depth` is its nesting level (0 = query phase),
/// `start_ms` its offset from the start of the trace.
#[derive(Debug, Clone)]
pub struct Span {
    pub name: String,
    pub depth: u32,
    pub start_ms: f64,
    pub duration_ms: f64,
}

/// Handle returned by [`QueryTrace::begin`]; spans close in LIFO order.
#[derive(Debug)]
#[must_use = "end the span with QueryTrace::end"]
pub struct SpanHandle(usize);

/// The record of one query's execution.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    pub query: String,
    pub spans: Vec<Span>,
    /// `(segment name, plan kind)` for every segment the query executed on.
    pub segment_plans: Vec<(String, String)>,
    /// Free-form counters (docs scanned, segments pruned, servers queried).
    pub counters: BTreeMap<String, u64>,
    origin: Instant,
    open: Vec<usize>,
}

impl QueryTrace {
    pub fn new(query: impl Into<String>) -> QueryTrace {
        QueryTrace {
            query: query.into(),
            spans: Vec::new(),
            segment_plans: Vec::new(),
            counters: BTreeMap::new(),
            origin: Instant::now(),
            open: Vec::new(),
        }
    }

    fn now_ms(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e3
    }

    /// Open a span at the current nesting depth.
    pub fn begin(&mut self, name: impl Into<String>) -> SpanHandle {
        let idx = self.spans.len();
        let span = Span {
            name: name.into(),
            depth: self.open.len() as u32,
            start_ms: self.now_ms(),
            duration_ms: 0.0,
        };
        self.spans.push(span);
        self.open.push(idx);
        SpanHandle(idx)
    }

    /// Close a span opened by [`begin`](Self::begin). Spans must close in
    /// reverse order of opening.
    pub fn end(&mut self, handle: SpanHandle) {
        let top = self.open.pop().expect("QueryTrace::end with no open span");
        assert_eq!(top, handle.0, "spans must end in LIFO order");
        let now = self.now_ms();
        let span = &mut self.spans[top];
        span.duration_ms = now - span.start_ms;
    }

    /// Time `f` as a span named `name`.
    pub fn span<T>(&mut self, name: impl Into<String>, f: impl FnOnce(&mut Self) -> T) -> T {
        let h = self.begin(name);
        let out = f(self);
        self.end(h);
        out
    }

    /// Record an externally-timed span (e.g. a remote server's reported
    /// execution time) nested under whatever span is currently open.
    pub fn record_span_ms(&mut self, name: impl Into<String>, duration_ms: f64) {
        let start_ms = self.now_ms() - duration_ms;
        self.spans.push(Span {
            name: name.into(),
            depth: self.open.len() as u32,
            start_ms: start_ms.max(0.0),
            duration_ms,
        });
    }

    pub fn add_counter(&mut self, name: impl Into<String>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    pub fn add_segment_plan(&mut self, segment: impl Into<String>, kind: impl Into<String>) {
        self.segment_plans.push((segment.into(), kind.into()));
    }

    /// Sum of top-level (depth 0) span durations — the traced portion of
    /// end-to-end query time.
    pub fn total_ms(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.duration_ms)
            .sum()
    }

    /// Indented rendering of spans plus segment plans and counters.
    pub fn render_text(&self) -> String {
        let mut out = format!("query: {}\n", self.query);
        for s in &self.spans {
            out.push_str(&format!(
                "{:indent$}{:<24} {:>9.3} ms  (at {:.3} ms)\n",
                "",
                s.name,
                s.duration_ms,
                s.start_ms,
                indent = (s.depth as usize + 1) * 2,
            ));
        }
        if !self.segment_plans.is_empty() {
            out.push_str("  segment plans:\n");
            for (seg, kind) in &self.segment_plans {
                out.push_str(&format!("    {seg:<32} {kind}\n"));
            }
        }
        for (k, v) in &self.counters {
            out.push_str(&format!("  {k:<32} {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn nesting_depths_and_durations() {
        let mut t = QueryTrace::new("select 1");
        let outer = t.begin("outer");
        std::thread::sleep(Duration::from_millis(4));
        t.span("inner", |t| {
            std::thread::sleep(Duration::from_millis(4));
            t.record_span_ms("remote", 2.5);
        });
        t.end(outer);
        assert_eq!(t.spans.len(), 3);
        let outer = &t.spans[0];
        let inner = &t.spans[1];
        let remote = &t.spans[2];
        assert_eq!((outer.depth, inner.depth, remote.depth), (0, 1, 2));
        assert!(outer.duration_ms >= inner.duration_ms);
        assert!(inner.duration_ms >= 3.0);
        assert!((remote.duration_ms - 2.5).abs() < 1e-9);
        // Only the outer span is top-level.
        assert!((t.total_ms() - outer.duration_ms).abs() < 1e-9);
        let text = t.render_text();
        assert!(text.contains("outer") && text.contains("remote"));
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn out_of_order_end_panics() {
        let mut t = QueryTrace::new("q");
        let a = t.begin("a");
        let _b = t.begin("b");
        t.end(a);
    }
}
