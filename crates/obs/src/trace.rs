//! Per-query tracing: named, nestable wall-clock spans plus the
//! per-segment plan decisions and scan counters a query accumulated.
//!
//! A trace is single-threaded and owned by the broker driving the query;
//! work done on other threads (per-server execution) is folded in after
//! the fact with [`QueryTrace::record_span_ms`].
//!
//! Work executed on pool workers cannot append to the trace live, but it
//! *can* carry a [`ParentId`] (Copy + Send) across the thread boundary:
//! take a token for the currently-open span with [`QueryTrace::token`],
//! hand it to the worker, and when the measurement comes back record it
//! with [`QueryTrace::record_span_under`] — the span then nests under the
//! span that was open when the work was spawned, not under whatever
//! happens to be open at record time.

use pinot_common::json::Json;
use std::collections::BTreeMap;
use std::time::Instant;

/// One timed region. `depth` is its nesting level (0 = query phase),
/// `start_ms` its offset from the start of the trace. `parent` is the
/// index of the enclosing span in [`QueryTrace::spans`], if any.
#[derive(Debug, Clone)]
pub struct Span {
    pub name: String,
    pub depth: u32,
    pub start_ms: f64,
    pub duration_ms: f64,
    pub parent: Option<usize>,
}

/// Handle returned by [`QueryTrace::begin`]; spans close in LIFO order.
#[derive(Debug)]
#[must_use = "end the span with QueryTrace::end"]
pub struct SpanHandle(usize);

/// A copyable, sendable reference to a recorded span, used to parent
/// later spans under it explicitly — including spans measured on other
/// threads (taskpool workers) and recorded after the fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParentId(usize);

/// The record of one query's execution.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    pub query: String,
    pub spans: Vec<Span>,
    /// `(segment name, plan kind)` for every segment the query executed on.
    pub segment_plans: Vec<(String, String)>,
    /// Free-form counters (docs scanned, segments pruned, servers queried).
    pub counters: BTreeMap<String, u64>,
    origin: Instant,
    open: Vec<usize>,
}

impl QueryTrace {
    pub fn new(query: impl Into<String>) -> QueryTrace {
        QueryTrace {
            query: query.into(),
            spans: Vec::new(),
            segment_plans: Vec::new(),
            counters: BTreeMap::new(),
            origin: Instant::now(),
            open: Vec::new(),
        }
    }

    fn now_ms(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e3
    }

    /// Open a span at the current nesting depth.
    pub fn begin(&mut self, name: impl Into<String>) -> SpanHandle {
        let idx = self.spans.len();
        let span = Span {
            name: name.into(),
            depth: self.open.len() as u32,
            start_ms: self.now_ms(),
            duration_ms: 0.0,
            parent: self.open.last().copied(),
        };
        self.spans.push(span);
        self.open.push(idx);
        SpanHandle(idx)
    }

    /// A sendable token for the span behind `handle`, to parent
    /// later-recorded spans under it (possibly from measurements taken on
    /// other threads).
    pub fn token(&self, handle: &SpanHandle) -> ParentId {
        ParentId(handle.0)
    }

    /// Token for the innermost currently-open span, if any.
    pub fn current(&self) -> Option<ParentId> {
        self.open.last().copied().map(ParentId)
    }

    /// Close a span opened by [`begin`](Self::begin). Spans must close in
    /// reverse order of opening.
    pub fn end(&mut self, handle: SpanHandle) {
        let top = self.open.pop().expect("QueryTrace::end with no open span");
        assert_eq!(top, handle.0, "spans must end in LIFO order");
        let now = self.now_ms();
        let span = &mut self.spans[top];
        span.duration_ms = now - span.start_ms;
    }

    /// Time `f` as a span named `name`.
    pub fn span<T>(&mut self, name: impl Into<String>, f: impl FnOnce(&mut Self) -> T) -> T {
        let h = self.begin(name);
        let out = f(self);
        self.end(h);
        out
    }

    /// Record an externally-timed span (e.g. a remote server's reported
    /// execution time) nested under whatever span is currently open.
    /// Returns a token so further externally-timed spans can nest under
    /// this one via [`record_span_under`](Self::record_span_under).
    pub fn record_span_ms(&mut self, name: impl Into<String>, duration_ms: f64) -> ParentId {
        self.record_span_at(name, duration_ms, self.open.last().copied())
    }

    /// Record an externally-timed span under an explicit parent — the
    /// handoff for work that ran on a pool worker: the spawner captures a
    /// [`ParentId`] before handing work off, the worker measures, and the
    /// trace owner records the measurement here. Unlike
    /// [`record_span_ms`](Self::record_span_ms) this does not consult the
    /// open-span stack, so nesting is correct regardless of which spans
    /// are open when the measurement arrives.
    pub fn record_span_under(
        &mut self,
        parent: Option<ParentId>,
        name: impl Into<String>,
        duration_ms: f64,
    ) -> ParentId {
        self.record_span_at(name, duration_ms, parent.map(|p| p.0))
    }

    fn record_span_at(
        &mut self,
        name: impl Into<String>,
        duration_ms: f64,
        parent: Option<usize>,
    ) -> ParentId {
        let idx = self.spans.len();
        let depth = match parent {
            Some(p) => self.spans[p].depth + 1,
            None => 0,
        };
        let start_ms = self.now_ms() - duration_ms;
        self.spans.push(Span {
            name: name.into(),
            depth,
            start_ms: start_ms.max(0.0),
            duration_ms,
            parent,
        });
        ParentId(idx)
    }

    pub fn add_counter(&mut self, name: impl Into<String>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    pub fn add_segment_plan(&mut self, segment: impl Into<String>, kind: impl Into<String>) {
        self.segment_plans.push((segment.into(), kind.into()));
    }

    /// Sum of top-level (depth 0) span durations — the traced portion of
    /// end-to-end query time.
    pub fn total_ms(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.duration_ms)
            .sum()
    }

    /// JSON with stable field names (`query`, `spans[]` with
    /// `name`/`depth`/`start_ms`/`duration_ms`/`parent`, `segment_plans`,
    /// `counters`) so external tools can diff traces across runs.
    pub fn to_json(&self) -> Json {
        let spans: Vec<Json> = self
            .spans
            .iter()
            .map(|s| {
                let mut pairs: Vec<(&str, Json)> = vec![
                    ("name", s.name.as_str().into()),
                    ("depth", u64::from(s.depth).into()),
                    ("start_ms", s.start_ms.into()),
                    ("duration_ms", s.duration_ms.into()),
                ];
                if let Some(p) = s.parent {
                    pairs.push(("parent", p.into()));
                }
                Json::obj(pairs)
            })
            .collect();
        let plans: Vec<Json> = self
            .segment_plans
            .iter()
            .map(|(seg, kind)| {
                Json::obj(vec![
                    ("segment", seg.as_str().into()),
                    ("plan_kind", kind.as_str().into()),
                ])
            })
            .collect();
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect(),
        );
        Json::obj(vec![
            ("query", self.query.as_str().into()),
            ("spans", Json::Arr(spans)),
            ("segment_plans", Json::Arr(plans)),
            ("counters", counters),
        ])
    }

    /// Indented rendering of spans plus segment plans and counters.
    pub fn render_text(&self) -> String {
        let mut out = format!("query: {}\n", self.query);
        for s in &self.spans {
            out.push_str(&format!(
                "{:indent$}{:<24} {:>9.3} ms  (at {:.3} ms)\n",
                "",
                s.name,
                s.duration_ms,
                s.start_ms,
                indent = (s.depth as usize + 1) * 2,
            ));
        }
        if !self.segment_plans.is_empty() {
            out.push_str("  segment plans:\n");
            for (seg, kind) in &self.segment_plans {
                out.push_str(&format!("    {seg:<32} {kind}\n"));
            }
        }
        for (k, v) in &self.counters {
            out.push_str(&format!("  {k:<32} {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn nesting_depths_and_durations() {
        let mut t = QueryTrace::new("select 1");
        let outer = t.begin("outer");
        std::thread::sleep(Duration::from_millis(4));
        t.span("inner", |t| {
            std::thread::sleep(Duration::from_millis(4));
            t.record_span_ms("remote", 2.5);
        });
        t.end(outer);
        assert_eq!(t.spans.len(), 3);
        let outer = &t.spans[0];
        let inner = &t.spans[1];
        let remote = &t.spans[2];
        assert_eq!((outer.depth, inner.depth, remote.depth), (0, 1, 2));
        assert!(outer.duration_ms >= inner.duration_ms);
        assert!(inner.duration_ms >= 3.0);
        assert!((remote.duration_ms - 2.5).abs() < 1e-9);
        // Only the outer span is top-level.
        assert!((t.total_ms() - outer.duration_ms).abs() < 1e-9);
        let text = t.render_text();
        assert!(text.contains("outer") && text.contains("remote"));
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn out_of_order_end_panics() {
        let mut t = QueryTrace::new("q");
        let a = t.begin("a");
        let _b = t.begin("b");
        t.end(a);
    }

    /// The explicit parent-id handoff: four worker threads measure spans
    /// while the trace owner has moved on to other spans; recording the
    /// measurements with the captured token still nests them under the
    /// span that was open at spawn time.
    #[test]
    fn parent_token_nests_cross_thread_spans() {
        let mut t = QueryTrace::new("q");
        let execute = t.begin("execute");
        let parent = t.token(&execute);

        let (tx, rx) = std::sync::mpsc::channel::<(String, f64, ParentId)>();
        let workers: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let start = Instant::now();
                    std::thread::sleep(std::time::Duration::from_millis(1 + i));
                    let ms = start.elapsed().as_secs_f64() * 1e3;
                    tx.send((format!("segment:s{i}"), ms, parent)).unwrap();
                })
            })
            .collect();
        drop(tx);
        t.end(execute);
        // The trace owner is now inside an unrelated span; the workers'
        // measurements must still parent under `execute`.
        t.span("merge", |t| {
            for (name, ms, parent) in rx.iter() {
                t.record_span_under(Some(parent), name, ms);
            }
        });
        for w in workers {
            w.join().unwrap();
        }
        let seg_spans: Vec<&Span> = t
            .spans
            .iter()
            .filter(|s| s.name.starts_with("segment:"))
            .collect();
        assert_eq!(seg_spans.len(), 4);
        for s in seg_spans {
            assert_eq!(s.depth, 1, "{} must nest under execute", s.name);
            assert_eq!(s.parent, Some(0));
            assert!(s.duration_ms >= 1.0);
        }
        // The naive current-depth recording would have put them under
        // `merge` (parent index of merge, not execute).
        let merge_idx = t.spans.iter().position(|s| s.name == "merge").unwrap();
        assert!(t
            .spans
            .iter()
            .filter(|s| s.name.starts_with("segment:"))
            .all(|s| s.parent != Some(merge_idx)));
        // JSON serialization carries the parent links.
        let json = t.to_json().emit();
        assert!(json.contains("\"parent\""));
        assert!(json.contains("\"segment:s0\""));
    }
}
