//! Sharded in-process metrics: monotonic counters, last-value gauges, and
//! fixed-boundary histograms with interpolated quantile estimation.
//!
//! The registry is keyed by flat metric names (`broker.phase.route_ms`,
//! `server.consume.lag.<table>.p<partition>`, ...). Names hash to one of a
//! fixed number of `parking_lot::Mutex`-guarded shards so concurrent
//! brokers/servers/controllers recording into one shared registry contend
//! only when their names collide on a shard, not on a global lock.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};

const SHARDS: usize = 16;

/// Default latency bucket boundaries in milliseconds: roughly log-spaced
/// from 50µs to 60s, dense enough that interpolated p50/p95/p99 track the
/// exact sample percentiles closely at the latencies the figures report.
pub const LATENCY_MS_BOUNDARIES: &[f64] = &[
    0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.5, 6.5, 9.0, 13.0, 18.0, 25.0, 35.0,
    50.0, 75.0, 100.0, 150.0, 200.0, 300.0, 450.0, 650.0, 900.0, 1_300.0, 1_800.0, 2_500.0,
    3_500.0, 5_000.0, 7_500.0, 10_000.0, 15_000.0, 20_000.0, 30_000.0, 45_000.0, 60_000.0,
];

/// A standalone fixed-boundary histogram. The registry stores these per
/// name; the bench harness uses the same type directly so figure latency
/// percentiles and production metrics share one estimator.
#[derive(Debug, Clone)]
pub struct Histogram {
    boundaries: &'static [f64],
    /// `counts[i]` covers `[boundaries[i-1], boundaries[i])`; the final
    /// slot is the overflow bucket `[boundaries[last], +inf)`.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new(LATENCY_MS_BOUNDARIES)
    }
}

impl Histogram {
    pub fn new(boundaries: &'static [f64]) -> Histogram {
        assert!(!boundaries.is_empty());
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly increasing"
        );
        Histogram {
            boundaries,
            counts: vec![0; boundaries.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self
            .boundaries
            .partition_point(|&b| b <= value)
            .min(self.boundaries.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            std::ptr::eq(self.boundaries, other.boundaries) || self.boundaries == other.boundaries
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by locating the bucket
    /// holding the target rank and interpolating linearly inside it, then
    /// clamping to the observed min/max so estimates never leave the data
    /// range. Error is bounded by the width of the target's bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic q maps to under linear interpolation
        // over n samples: q * (n - 1), matching `percentile` on a sorted
        // sample vector.
        let target = q * (self.count - 1) as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if target < (seen + c) as f64 || i == self.counts.len() - 1 {
                let lo = if i == 0 { 0.0 } else { self.boundaries[i - 1] };
                let hi = if i < self.boundaries.len() {
                    self.boundaries[i]
                } else {
                    self.max
                };
                let frac = if c > 1 {
                    ((target - seen as f64) / (c - 1).max(1) as f64).clamp(0.0, 1.0)
                } else {
                    0.5
                };
                let est = lo + (hi - lo) * frac;
                return est.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Cumulative `(upper_bound, count)` pairs in Prometheus `le`
    /// presentation: the final bound is `+inf` and the final count equals
    /// `count()`. Internal buckets are half-open (`[lo, hi)`), so an
    /// observation exactly on a boundary counts toward the next bound —
    /// indistinguishable in practice for continuous latency samples.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut running = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            running += c;
            let bound = if i < self.boundaries.len() {
                self.boundaries[i]
            } else {
                f64::INFINITY
            };
            out.push((bound, running));
        }
        out
    }

    /// The half-open value range of the bucket `value` falls into —
    /// the resolution limit of quantile estimates near `value`.
    pub fn bucket_bounds(&self, value: f64) -> (f64, f64) {
        let idx = self
            .boundaries
            .partition_point(|&b| b <= value)
            .min(self.boundaries.len());
        let lo = if idx == 0 {
            0.0
        } else {
            self.boundaries[idx - 1]
        };
        let hi = if idx < self.boundaries.len() {
            self.boundaries[idx]
        } else {
            f64::INFINITY
        };
        (lo, hi)
    }
}

#[derive(Default)]
struct Shard {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, i64>,
    histograms: HashMap<String, Histogram>,
}

/// Process-wide metrics registry shared by every component of a cluster.
pub struct MetricsRegistry {
    shards: Vec<Mutex<Shard>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Add `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut shard = self.shard(name).lock();
        match shard.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                shard.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Set the named gauge to its latest value.
    pub fn gauge_set(&self, name: &str, value: i64) {
        let mut shard = self.shard(name).lock();
        shard.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into the named latency histogram
    /// (milliseconds, default boundaries).
    pub fn observe_ms(&self, name: &str, ms: f64) {
        let mut shard = self.shard(name).lock();
        shard.histograms.entry_or_default(name).record(ms);
    }

    /// Consistent point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.shards {
            let shard = shard.lock();
            for (k, v) in &shard.counters {
                snap.counters.insert(k.clone(), *v);
            }
            for (k, v) in &shard.gauges {
                snap.gauges.insert(k.clone(), *v);
            }
            for (k, v) in &shard.histograms {
                snap.histograms.insert(k.clone(), v.clone());
            }
        }
        snap
    }
}

// HashMap::entry(...).or_default() needs an owned key even on hits; this
// avoids the String allocation on the hot record path.
trait EntryOrDefault {
    fn entry_or_default(&mut self, name: &str) -> &mut Histogram;
}

impl EntryOrDefault for HashMap<String, Histogram> {
    fn entry_or_default(&mut self, name: &str) -> &mut Histogram {
        if !self.contains_key(name) {
            self.insert(name.to_string(), Histogram::default());
        }
        self.get_mut(name).unwrap()
    }
}

/// Point-in-time copy of a [`MetricsRegistry`].
#[derive(Default, Clone)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose names start with `prefix` — used for
    /// per-label families like `server.throttle.rejected.<tenant>`.
    pub fn counter_family(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Prometheus text exposition (version 0.0.4) of every metric, sorted
    /// by name. Dotted registry names map to underscore-separated
    /// Prometheus names under a `pinot_` prefix; histograms emit
    /// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 6);
            out.push_str("pinot_");
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_alphanumeric() || (c == '_' && i > 0) {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        fn fmt_bound(b: f64) -> String {
            if b.is_infinite() {
                "+Inf".to_string()
            } else if b.fract() == 0.0 {
                format!("{b:.1}")
            } else {
                format!("{b}")
            }
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = sanitize(k);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let name = sanitize(k);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let name = sanitize(k);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (bound, cumulative) in h.cumulative_buckets() {
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    fmt_bound(bound)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum()));
            out.push_str(&format!("{name}_count {}\n", h.count()));
        }
        out
    }

    /// Human-readable rendering, sorted by metric name.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("== counters ==\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("{k:<56} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("== gauges ==\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("{k:<56} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("== histograms (ms) ==\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "{k:<56} n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}\n",
                    h.count(),
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.max(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter_add("a.b", 2);
        reg.counter_add("a.b", 3);
        reg.gauge_set("lag", 41);
        reg.gauge_set("lag", 7);
        for i in 0..100 {
            reg.observe_ms("lat", i as f64);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.b"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("lag"), Some(7));
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count(), 100);
        assert!(h.max() == 99.0 && h.min() == 0.0);
        let text = snap.render_text();
        assert!(text.contains("a.b") && text.contains("lag") && text.contains("p99"));
    }

    #[test]
    fn counter_family_sums_prefix() {
        let reg = MetricsRegistry::new();
        reg.counter_add("x.rejected.tenantA", 1);
        reg.counter_add("x.rejected.tenantB", 2);
        reg.counter_add("x.other", 10);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_family("x.rejected."), 3);
    }

    #[test]
    fn quantiles_track_exact_percentiles() {
        let mut h = Histogram::default();
        let mut values: Vec<f64> = (0..1000).map(|i| (i % 317) as f64 * 0.9 + 0.3).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(f64::total_cmp);
        for &(q, label) in &[(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            let exact = values[(q * (values.len() - 1) as f64).round() as usize];
            let est = h.quantile(q);
            let (lo, hi) = h.bucket_bounds(exact);
            assert!(
                est >= lo * 0.99 && est <= hi * 1.01,
                "{label}: est {est} outside bucket [{lo},{hi}) of exact {exact}"
            );
        }
    }

    #[test]
    fn empty_and_single_value_histograms() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        let mut h = Histogram::default();
        h.record(42.0);
        assert_eq!(h.p50(), 42.0);
        assert_eq!(h.max(), 42.0);
    }

    #[test]
    fn prometheus_exposition_has_all_three_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter_add("broker.query.total", 4);
        reg.counter_add("server.throttle.rejected.adsTenant", 1);
        reg.gauge_set("server.consume.lag.events.p0", 12);
        reg.observe_ms("broker.phase.parse_ms", 0.07);
        reg.observe_ms("broker.phase.parse_ms", 120.0);
        let text = reg.snapshot().render_prometheus();

        assert!(text.contains("# TYPE pinot_broker_query_total counter"));
        assert!(text.contains("pinot_broker_query_total 4"));
        assert!(text.contains("pinot_server_throttle_rejected_adsTenant 1"));
        assert!(text.contains("# TYPE pinot_server_consume_lag_events_p0 gauge"));
        assert!(text.contains("pinot_server_consume_lag_events_p0 12"));
        assert!(text.contains("# TYPE pinot_broker_phase_parse_ms histogram"));
        // Buckets are cumulative and terminate in +Inf == count.
        assert!(text.contains("pinot_broker_phase_parse_ms_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("pinot_broker_phase_parse_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("pinot_broker_phase_parse_ms_count 2"));
        assert!(text.contains("pinot_broker_phase_parse_ms_sum 120.07"));
        // No raw dots survive sanitization in metric names.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(!name.contains('.'), "unsanitized name {name}");
        }
    }

    #[test]
    fn cumulative_buckets_are_monotonic() {
        let mut h = Histogram::default();
        for i in 0..50 {
            h.record(i as f64);
        }
        let buckets = h.cumulative_buckets();
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        let last = buckets.last().unwrap();
        assert!(last.0.is_infinite());
        assert_eq!(last.1, 50);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(1.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 100.0);
    }
}
