//! pinot-obs: dependency-light in-process observability for the cluster.
//!
//! Three pieces, all shareable across threads behind one [`Obs`] handle:
//!
//! - [`MetricsRegistry`] — name-sharded counters, gauges, and fixed-boundary
//!   latency histograms with interpolated p50/p95/p99 estimation.
//! - [`QueryTrace`] — per-query span tree (parse → route → scatter →
//!   per-server execute → gather → merge) plus per-segment plan kinds and
//!   scan counters.
//! - [`QueryLog`] — bounded ring of recent slow/partial/errored queries.
//!
//! Every cluster component records into the same registry under a flat
//! dotted namespace; the catalogue of names lives in DESIGN.md.

pub mod latency;
pub mod metrics;
pub mod querylog;
pub mod trace;

pub use latency::LatencyDigest;
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot, LATENCY_MS_BOUNDARIES};
pub use querylog::{QueryLog, QueryLogEntry};
pub use trace::{ParentId, QueryTrace, Span, SpanHandle};

use std::sync::Arc;
use std::time::Instant;

/// Default capacity of the slow-query ring.
pub const DEFAULT_QUERY_LOG_CAPACITY: usize = 128;
/// Default slow-query threshold in milliseconds.
pub const DEFAULT_SLOW_QUERY_MS: u64 = 100;

/// The bundle of observability state one cluster shares: a metrics
/// registry plus the slow-query log.
pub struct Obs {
    pub metrics: MetricsRegistry,
    pub query_log: QueryLog,
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::new()
    }
}

impl Obs {
    pub fn new() -> Obs {
        Obs::with_query_log(DEFAULT_QUERY_LOG_CAPACITY, DEFAULT_SLOW_QUERY_MS)
    }

    pub fn with_query_log(capacity: usize, slow_threshold_ms: u64) -> Obs {
        Obs {
            metrics: MetricsRegistry::new(),
            query_log: QueryLog::new(capacity, slow_threshold_ms),
        }
    }

    pub fn shared() -> Arc<Obs> {
        Arc::new(Obs::new())
    }

    /// Prometheus text exposition of a point-in-time snapshot of the
    /// metrics registry — counters, gauges, and cumulative histogram
    /// buckets. See [`MetricsSnapshot::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        self.metrics.snapshot().render_prometheus()
    }
}

/// Time a region and record it into a histogram on drop — for callers that
/// want phase timing without threading a trace through.
pub struct Timer<'a> {
    obs: &'a Obs,
    name: &'a str,
    start: Instant,
}

impl<'a> Timer<'a> {
    pub fn start(obs: &'a Obs, name: &'a str) -> Timer<'a> {
        Timer {
            obs,
            name,
            start: Instant::now(),
        }
    }

    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.obs.metrics.observe_ms(self.name, self.elapsed_ms());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_on_drop() {
        let obs = Obs::new();
        {
            let _t = Timer::start(&obs, "phase.test_ms");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = obs.metrics.snapshot();
        let h = snap.histogram("phase.test_ms").expect("histogram recorded");
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1.0);
    }

    #[test]
    fn obs_is_share_and_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
        let obs = Obs::shared();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let obs = Arc::clone(&obs);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        obs.metrics.counter_add("contended", 1);
                        obs.metrics
                            .observe_ms(if i % 2 == 0 { "a" } else { "b" }, 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(obs.metrics.snapshot().counter("contended"), 4000);
    }
}
