//! Bounded ring buffer of recent interesting queries: anything slow,
//! partial, or that raised exceptions. The broker records every finished
//! query; the ring keeps the most recent qualifying ones.

use crate::trace::QueryTrace;
use parking_lot::Mutex;
use pinot_common::profile::QueryProfile;
use std::collections::VecDeque;

/// One logged query.
#[derive(Debug, Clone)]
pub struct QueryLogEntry {
    pub query: String,
    /// Broker-assigned query id; joins this entry with trace spans and
    /// per-server execution stats.
    pub query_id: u64,
    pub time_used_ms: u64,
    pub partial: bool,
    pub exception_count: usize,
    pub trace: Option<QueryTrace>,
    /// Merged broker → server → segment operator profile, when the query
    /// ran with profiling enabled — every logged slow query carries the
    /// tree that names its dominant operator.
    pub profile: Option<QueryProfile>,
}

/// Fixed-capacity ring of recent slow/partial queries.
pub struct QueryLog {
    capacity: usize,
    slow_threshold_ms: u64,
    ring: Mutex<VecDeque<QueryLogEntry>>,
}

impl QueryLog {
    pub fn new(capacity: usize, slow_threshold_ms: u64) -> QueryLog {
        assert!(capacity > 0);
        QueryLog {
            capacity,
            slow_threshold_ms,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Whether a query with these outcomes would qualify for the log —
    /// callers on the hot path check this *before* building an entry, so
    /// fast clean queries never pay for cloning the pql, trace, and
    /// profile tree into an entry that would be dropped anyway.
    pub fn would_keep(&self, time_used_ms: u64, partial: bool, exceptions: usize) -> bool {
        partial || exceptions > 0 || time_used_ms >= self.slow_threshold_ms
    }

    /// Record a finished query. Returns whether it qualified for the log
    /// (slow, partial, or errored); fast clean queries are dropped.
    pub fn observe(&self, entry: QueryLogEntry) -> bool {
        if !self.would_keep(entry.time_used_ms, entry.partial, entry.exception_count) {
            return false;
        }
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    /// Most recent qualifying queries, oldest first.
    pub fn recent(&self) -> Vec<QueryLogEntry> {
        self.ring.lock().iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(q: &str, ms: u64, partial: bool) -> QueryLogEntry {
        QueryLogEntry {
            query: q.to_string(),
            query_id: 0,
            time_used_ms: ms,
            partial,
            exception_count: 0,
            trace: None,
            profile: None,
        }
    }

    #[test]
    fn keeps_only_interesting_bounded() {
        let log = QueryLog::new(3, 100);
        assert!(!log.observe(entry("fast", 5, false)));
        assert!(log.observe(entry("slow1", 150, false)));
        assert!(log.observe(entry("partial", 5, true)));
        for i in 0..5 {
            assert!(log.observe(entry(&format!("slow{i}"), 200 + i, false)));
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent.last().unwrap().query, "slow4");
    }

    #[test]
    fn threshold_zero_logs_everything() {
        let log = QueryLog::new(8, 0);
        assert!(log.observe(entry("q", 0, false)));
        assert_eq!(log.len(), 1);
    }
}
