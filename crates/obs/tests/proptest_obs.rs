//! Property tests for the observability primitives: histogram quantile
//! estimates against the exact sample quantile, and span nesting /
//! duration accounting in `QueryTrace`.

use pinot_obs::{Histogram, QueryTrace, LATENCY_MS_BOUNDARIES};
use proptest::prelude::*;

/// Exact sample quantile matching `pinot_bench::percentile`'s definition:
/// the value at rank `round(q * (n - 1))` of the sorted sample.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

proptest! {
    /// The histogram's quantile estimate interpolates inside the bucket
    /// holding the target rank. Because the target rank `q * (n - 1)` is
    /// fractional, the estimate must land between the lower bound of the
    /// bucket containing the sample at `floor(rank)` and the upper bound
    /// of the bucket containing the sample at `ceil(rank)` (the upper
    /// bound is `max` for the overflow bucket, and the estimate is
    /// clamped to `[min, max]`, which only tightens the interval).
    #[test]
    fn quantile_estimate_within_bucket_error(
        values in proptest::collection::vec(0.05f64..50_000.0, 1..300),
    ) {
        let mut hist = Histogram::new(LATENCY_MS_BOUNDARIES);
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));

        for q in [0.5, 0.99] {
            let est = hist.quantile(q);
            let rank = q * (sorted.len() - 1) as f64;
            let lo_sample = sorted[rank.floor() as usize];
            let hi_sample = sorted[rank.ceil() as usize];
            let lo = hist.bucket_bounds(lo_sample).0;
            let hi = hist.bucket_bounds(hi_sample).1.min(hist.max());
            prop_assert!(
                est >= lo - 1e-9 && est <= hi + 1e-9,
                "q={}: estimate {} outside [{}, {}] (exact sample quantile {})",
                q, est, lo, hi, exact_quantile(&sorted, q),
            );
        }
    }

    /// Count, min, max, and mean are tracked exactly, independent of the
    /// bucket boundaries.
    #[test]
    fn summary_stats_are_exact(
        values in proptest::collection::vec(0.01f64..60_000.0, 1..200),
    ) {
        let mut hist = Histogram::new(LATENCY_MS_BOUNDARIES);
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(hist.count(), values.len() as u64);
        prop_assert_eq!(hist.min(), sorted[0]);
        prop_assert_eq!(hist.max(), sorted[sorted.len() - 1]);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((hist.mean() - mean).abs() <= 1e-6 * mean.max(1.0));
    }

    /// Quantiles are monotone in `q` and bounded by the recorded extremes.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(0.05f64..50_000.0, 1..200),
    ) {
        let mut hist = Histogram::new(LATENCY_MS_BOUNDARIES);
        for &v in &values {
            hist.record(v);
        }
        let mut prev = hist.quantile(0.0);
        for i in 1..=20 {
            let q = i as f64 / 20.0;
            let cur = hist.quantile(q);
            prop_assert!(cur >= prev - 1e-9, "quantile({q}) = {cur} < {prev}");
            prev = cur;
        }
        prop_assert!(hist.quantile(0.0) >= hist.min() - 1e-9);
        prop_assert!(hist.quantile(1.0) <= hist.max() + 1e-9);
    }

    /// Externally-timed spans recorded at depth 0 sum exactly to
    /// `total_ms`.
    #[test]
    fn recorded_spans_sum_to_total(
        durations in proptest::collection::vec(0.0f64..10.0, 1..20),
    ) {
        let mut trace = QueryTrace::new("q");
        for (i, d) in durations.iter().enumerate() {
            trace.record_span_ms(format!("s{i}"), *d);
        }
        let sum: f64 = durations.iter().sum();
        prop_assert!((trace.total_ms() - sum).abs() < 1e-9);
    }

    /// A chain of nested spans closes in LIFO order, records strictly
    /// increasing depths, and every outer span lasts at least as long as
    /// the span it encloses; only the depth-0 span counts toward
    /// `total_ms`.
    #[test]
    fn chained_spans_get_increasing_depths(n in 1usize..10) {
        let mut trace = QueryTrace::new("q");
        let handles: Vec<_> = (0..n).map(|i| trace.begin(format!("d{i}"))).collect();
        for handle in handles.into_iter().rev() {
            trace.end(handle);
        }
        prop_assert_eq!(trace.spans.len(), n);
        for (i, span) in trace.spans.iter().enumerate() {
            prop_assert_eq!(span.depth as usize, i);
        }
        for pair in trace.spans.windows(2) {
            prop_assert!(pair[0].duration_ms >= pair[1].duration_ms - 1e-9);
        }
        prop_assert!((trace.total_ms() - trace.spans[0].duration_ms).abs() < 1e-9);
    }

    /// Nested spans recorded via `record_span_ms` inside an open span land
    /// one level deeper and do not count toward `total_ms`.
    #[test]
    fn nested_recorded_spans_do_not_inflate_total(
        inner in proptest::collection::vec(0.0f64..5.0, 1..8),
    ) {
        let mut trace = QueryTrace::new("q");
        let outer = trace.begin("outer");
        for (i, d) in inner.iter().enumerate() {
            trace.record_span_ms(format!("inner{i}"), *d);
        }
        trace.end(outer);
        prop_assert_eq!(
            trace.spans.iter().filter(|s| s.depth == 1).count(),
            inner.len()
        );
        prop_assert!((trace.total_ms() - trace.spans[0].duration_ms).abs() < 1e-9);
    }
}
