//! pinot-chaos: deterministic fault injection for cluster robustness tests.
//!
//! Components call [`FaultInjector::intercept`] at named *sites* — stable
//! string labels like `server.execute` or `metastore.cas` — passing a
//! [`FaultContext`] describing where the call is happening (instance,
//! table, partition). Tests arm [`Fault`]s at those sites, optionally
//! scoped to a subset of contexts and bounded by a call [`FaultBudget`];
//! the injector decides per call whether a fault fires and returns the
//! [`FaultAction`] the call site must take.
//!
//! Everything is deterministic: `Flaky` faults draw from a seeded SplitMix64
//! stream keyed on the per-fault match counter, not from wall-clock or a
//! global RNG, so a chaos test that fails replays identically.
//!
//! The injector never performs the fault itself (it does not sleep, kill,
//! or error) — the call site interprets the action. That keeps this crate
//! dependency-light and lets `Crash` mean the right thing per component
//! (a server unregisters from cluster management; an adapter drops the
//! request on the floor).
//!
//! A default-constructed injector with nothing armed is the production
//! configuration: `intercept` is a single map lookup that finds no entry.

use parking_lot::Mutex;
use pinot_common::PinotError;
use pinot_obs::Obs;
use std::collections::HashMap;
use std::sync::Arc;

/// Well-known site names. Call sites and tests should use these constants
/// rather than ad-hoc strings so a typo cannot silently arm nothing.
pub mod sites {
    /// A server executing its slice of a scattered query.
    pub const SERVER_EXECUTE: &str = "server.execute";
    /// A consuming server polling its realtime stream partition.
    pub const STREAM_FETCH: &str = "stream.fetch";
    /// A controller compare-and-set write to the metastore.
    pub const METASTORE_CAS: &str = "metastore.cas";
    /// The elected committer building + committing a completed segment.
    pub const COMPLETION_COMMIT: &str = "completion.commit";
    /// One morsel of a segment scan executing on the pool (ISSUE 8).
    /// `Crash` is interpreted as `Fail` here: a morsel cannot unregister
    /// a server, only fail its query.
    pub const EXEC_MORSEL: &str = "exec.morsel";
}

/// What kind of failure an armed fault injects.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The call fails with this error.
    Fail(PinotError),
    /// The call is delayed by this many milliseconds before proceeding.
    Delay(u64),
    /// The component should crash: unregister from cluster management and
    /// stop serving. The process stays up (this is a simulation), but to
    /// the rest of the cluster the instance is gone.
    Crash,
    /// Fails with `error` with probability `prob`, decided by a SplitMix64
    /// hash of `(seed, nth matching call)` — deterministic per fault.
    Flaky {
        prob: f64,
        seed: u64,
        error: PinotError,
    },
}

/// Which calls at a site a fault applies to. `None` fields match anything;
/// the default scope matches every call at the site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultScope {
    pub instance: Option<String>,
    pub table: Option<String>,
    pub partition: Option<u32>,
}

impl FaultScope {
    pub fn any() -> FaultScope {
        FaultScope::default()
    }

    pub fn instance(mut self, id: impl Into<String>) -> FaultScope {
        self.instance = Some(id.into());
        self
    }

    pub fn table(mut self, table: impl Into<String>) -> FaultScope {
        self.table = Some(table.into());
        self
    }

    pub fn partition(mut self, p: u32) -> FaultScope {
        self.partition = Some(p);
        self
    }

    fn matches(&self, ctx: &FaultContext) -> bool {
        fn ok<T: PartialEq>(want: &Option<T>, got: &Option<T>) -> bool {
            match want {
                None => true,
                Some(w) => got.as_ref() == Some(w),
            }
        }
        ok(&self.instance, &ctx.instance) && ok(&self.table, &ctx.table) && {
            match self.partition {
                None => true,
                Some(p) => ctx.partition == Some(p),
            }
        }
    }
}

/// How many of the scope-matching calls a fault fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultBudget {
    /// Every matching call, until disarmed.
    Unlimited,
    /// Only the first `n` matching calls; after that the fault is spent.
    FirstN(u64),
    /// Every `k`-th matching call (the k-th, 2k-th, …).
    EveryKth(u64),
}

/// A fault as armed by a test: what to inject, where, and how often.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    pub kind: FaultKind,
    pub scope: FaultScope,
    pub budget: FaultBudget,
}

impl Fault {
    /// Fail every matching call with `error` until disarmed.
    pub fn fail(error: PinotError) -> Fault {
        Fault {
            kind: FaultKind::Fail(error),
            scope: FaultScope::any(),
            budget: FaultBudget::Unlimited,
        }
    }

    /// Delay every matching call by `ms` milliseconds.
    pub fn delay_ms(ms: u64) -> Fault {
        Fault {
            kind: FaultKind::Delay(ms),
            scope: FaultScope::any(),
            budget: FaultBudget::Unlimited,
        }
    }

    /// Crash the component on the first matching call.
    pub fn crash() -> Fault {
        Fault {
            kind: FaultKind::Crash,
            scope: FaultScope::any(),
            budget: FaultBudget::FirstN(1),
        }
    }

    /// Fail matching calls with probability `prob`, deterministically from
    /// `seed`.
    pub fn flaky(prob: f64, seed: u64, error: PinotError) -> Fault {
        Fault {
            kind: FaultKind::Flaky { prob, seed, error },
            scope: FaultScope::any(),
            budget: FaultBudget::Unlimited,
        }
    }

    pub fn with_scope(mut self, scope: FaultScope) -> Fault {
        self.scope = scope;
        self
    }

    pub fn with_budget(mut self, budget: FaultBudget) -> Fault {
        self.budget = budget;
        self
    }

    /// Shorthand for `with_budget(FaultBudget::FirstN(n))`.
    pub fn first_n(self, n: u64) -> Fault {
        self.with_budget(FaultBudget::FirstN(n))
    }

    /// Shorthand for `with_budget(FaultBudget::EveryKth(k))`.
    pub fn every_kth(self, k: u64) -> Fault {
        self.with_budget(FaultBudget::EveryKth(k))
    }
}

/// Where a call is happening, passed by the call site to `intercept`.
/// Unset fields mean "not applicable here" (a metastore write has no
/// partition) and only match scopes that leave that field open.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultContext {
    pub instance: Option<String>,
    pub table: Option<String>,
    pub partition: Option<u32>,
}

impl FaultContext {
    pub fn new() -> FaultContext {
        FaultContext::default()
    }

    pub fn instance(mut self, id: impl Into<String>) -> FaultContext {
        self.instance = Some(id.into());
        self
    }

    pub fn table(mut self, table: impl Into<String>) -> FaultContext {
        self.table = Some(table.into());
        self
    }

    pub fn partition(mut self, p: u32) -> FaultContext {
        self.partition = Some(p);
        self
    }
}

/// What the call site must do, decided by the injector for this one call.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Return this error from the call.
    Fail(PinotError),
    /// Sleep this many milliseconds, then proceed normally.
    Delay(u64),
    /// Simulate a crash: unregister the component and fail the call.
    Crash,
}

/// Handle for disarming a fault armed with [`FaultInjector::arm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultId(u64);

struct ArmedFault {
    id: FaultId,
    fault: Fault,
    /// How many scope-matching calls this fault has seen (drives budgets
    /// and the Flaky hash stream).
    matched: u64,
}

impl ArmedFault {
    /// Decide whether this fault fires for one matching call, advancing the
    /// match counter.
    fn fire(&mut self) -> Option<FaultAction> {
        self.matched += 1;
        let within_budget = match self.fault.budget {
            FaultBudget::Unlimited => true,
            FaultBudget::FirstN(n) => self.matched <= n,
            FaultBudget::EveryKth(k) => k > 0 && self.matched.is_multiple_of(k),
        };
        if !within_budget {
            return None;
        }
        match &self.fault.kind {
            FaultKind::Fail(e) => Some(FaultAction::Fail(e.clone())),
            FaultKind::Delay(ms) => Some(FaultAction::Delay(*ms)),
            FaultKind::Crash => Some(FaultAction::Crash),
            FaultKind::Flaky { prob, seed, error } => {
                let h = splitmix64(seed ^ self.matched.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // Map the hash onto [0, 1); fire when below prob.
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                (u < *prob).then(|| FaultAction::Fail(error.clone()))
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The registry of armed faults, shared across the whole cluster as an
/// `Arc<FaultInjector>`. Thread-safe; `intercept` on a site with nothing
/// armed is one short mutex acquisition and a map miss.
#[derive(Default)]
pub struct FaultInjector {
    by_site: Mutex<HashMap<String, Vec<ArmedFault>>>,
    next_id: Mutex<u64>,
    obs: Mutex<Option<Arc<Obs>>>,
}

impl FaultInjector {
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Attach an observability handle; injected faults then count under
    /// `chaos.fault.injected` and `chaos.fault.injected.<site>`.
    pub fn set_obs(&self, obs: Arc<Obs>) {
        *self.obs.lock() = Some(obs);
    }

    /// Arm a fault at `site`. Returns an id for [`FaultInjector::disarm`].
    pub fn arm(&self, site: &str, fault: Fault) -> FaultId {
        let id = {
            let mut next = self.next_id.lock();
            *next += 1;
            FaultId(*next)
        };
        self.by_site
            .lock()
            .entry(site.to_string())
            .or_default()
            .push(ArmedFault {
                id,
                fault,
                matched: 0,
            });
        id
    }

    /// Remove one armed fault. Unknown ids are ignored (already disarmed).
    pub fn disarm(&self, id: FaultId) {
        let mut sites = self.by_site.lock();
        for faults in sites.values_mut() {
            faults.retain(|f| f.id != id);
        }
        sites.retain(|_, v| !v.is_empty());
    }

    /// Remove every armed fault.
    pub fn clear(&self) {
        self.by_site.lock().clear();
    }

    /// Number of currently armed faults (spent `FirstN` faults included
    /// until disarmed).
    pub fn armed_count(&self) -> usize {
        self.by_site.lock().values().map(Vec::len).sum()
    }

    /// The heart of the crate: called by a component at a named site.
    /// Returns the action to take, or `None` to proceed normally. The
    /// first armed fault (in arm order) whose scope matches and whose
    /// budget allows it wins; every scope-matching fault still advances
    /// its match counter so budgets stay accurate under overlap.
    pub fn intercept(&self, site: &str, ctx: &FaultContext) -> Option<FaultAction> {
        let action = {
            let mut sites = self.by_site.lock();
            let faults = sites.get_mut(site)?;
            let mut chosen: Option<FaultAction> = None;
            for f in faults.iter_mut() {
                if f.fault.scope.matches(ctx) {
                    let fired = f.fire();
                    if chosen.is_none() {
                        chosen = fired;
                    }
                }
            }
            chosen?
        };
        if let Some(obs) = self.obs.lock().clone() {
            obs.metrics.counter_add("chaos.fault.injected", 1);
            obs.metrics
                .counter_add(&format!("chaos.fault.injected.{site}"), 1);
        }
        Some(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io() -> PinotError {
        PinotError::Io("injected".into())
    }

    #[test]
    fn nothing_armed_injects_nothing() {
        let inj = FaultInjector::new();
        assert_eq!(
            inj.intercept(sites::SERVER_EXECUTE, &FaultContext::new()),
            None
        );
        assert_eq!(inj.armed_count(), 0);
    }

    #[test]
    fn arm_fire_disarm() {
        let inj = FaultInjector::new();
        let id = inj.arm(sites::SERVER_EXECUTE, Fault::fail(io()));
        assert_eq!(
            inj.intercept(sites::SERVER_EXECUTE, &FaultContext::new()),
            Some(FaultAction::Fail(io()))
        );
        // Different site: untouched.
        assert_eq!(
            inj.intercept(sites::STREAM_FETCH, &FaultContext::new()),
            None
        );
        inj.disarm(id);
        assert_eq!(
            inj.intercept(sites::SERVER_EXECUTE, &FaultContext::new()),
            None
        );
    }

    #[test]
    fn scope_restricts_matches() {
        let inj = FaultInjector::new();
        inj.arm(
            sites::STREAM_FETCH,
            Fault::fail(io()).with_scope(FaultScope::any().instance("server-2").partition(1)),
        );
        let hit = FaultContext::new().instance("server-2").partition(1);
        let wrong_instance = FaultContext::new().instance("server-1").partition(1);
        let wrong_partition = FaultContext::new().instance("server-2").partition(0);
        let no_partition = FaultContext::new().instance("server-2");
        assert!(inj.intercept(sites::STREAM_FETCH, &hit).is_some());
        assert!(inj
            .intercept(sites::STREAM_FETCH, &wrong_instance)
            .is_none());
        assert!(inj
            .intercept(sites::STREAM_FETCH, &wrong_partition)
            .is_none());
        assert!(inj.intercept(sites::STREAM_FETCH, &no_partition).is_none());
    }

    #[test]
    fn first_n_budget_spends() {
        let inj = FaultInjector::new();
        inj.arm(sites::METASTORE_CAS, Fault::fail(io()).first_n(2));
        let ctx = FaultContext::new();
        assert!(inj.intercept(sites::METASTORE_CAS, &ctx).is_some());
        assert!(inj.intercept(sites::METASTORE_CAS, &ctx).is_some());
        assert!(inj.intercept(sites::METASTORE_CAS, &ctx).is_none());
        assert!(inj.intercept(sites::METASTORE_CAS, &ctx).is_none());
    }

    #[test]
    fn every_kth_budget_fires_periodically() {
        let inj = FaultInjector::new();
        inj.arm(sites::STREAM_FETCH, Fault::fail(io()).every_kth(3));
        let ctx = FaultContext::new();
        let fired: Vec<bool> = (0..9)
            .map(|_| inj.intercept(sites::STREAM_FETCH, &ctx).is_some())
            .collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn flaky_is_deterministic_and_roughly_calibrated() {
        let run = |seed| {
            let inj = FaultInjector::new();
            inj.arm(sites::SERVER_EXECUTE, Fault::flaky(0.3, seed, io()));
            let ctx = FaultContext::new();
            (0..200)
                .map(|_| inj.intercept(sites::SERVER_EXECUTE, &ctx).is_some())
                .collect::<Vec<bool>>()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same fault sequence");
        assert_ne!(a, run(43), "different seed diverges");
        let hits = a.iter().filter(|b| **b).count();
        assert!((30..=90).contains(&hits), "p=0.3 over 200 calls: {hits}");
    }

    #[test]
    fn crash_fires_once_by_default() {
        let inj = FaultInjector::new();
        inj.arm(sites::COMPLETION_COMMIT, Fault::crash());
        let ctx = FaultContext::new();
        assert_eq!(
            inj.intercept(sites::COMPLETION_COMMIT, &ctx),
            Some(FaultAction::Crash)
        );
        assert_eq!(inj.intercept(sites::COMPLETION_COMMIT, &ctx), None);
    }

    #[test]
    fn delay_action_carries_millis() {
        let inj = FaultInjector::new();
        inj.arm(sites::SERVER_EXECUTE, Fault::delay_ms(25));
        assert_eq!(
            inj.intercept(sites::SERVER_EXECUTE, &FaultContext::new()),
            Some(FaultAction::Delay(25))
        );
    }

    #[test]
    fn injections_are_counted_in_obs() {
        let inj = FaultInjector::new();
        let obs = Obs::shared();
        inj.set_obs(Arc::clone(&obs));
        inj.arm(sites::METASTORE_CAS, Fault::fail(io()).first_n(2));
        let ctx = FaultContext::new();
        for _ in 0..5 {
            let _ = inj.intercept(sites::METASTORE_CAS, &ctx);
        }
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("chaos.fault.injected"), 2);
        assert_eq!(snap.counter("chaos.fault.injected.metastore.cas"), 2);
    }

    #[test]
    fn overlapping_faults_first_armed_wins_but_both_count() {
        let inj = FaultInjector::new();
        inj.arm(sites::SERVER_EXECUTE, Fault::delay_ms(5).first_n(1));
        inj.arm(sites::SERVER_EXECUTE, Fault::fail(io()));
        let ctx = FaultContext::new();
        // First call: the delay (armed first) wins.
        assert_eq!(
            inj.intercept(sites::SERVER_EXECUTE, &ctx),
            Some(FaultAction::Delay(5))
        );
        // Second call: delay budget spent, the fail shows through — and its
        // match counter advanced during call one, proving overlap counting.
        assert_eq!(
            inj.intercept(sites::SERVER_EXECUTE, &ctx),
            Some(FaultAction::Fail(io()))
        );
    }
}
