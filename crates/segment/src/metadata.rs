//! Segment metadata (§3.2).
//!
//! Each segment directory holds a metadata file describing its columns,
//! their types, cardinalities, encodings, statistics, and which indexes are
//! available — brokers and the controller rely on it without reading data.

use pinot_common::{DataType, Value};

/// Per-column statistics recorded at build time.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    pub name: String,
    pub data_type: DataType,
    pub single_value: bool,
    pub cardinality: usize,
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Total entries across docs (≥ num_docs for multi-value columns).
    pub total_entries: usize,
    pub has_inverted_index: bool,
    pub is_sorted: bool,
    pub has_bloom_filter: bool,
}

/// Partitioning info for partition-aware routing (§4.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInfo {
    pub column: String,
    pub partition_id: u32,
    pub num_partitions: u32,
}

/// Whole-segment metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMetadata {
    pub segment_name: String,
    pub table: String,
    pub num_docs: u32,
    pub columns: Vec<ColumnStats>,
    /// Name of the time column, if the schema has one.
    pub time_column: Option<String>,
    /// Min/max value of the time column (in the column's own unit).
    pub min_time: Option<i64>,
    pub max_time: Option<i64>,
    pub partition: Option<PartitionInfo>,
    /// Stream offset range `[start, end)` for realtime segments.
    pub offset_range: Option<(u64, u64)>,
    pub created_at_millis: i64,
    /// Approximate in-memory size.
    pub size_bytes: u64,
}

impl SegmentMetadata {
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// True when the segment cannot contain rows in `[min_t, max_t]`
    /// (inclusive). Used by servers to prune segments before planning.
    pub fn time_disjoint(&self, min_t: Option<i64>, max_t: Option<i64>) -> bool {
        match (self.min_time, self.max_time) {
            (Some(seg_min), Some(seg_max)) => {
                if let Some(q_max) = max_t {
                    if seg_min > q_max {
                        return true;
                    }
                }
                if let Some(q_min) = min_t {
                    if seg_max < q_min {
                        return true;
                    }
                }
                false
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(min_time: i64, max_time: i64) -> SegmentMetadata {
        SegmentMetadata {
            segment_name: "s1".into(),
            table: "t_OFFLINE".into(),
            num_docs: 10,
            columns: vec![ColumnStats {
                name: "day".into(),
                data_type: DataType::Long,
                single_value: true,
                cardinality: 3,
                min: Some(Value::Long(min_time)),
                max: Some(Value::Long(max_time)),
                total_entries: 10,
                has_inverted_index: false,
                is_sorted: false,
                has_bloom_filter: false,
            }],
            time_column: Some("day".into()),
            min_time: Some(min_time),
            max_time: Some(max_time),
            partition: None,
            offset_range: None,
            created_at_millis: 0,
            size_bytes: 100,
        }
    }

    #[test]
    fn time_pruning() {
        let m = meta(100, 200);
        assert!(m.time_disjoint(Some(201), None)); // query starts after
        assert!(m.time_disjoint(None, Some(99))); // query ends before
        assert!(!m.time_disjoint(Some(150), Some(300)));
        assert!(!m.time_disjoint(None, None));
        assert!(!m.time_disjoint(Some(200), Some(200))); // touching boundary
    }

    #[test]
    fn no_time_stats_never_prunes() {
        let mut m = meta(0, 0);
        m.min_time = None;
        m.max_time = None;
        assert!(!m.time_disjoint(Some(1), Some(2)));
    }

    #[test]
    fn column_lookup() {
        let m = meta(1, 2);
        assert!(m.column("day").is_some());
        assert!(m.column("nope").is_none());
    }
}
