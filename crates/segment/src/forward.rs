//! Forward indexes: per-document dictionary ids.

use crate::bitpack::PackedIntVec;
use crate::{DictId, DocId};

/// Forward index for one column.
///
/// Single-value columns store one bit-packed dict id per document.
/// Multi-value columns store a flattened id array plus per-document offsets
/// (document `d` owns ids `[offsets[d], offsets[d+1])`).
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardIndex {
    SingleValue(PackedIntVec),
    MultiValue {
        offsets: Vec<u32>,
        ids: PackedIntVec,
    },
}

impl ForwardIndex {
    pub fn single(ids: &[DictId]) -> ForwardIndex {
        ForwardIndex::SingleValue(PackedIntVec::from_slice(ids))
    }

    pub fn multi(per_doc: &[Vec<DictId>]) -> ForwardIndex {
        let mut offsets = Vec::with_capacity(per_doc.len() + 1);
        offsets.push(0u32);
        let mut flat = Vec::new();
        for ids in per_doc {
            flat.extend_from_slice(ids);
            offsets.push(flat.len() as u32);
        }
        ForwardIndex::MultiValue {
            offsets,
            ids: PackedIntVec::from_slice(&flat),
        }
    }

    pub fn is_single_value(&self) -> bool {
        matches!(self, ForwardIndex::SingleValue(_))
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        match self {
            ForwardIndex::SingleValue(v) => v.len(),
            ForwardIndex::MultiValue { offsets, .. } => offsets.len().saturating_sub(1),
        }
    }

    /// Total entries (equals `num_docs` for single-value columns).
    pub fn num_entries(&self) -> usize {
        match self {
            ForwardIndex::SingleValue(v) => v.len(),
            ForwardIndex::MultiValue { ids, .. } => ids.len(),
        }
    }

    /// Dict id of a single-value document. Panics on multi-value columns.
    #[inline]
    pub fn get(&self, doc: DocId) -> DictId {
        match self {
            ForwardIndex::SingleValue(v) => v.get(doc as usize),
            ForwardIndex::MultiValue { .. } => {
                panic!("get() on multi-value forward index; use get_multi()")
            }
        }
    }

    /// Bulk-read the dict ids of docs `[start, start + out.len())` into
    /// `out` — the block-decode entry point of the batched execution
    /// path. Panics on multi-value columns (block kernels fall back to
    /// the row path for those).
    #[inline]
    pub fn read_block(&self, start: DocId, out: &mut [DictId]) {
        match self {
            ForwardIndex::SingleValue(v) => v.unpack_block(start as usize, out),
            ForwardIndex::MultiValue { .. } => {
                panic!("read_block() on multi-value forward index; use get_multi()")
            }
        }
    }

    /// Dict ids of a document (one element for single-value columns).
    pub fn get_multi(&self, doc: DocId, out: &mut Vec<DictId>) {
        out.clear();
        match self {
            ForwardIndex::SingleValue(v) => out.push(v.get(doc as usize)),
            ForwardIndex::MultiValue { offsets, ids } => {
                let start = offsets[doc as usize] as usize;
                let end = offsets[doc as usize + 1] as usize;
                for i in start..end {
                    out.push(ids.get(i));
                }
            }
        }
    }

    /// True when any of the document's entries equals `id`.
    pub fn doc_contains(&self, doc: DocId, id: DictId) -> bool {
        match self {
            ForwardIndex::SingleValue(v) => v.get(doc as usize) == id,
            ForwardIndex::MultiValue { offsets, ids } => {
                let start = offsets[doc as usize] as usize;
                let end = offsets[doc as usize + 1] as usize;
                (start..end).any(|i| ids.get(i) == id)
            }
        }
    }

    /// True when any entry of the document falls in the id range `[lo, hi)`.
    pub fn doc_in_range(&self, doc: DocId, lo: DictId, hi: DictId) -> bool {
        match self {
            ForwardIndex::SingleValue(v) => {
                let id = v.get(doc as usize);
                id >= lo && id < hi
            }
            ForwardIndex::MultiValue { offsets, ids } => {
                let start = offsets[doc as usize] as usize;
                let end = offsets[doc as usize + 1] as usize;
                (start..end).any(|i| {
                    let id = ids.get(i);
                    id >= lo && id < hi
                })
            }
        }
    }

    pub fn size_bytes(&self) -> usize {
        match self {
            ForwardIndex::SingleValue(v) => v.size_bytes(),
            ForwardIndex::MultiValue { offsets, ids } => offsets.len() * 4 + ids.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value_round_trip() {
        let ids = vec![3u32, 0, 7, 7, 2];
        let f = ForwardIndex::single(&ids);
        assert!(f.is_single_value());
        assert_eq!(f.num_docs(), 5);
        assert_eq!(f.num_entries(), 5);
        for (d, id) in ids.iter().enumerate() {
            assert_eq!(f.get(d as DocId), *id);
        }
    }

    #[test]
    fn multi_value_round_trip() {
        let per_doc = vec![vec![1u32, 2], vec![], vec![0, 3, 4]];
        let f = ForwardIndex::multi(&per_doc);
        assert!(!f.is_single_value());
        assert_eq!(f.num_docs(), 3);
        assert_eq!(f.num_entries(), 5);
        let mut out = Vec::new();
        f.get_multi(0, &mut out);
        assert_eq!(out, vec![1, 2]);
        f.get_multi(1, &mut out);
        assert!(out.is_empty());
        f.get_multi(2, &mut out);
        assert_eq!(out, vec![0, 3, 4]);
    }

    #[test]
    fn doc_contains_and_range() {
        let f = ForwardIndex::multi(&[vec![1, 5], vec![2]]);
        assert!(f.doc_contains(0, 5));
        assert!(!f.doc_contains(0, 2));
        assert!(f.doc_in_range(0, 4, 6));
        assert!(!f.doc_in_range(1, 4, 6));

        let s = ForwardIndex::single(&[4, 9]);
        assert!(s.doc_contains(1, 9));
        assert!(s.doc_in_range(0, 0, 5));
        assert!(!s.doc_in_range(0, 5, 9));
    }

    #[test]
    fn read_block_matches_get() {
        let ids: Vec<u32> = (0..300u32).map(|i| (i * 31) % 97).collect();
        let f = ForwardIndex::single(&ids);
        for (start, len) in [(0usize, 300usize), (13, 100), (299, 1), (50, 0)] {
            let mut out = vec![0u32; len];
            f.read_block(start as DocId, &mut out);
            assert_eq!(out, ids[start..start + len]);
        }
    }

    #[test]
    #[should_panic(expected = "multi-value")]
    fn read_block_on_multi_value_panics() {
        let f = ForwardIndex::multi(&[vec![1]]);
        let mut out = [0u32; 1];
        f.read_block(0, &mut out);
    }

    #[test]
    fn get_multi_on_single_value() {
        let f = ForwardIndex::single(&[6]);
        let mut out = Vec::new();
        f.get_multi(0, &mut out);
        assert_eq!(out, vec![6]);
    }

    #[test]
    #[should_panic(expected = "multi-value")]
    fn get_on_multi_value_panics() {
        let f = ForwardIndex::multi(&[vec![1]]);
        f.get(0);
    }
}
