//! Forward indexes: per-document dictionary ids.

use crate::bitpack::PackedIntVec;
use crate::{DictId, DocId};
use std::sync::Arc;

/// Rows per sealed chunk of a consuming-segment column. A multiple of the
/// bit-pack block (1024) so `read_block` spans touch at most one chunk
/// boundary per block and sealed chunks decode with the same batch kernels
/// as offline segments.
pub const CHUNK_ROWS: usize = 4096;

/// Forward index for one column.
///
/// Single-value columns store one bit-packed dict id per document.
/// Multi-value columns store a flattened id array plus per-document offsets
/// (document `d` owns ids `[offsets[d], offsets[d+1])`).
///
/// `ChunkedSingle` is the realtime form used by consistent cuts of a
/// consuming segment: sealed fixed-size chunks of bit-packed *insertion*
/// ids (shared by `Arc` with the live mutable column, never reallocated)
/// plus a row-wise tail for the open chunk. Insertion ids are translated
/// to sorted-dictionary ids through `remap` after unpacking, so chunk bit
/// widths stay valid as the dictionary grows.
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardIndex {
    SingleValue(PackedIntVec),
    MultiValue {
        offsets: Vec<u32>,
        ids: PackedIntVec,
    },
    ChunkedSingle {
        chunks: Vec<Arc<PackedIntVec>>,
        tail: Arc<[u32]>,
        remap: Arc<[u32]>,
        len: usize,
    },
}

impl ForwardIndex {
    pub fn single(ids: &[DictId]) -> ForwardIndex {
        ForwardIndex::SingleValue(PackedIntVec::from_slice(ids))
    }

    pub fn multi(per_doc: &[Vec<DictId>]) -> ForwardIndex {
        let mut offsets = Vec::with_capacity(per_doc.len() + 1);
        offsets.push(0u32);
        let mut flat = Vec::new();
        for ids in per_doc {
            flat.extend_from_slice(ids);
            offsets.push(flat.len() as u32);
        }
        ForwardIndex::MultiValue {
            offsets,
            ids: PackedIntVec::from_slice(&flat),
        }
    }

    /// Realtime cut view over shared sealed chunks + a cloned open tail.
    /// `remap` maps insertion ids to sorted-dictionary ids; `len` is the
    /// cut's row high-water mark.
    pub fn chunked(
        chunks: Vec<Arc<PackedIntVec>>,
        tail: Arc<[u32]>,
        remap: Arc<[u32]>,
        len: usize,
    ) -> ForwardIndex {
        debug_assert_eq!(chunks.len() * CHUNK_ROWS + tail.len(), len);
        ForwardIndex::ChunkedSingle {
            chunks,
            tail,
            remap,
            len,
        }
    }

    pub fn is_single_value(&self) -> bool {
        matches!(
            self,
            ForwardIndex::SingleValue(_) | ForwardIndex::ChunkedSingle { .. }
        )
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        match self {
            ForwardIndex::SingleValue(v) => v.len(),
            ForwardIndex::MultiValue { offsets, .. } => offsets.len().saturating_sub(1),
            ForwardIndex::ChunkedSingle { len, .. } => *len,
        }
    }

    /// Total entries (equals `num_docs` for single-value columns).
    pub fn num_entries(&self) -> usize {
        match self {
            ForwardIndex::SingleValue(v) => v.len(),
            ForwardIndex::MultiValue { ids, .. } => ids.len(),
            ForwardIndex::ChunkedSingle { len, .. } => *len,
        }
    }

    /// Dict id of a single-value document. Panics on multi-value columns.
    #[inline]
    pub fn get(&self, doc: DocId) -> DictId {
        match self {
            ForwardIndex::SingleValue(v) => v.get(doc as usize),
            ForwardIndex::MultiValue { .. } => {
                panic!("get() on multi-value forward index; use get_multi()")
            }
            ForwardIndex::ChunkedSingle {
                chunks,
                tail,
                remap,
                len,
            } => {
                let doc = doc as usize;
                debug_assert!(doc < *len);
                let chunk = doc / CHUNK_ROWS;
                let raw = if chunk < chunks.len() {
                    chunks[chunk].get(doc % CHUNK_ROWS)
                } else {
                    tail[doc - chunks.len() * CHUNK_ROWS]
                };
                remap[raw as usize]
            }
        }
    }

    /// Bulk-read the dict ids of docs `[start, start + out.len())` into
    /// `out` — the block-decode entry point of the batched execution
    /// path. Panics on multi-value columns (block kernels fall back to
    /// the row path for those).
    #[inline]
    pub fn read_block(&self, start: DocId, out: &mut [DictId]) {
        match self {
            ForwardIndex::SingleValue(v) => v.unpack_block(start as usize, out),
            ForwardIndex::MultiValue { .. } => {
                panic!("read_block() on multi-value forward index; use get_multi()")
            }
            ForwardIndex::ChunkedSingle {
                chunks,
                tail,
                remap,
                len,
            } => {
                let n = out.len();
                debug_assert!(start as usize + n <= *len);
                let mut filled = 0usize;
                let mut pos = start as usize;
                while filled < n {
                    let chunk = pos / CHUNK_ROWS;
                    if chunk < chunks.len() {
                        let local = pos % CHUNK_ROWS;
                        let take = (CHUNK_ROWS - local).min(n - filled);
                        chunks[chunk].unpack_block(local, &mut out[filled..filled + take]);
                        filled += take;
                        pos += take;
                    } else {
                        let local = pos - chunks.len() * CHUNK_ROWS;
                        let take = n - filled;
                        out[filled..filled + take].copy_from_slice(&tail[local..local + take]);
                        filled += take;
                        pos += take;
                    }
                }
                for id in out.iter_mut() {
                    *id = remap[*id as usize];
                }
            }
        }
    }

    /// Dict ids of a document (one element for single-value columns).
    pub fn get_multi(&self, doc: DocId, out: &mut Vec<DictId>) {
        out.clear();
        match self {
            ForwardIndex::SingleValue(v) => out.push(v.get(doc as usize)),
            ForwardIndex::MultiValue { offsets, ids } => {
                let start = offsets[doc as usize] as usize;
                let end = offsets[doc as usize + 1] as usize;
                for i in start..end {
                    out.push(ids.get(i));
                }
            }
            ForwardIndex::ChunkedSingle { .. } => out.push(self.get(doc)),
        }
    }

    /// True when any of the document's entries equals `id`.
    pub fn doc_contains(&self, doc: DocId, id: DictId) -> bool {
        match self {
            ForwardIndex::SingleValue(v) => v.get(doc as usize) == id,
            ForwardIndex::MultiValue { offsets, ids } => {
                let start = offsets[doc as usize] as usize;
                let end = offsets[doc as usize + 1] as usize;
                (start..end).any(|i| ids.get(i) == id)
            }
            ForwardIndex::ChunkedSingle { .. } => self.get(doc) == id,
        }
    }

    /// True when any entry of the document falls in the id range `[lo, hi)`.
    pub fn doc_in_range(&self, doc: DocId, lo: DictId, hi: DictId) -> bool {
        match self {
            ForwardIndex::SingleValue(v) => {
                let id = v.get(doc as usize);
                id >= lo && id < hi
            }
            ForwardIndex::MultiValue { offsets, ids } => {
                let start = offsets[doc as usize] as usize;
                let end = offsets[doc as usize + 1] as usize;
                (start..end).any(|i| {
                    let id = ids.get(i);
                    id >= lo && id < hi
                })
            }
            ForwardIndex::ChunkedSingle { .. } => {
                let id = self.get(doc);
                id >= lo && id < hi
            }
        }
    }

    pub fn size_bytes(&self) -> usize {
        match self {
            ForwardIndex::SingleValue(v) => v.size_bytes(),
            ForwardIndex::MultiValue { offsets, ids } => offsets.len() * 4 + ids.size_bytes(),
            ForwardIndex::ChunkedSingle {
                chunks,
                tail,
                remap,
                ..
            } => {
                chunks.iter().map(|c| c.size_bytes()).sum::<usize>()
                    + (tail.len() + remap.len()) * 4
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value_round_trip() {
        let ids = vec![3u32, 0, 7, 7, 2];
        let f = ForwardIndex::single(&ids);
        assert!(f.is_single_value());
        assert_eq!(f.num_docs(), 5);
        assert_eq!(f.num_entries(), 5);
        for (d, id) in ids.iter().enumerate() {
            assert_eq!(f.get(d as DocId), *id);
        }
    }

    #[test]
    fn multi_value_round_trip() {
        let per_doc = vec![vec![1u32, 2], vec![], vec![0, 3, 4]];
        let f = ForwardIndex::multi(&per_doc);
        assert!(!f.is_single_value());
        assert_eq!(f.num_docs(), 3);
        assert_eq!(f.num_entries(), 5);
        let mut out = Vec::new();
        f.get_multi(0, &mut out);
        assert_eq!(out, vec![1, 2]);
        f.get_multi(1, &mut out);
        assert!(out.is_empty());
        f.get_multi(2, &mut out);
        assert_eq!(out, vec![0, 3, 4]);
    }

    #[test]
    fn doc_contains_and_range() {
        let f = ForwardIndex::multi(&[vec![1, 5], vec![2]]);
        assert!(f.doc_contains(0, 5));
        assert!(!f.doc_contains(0, 2));
        assert!(f.doc_in_range(0, 4, 6));
        assert!(!f.doc_in_range(1, 4, 6));

        let s = ForwardIndex::single(&[4, 9]);
        assert!(s.doc_contains(1, 9));
        assert!(s.doc_in_range(0, 0, 5));
        assert!(!s.doc_in_range(0, 5, 9));
    }

    #[test]
    fn read_block_matches_get() {
        let ids: Vec<u32> = (0..300u32).map(|i| (i * 31) % 97).collect();
        let f = ForwardIndex::single(&ids);
        for (start, len) in [(0usize, 300usize), (13, 100), (299, 1), (50, 0)] {
            let mut out = vec![0u32; len];
            f.read_block(start as DocId, &mut out);
            assert_eq!(out, ids[start..start + len]);
        }
    }

    #[test]
    #[should_panic(expected = "multi-value")]
    fn read_block_on_multi_value_panics() {
        let f = ForwardIndex::multi(&[vec![1]]);
        let mut out = [0u32; 1];
        f.read_block(0, &mut out);
    }

    #[test]
    fn get_multi_on_single_value() {
        let f = ForwardIndex::single(&[6]);
        let mut out = Vec::new();
        f.get_multi(0, &mut out);
        assert_eq!(out, vec![6]);
    }

    #[test]
    #[should_panic(expected = "multi-value")]
    fn get_on_multi_value_panics() {
        let f = ForwardIndex::multi(&[vec![1]]);
        f.get(0);
    }

    /// Build a chunked forward index over `raw` insertion ids with a
    /// reversing remap, plus the equivalent flat oracle.
    fn chunked_fixture(n: usize, card: u32) -> (ForwardIndex, Vec<u32>) {
        let raw: Vec<u32> = (0..n as u32).map(|i| (i * 131) % card).collect();
        let remap: Vec<u32> = (0..card).map(|i| card - 1 - i).collect();
        let mut chunks = Vec::new();
        let mut pos = 0;
        while raw.len() - pos >= CHUNK_ROWS {
            chunks.push(Arc::new(PackedIntVec::from_slice(
                &raw[pos..pos + CHUNK_ROWS],
            )));
            pos += CHUNK_ROWS;
        }
        let tail: Arc<[u32]> = raw[pos..].into();
        let oracle: Vec<u32> = raw.iter().map(|&r| remap[r as usize]).collect();
        let f = ForwardIndex::chunked(chunks, tail, remap.into(), n);
        (f, oracle)
    }

    #[test]
    fn chunked_matches_flat_oracle() {
        for n in [0usize, 5, CHUNK_ROWS, CHUNK_ROWS + 1, 3 * CHUNK_ROWS + 777] {
            let (f, oracle) = chunked_fixture(n, 97);
            assert!(f.is_single_value());
            assert_eq!(f.num_docs(), n);
            assert_eq!(f.num_entries(), n);
            for (d, &want) in oracle.iter().enumerate() {
                assert_eq!(f.get(d as DocId), want, "doc {d} of {n}");
            }
        }
    }

    #[test]
    fn chunked_read_block_spans_chunk_boundaries() {
        let n = 2 * CHUNK_ROWS + 513;
        let (f, oracle) = chunked_fixture(n, 97);
        for (start, len) in [
            (0usize, n),
            (CHUNK_ROWS - 7, 200),
            (CHUNK_ROWS - 1, 2),
            (2 * CHUNK_ROWS - 100, 613),
            (2 * CHUNK_ROWS + 500, 13),
            (17, 1024),
            (n - 1, 1),
            (5, 0),
        ] {
            let mut out = vec![0u32; len];
            f.read_block(start as DocId, &mut out);
            assert_eq!(out, oracle[start..start + len], "start={start} len={len}");
        }
    }

    #[test]
    fn chunked_predicate_helpers() {
        let (f, oracle) = chunked_fixture(CHUNK_ROWS + 10, 7);
        let mut out = Vec::new();
        f.get_multi(3, &mut out);
        assert_eq!(out, vec![oracle[3]]);
        assert!(f.doc_contains(3, oracle[3]));
        assert!(!f.doc_contains(3, oracle[3] + 100));
        assert!(f.doc_in_range(3, oracle[3], oracle[3] + 1));
        assert!(!f.doc_in_range(3, oracle[3] + 1, oracle[3] + 2));
    }
}
